//! Facade crate for the `fading-cr` workspace.
//!
//! Re-exports the entire public API of [`fading_cr`] so that examples and
//! integration tests can use a single dependency. Downstream users should
//! depend on `fading-cr` (and, if they want individual substrates, on the
//! `fading-*` crates) directly.
//!
//! # Example
//!
//! ```
//! use fading::prelude::*;
//!
//! let scenario = Scenario::builder()
//!     .deployment(Deployment::uniform_square(64, 100.0, 7))
//!     .sinr(SinrParams::default_single_hop())
//!     .protocol(ProtocolKind::fkn_default())
//!     .seed(42)
//!     .build()
//!     .expect("valid scenario");
//! let result = scenario.run(10_000);
//! assert!(result.resolved());
//! ```

pub use fading_cr::*;

/// The prelude, re-exported from [`fading_cr::prelude`].
pub mod prelude {
    pub use fading_cr::prelude::*;
}
