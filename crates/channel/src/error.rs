//! Error types for channel construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating channel models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChannelError {
    /// A physical-model parameter violated its documented constraint.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// The transmission power is too small for the deployment to form a
    /// single-hop network (the paper's admissibility condition
    /// `P > c·β·N·d(u,v)^α` fails for the longest link).
    NotSingleHop {
        /// The supplied power.
        power: f64,
        /// The minimum power the deployment requires.
        required: f64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InvalidParameter {
                name,
                reason,
                value,
            } => {
                write!(f, "invalid parameter `{name}` = {value}: {reason}")
            }
            ChannelError::NotSingleHop { power, required } => write!(
                f,
                "power {power} too small for a single-hop deployment (needs > {required})"
            ),
        }
    }
}

impl Error for ChannelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ChannelError::InvalidParameter {
            name: "alpha",
            reason: "must exceed 2",
            value: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("alpha"));
        assert!(msg.contains("1.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChannelError>();
    }
}
