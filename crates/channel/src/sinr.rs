//! The SINR (physical / fading) channel — Equation 1 of the paper.

use rand::rngs::SmallRng;

use fading_geom::Point;

use crate::channel::{sealed, Channel};
use crate::kernels::{fold_scan, gain_batch, scan_block, ScanFold, ScanScratch, LISTENER_BLOCK};
use crate::{
    ChannelPerturbation, ChunkExecutor, FarFieldEngine, GainCache, HierarchicalFarFieldEngine,
    NodeId, Reception, SinrBreakdown, SinrParams,
};

/// Computes `d^alpha` given the *squared* distance `d_sq = d²`.
///
/// Callers typically already have squared distances; this avoids a square
/// root in the common cases and takes fast paths for the integer exponents
/// used throughout the experiments (`α ∈ {3, 4, 6}` and the degenerate
/// `α = 2`).
///
/// # Example
///
/// ```
/// use fading_channel::pow_alpha;
/// assert_eq!(pow_alpha(4.0, 3.0), 8.0);   // d = 2, d³ = 8
/// assert_eq!(pow_alpha(9.0, 4.0), 81.0);  // d = 3, d⁴ = 81
/// assert!((pow_alpha(4.0, 2.5) - 2f64.powf(2.5)).abs() < 1e-12);
/// ```
#[inline]
#[must_use]
pub fn pow_alpha(d_sq: f64, alpha: f64) -> f64 {
    if alpha == 2.0 {
        d_sq
    } else if alpha == 3.0 {
        d_sq * d_sq.sqrt()
    } else if alpha == 4.0 {
        d_sq * d_sq
    } else if alpha == 6.0 {
        d_sq * d_sq * d_sq
    } else {
        d_sq.powf(alpha * 0.5)
    }
}

/// Result of the canonical transmitter scan for one listener: the full
/// interference fold plus the strongest signal and its transmitter.
pub(crate) struct ScanOutcome {
    /// Sum of all received powers, accumulated in `transmitters` order.
    pub(crate) total: f64,
    /// The strongest single received power (0.0 when none is positive).
    pub(crate) best_sig: f64,
    /// The first transmitter (in slice order) attaining `best_sig`, if any.
    pub(crate) best_tx: Option<NodeId>,
}

/// The canonical per-listener accumulation loop.
///
/// Every exact resolve path — and the far-field engine's exact fallback —
/// funnels through this one function, so the bit-exactness contracts
/// between them hold by construction: signals are folded in `transmitters`
/// slice order, and the winner is the first transmitter to strictly exceed
/// all earlier signals (ties keep the earlier one).
#[inline]
pub(crate) fn scan_transmitters(
    p: f64,
    alpha: f64,
    positions: &[Point],
    row: Option<&[f64]>,
    v: NodeId,
    vp: Point,
    transmitters: &[NodeId],
) -> ScanOutcome {
    let mut total = 0.0;
    let mut best_sig = 0.0;
    let mut best_tx: Option<NodeId> = None;
    for &u in transmitters {
        debug_assert_ne!(u, v, "a node cannot transmit and listen simultaneously");
        let sig = match row {
            Some(r) => r[u],
            None => p / pow_alpha(positions[u].distance_sq(vp), alpha),
        };
        total += sig;
        if sig > best_sig {
            best_sig = sig;
            best_tx = Some(u);
        }
    }
    ScanOutcome {
        total,
        best_sig,
        best_tx,
    }
}

/// The batched counterpart of [`scan_transmitters`] for the geometry
/// (uncached) path: one fused SoA gain batch into `scratch.gains`, then a
/// slice-order fold.
///
/// `scratch.xs`/`scratch.ys` must already hold the transmitters'
/// coordinates in `transmitters` slice order
/// ([`ScanScratch::gather`] — done once per round, not per listener).
/// Bit-identical to the scalar scan: each gain is the same expression
/// ([`gain_batch`]), and [`fold_scan`] reproduces the canonical
/// accumulation order and first-strict-max winner rule
/// (`tests/kernels.rs` pins the equivalence, tie-breaks included).
#[inline]
pub(crate) fn scan_transmitters_batched(
    p: f64,
    alpha: f64,
    v: NodeId,
    vp: Point,
    transmitters: &[NodeId],
    scratch: &mut ScanScratch,
) -> ScanOutcome {
    let ScanScratch { xs, ys, gains } = scratch;
    scan_transmitters_soa(p, alpha, v, vp, transmitters, xs, ys, gains)
}

/// The slice-level core of [`scan_transmitters_batched`]: takes the
/// gathered coordinate slices and the gain buffer separately, so callers
/// whose gather is shared across threads (the hierarchical engine's
/// read-only listener phase) can pair it with thread-local gain scratch.
#[inline]
#[allow(clippy::too_many_arguments)] // the scan inputs plus the split scratch
pub(crate) fn scan_transmitters_soa(
    p: f64,
    alpha: f64,
    v: NodeId,
    vp: Point,
    transmitters: &[NodeId],
    xs: &[f64],
    ys: &[f64],
    gains: &mut Vec<f64>,
) -> ScanOutcome {
    debug_assert!(
        transmitters.iter().all(|&u| u != v),
        "a node cannot transmit and listen simultaneously"
    );
    debug_assert_eq!(xs.len(), transmitters.len(), "stale gather");
    gains.resize(transmitters.len(), 0.0);
    gain_batch(p, alpha, xs, ys, vp.x, vp.y, gains);
    let ScanFold {
        total,
        best_sig,
        best_idx,
    } = fold_scan(gains);
    ScanOutcome {
        total,
        best_sig,
        best_tx: best_idx.map(|i| transmitters[i]),
    }
}

/// The paper's fading channel: reception is governed exactly by the SINR
/// inequality (Equation 1).
///
/// A listener `v` decodes the message of transmitter `u` iff
/// `(P/d(u,v)^α) / (N + Σ_{w ≠ u} P/d(w,v)^α) ≥ β`. Because `β ≥ 1`
/// (enforced by [`SinrParams`]), at most one transmitter can clear the
/// threshold at any listener, so it suffices to test the strongest signal.
///
/// # Example
///
/// ```
/// use fading_channel::{Channel, Reception, SinrChannel, SinrParams};
/// use fading_geom::Point;
/// use rand::SeedableRng;
///
/// let ch = SinrChannel::new(SinrParams::default_single_hop());
/// let pos = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
///
/// // Both 0 and 2 transmit: the flanked listener 1 is jammed (neither
/// // signal clears β = 2 against the other's interference).
/// let rx = ch.resolve(&pos, &[0, 2], &[1], &mut rng);
/// assert_eq!(rx, vec![Reception::Silence]);
/// ```
#[derive(Debug, Clone)]
pub struct SinrChannel {
    params: SinrParams,
}

impl SinrChannel {
    /// Creates a SINR channel with the given (already validated) parameters.
    #[must_use]
    pub fn new(params: SinrParams) -> Self {
        SinrChannel { params }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Total interference power at point `at` caused by the given
    /// transmitters: `Σ_w P / d(w, at)^α`.
    ///
    /// Exposed for the analysis crate (Lemmas 3–4 measure exactly this
    /// quantity at the nodes of `S_i`).
    #[must_use]
    pub fn interference_at(&self, positions: &[Point], at: Point, transmitters: &[NodeId]) -> f64 {
        let p = self.params.power();
        let alpha = self.params.alpha();
        transmitters
            .iter()
            .map(|&w| p / pow_alpha(positions[w].distance_sq(at), alpha))
            .sum()
    }

    /// The exact SINR of link `u → v` when the nodes in `others`
    /// (excluding `u` and `v` themselves) transmit concurrently.
    ///
    /// Returns `f64::INFINITY` when both noise and interference are zero.
    #[must_use]
    pub fn sinr(&self, positions: &[Point], u: NodeId, v: NodeId, others: &[NodeId]) -> f64 {
        let p = self.params.power();
        let alpha = self.params.alpha();
        let signal = p / pow_alpha(positions[u].distance_sq(positions[v]), alpha);
        let interference: f64 = others
            .iter()
            .filter(|&&w| w != u && w != v)
            .map(|&w| p / pow_alpha(positions[w].distance_sq(positions[v]), alpha))
            .sum();
        let denom = self.params.noise() + interference;
        if denom == 0.0 {
            f64::INFINITY
        } else {
            signal / denom
        }
    }

    /// The single resolve loop every public path funnels through.
    ///
    /// All four trait entry points (`resolve`, `resolve_cached`,
    /// `resolve_perturbed`, `resolve_instrumented`) are thin wrappers over
    /// this function, so their bit-exactness contracts hold *by
    /// construction* rather than by keeping parallel loops in sync:
    ///
    /// * `cache` must already be validated against `positions` (`None`
    ///   recomputes gains from geometry); cached and uncached differ only
    ///   in where `sig` is read from, with identical accumulation order.
    /// * `perturbation = None` uses the clean denominator grouping
    ///   `noise + (total - best_sig)`; `Some` uses the perturbed grouping
    ///   `scaled_noise + extra + (total - best_sig)`. Callers map neutral
    ///   perturbations to `None`, which preserves the historical clean-path
    ///   expressions exactly.
    /// * `breakdown`, when supplied, only *reads* the already-computed
    ///   terms — it cannot alter the decision.
    fn resolve_core(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: Option<&ChannelPerturbation<'_>>,
        mut breakdown: Option<&mut Vec<SinrBreakdown>>,
    ) -> Vec<Reception> {
        let p = self.params.power();
        let alpha = self.params.alpha();
        let beta = self.params.beta();
        let noise = match perturbation {
            Some(pt) => self.params.noise() * pt.noise_scale(),
            None => self.params.noise(),
        };
        let mut out = Vec::with_capacity(listeners.len());
        // Shared per-listener epilogue: the jammer term is looked up once
        // per listener and feeds both the denominator and the breakdown.
        // The scaled noise and the jammer term join the denominator exactly
        // where Equation 1 puts N; the clean grouping is kept verbatim so
        // an absent perturbation reproduces the historical expression bit
        // for bit.
        let finish = |v: NodeId,
                      ScanOutcome {
                          total,
                          best_sig,
                          best_tx,
                      }: ScanOutcome,
                      out: &mut Vec<Reception>,
                      breakdown: &mut Option<&mut Vec<SinrBreakdown>>| {
            let extra = perturbation.map(|pt| pt.extra_at(v));
            let denom = match extra {
                Some(e) => noise + e + (total - best_sig),
                None => noise + (total - best_sig),
            };
            let reception = match best_tx {
                Some(u) if best_sig >= beta * denom => Reception::Message { from: u },
                _ => Reception::Silence,
            };
            if let Some(b) = breakdown.as_deref_mut() {
                b.push(SinrBreakdown {
                    listener: v,
                    best_tx,
                    signal: best_sig,
                    interference: total - best_sig,
                    noise,
                    extra: extra.unwrap_or(0.0),
                    margin: best_sig - beta * denom,
                    decoded: reception.is_message(),
                });
            }
            out.push(reception);
        };
        match cache {
            // Cached rounds are table lookups — the batch kernels have
            // nothing to compute there, so the scalar row scan stands.
            Some(c) => {
                for &v in listeners {
                    let row = Some(c.row(v));
                    let outcome =
                        scan_transmitters(p, alpha, positions, row, v, positions[v], transmitters);
                    finish(v, outcome, &mut out, &mut breakdown);
                }
            }
            // Uncached rounds recompute every gain from geometry, so they
            // run through the batched SoA kernels: the transmitters'
            // coordinates are gathered once per round, then listeners are
            // scanned in blocks through the fused `scan_block` kernel — one
            // pass computing gains and folds for LISTENER_BLOCK listeners
            // at once, each lane bit-identical to the scalar scan (see
            // kernels module docs). The tail block falls back to the
            // per-listener batch + fold, which is the same arithmetic.
            None => {
                let mut scratch = ScanScratch::new();
                scratch.gather(positions, transmitters);
                for block in listeners.chunks(LISTENER_BLOCK) {
                    if block.len() == LISTENER_BLOCK {
                        let mut vx = [0.0; LISTENER_BLOCK];
                        let mut vy = [0.0; LISTENER_BLOCK];
                        for (j, &v) in block.iter().enumerate() {
                            debug_assert!(
                                transmitters.iter().all(|&u| u != v),
                                "a node cannot transmit and listen simultaneously"
                            );
                            vx[j] = positions[v].x;
                            vy[j] = positions[v].y;
                        }
                        let folds = scan_block(p, alpha, &scratch.xs, &scratch.ys, &vx, &vy);
                        for (&v, fold) in block.iter().zip(folds) {
                            let outcome = ScanOutcome {
                                total: fold.total,
                                best_sig: fold.best_sig,
                                best_tx: fold.best_idx.map(|i| transmitters[i]),
                            };
                            finish(v, outcome, &mut out, &mut breakdown);
                        }
                    } else {
                        for &v in block {
                            let outcome = scan_transmitters_batched(
                                p,
                                alpha,
                                v,
                                positions[v],
                                transmitters,
                                &mut scratch,
                            );
                            finish(v, outcome, &mut out, &mut breakdown);
                        }
                    }
                }
            }
        }
        out
    }
}

impl sealed::Sealed for SinrChannel {}

impl Channel for SinrChannel {
    fn resolve(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        _rng: &mut SmallRng,
    ) -> Vec<Reception> {
        self.resolve_core(positions, transmitters, listeners, None, None, None)
    }

    fn resolve_cached(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        _rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let cache = cache.filter(|c| c.matches(positions, &self.params));
        self.resolve_core(positions, transmitters, listeners, cache, None, None)
    }

    fn resolve_perturbed(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        if perturbation.is_neutral() {
            return self.resolve_cached(positions, transmitters, listeners, cache, rng);
        }
        let cache = cache.filter(|c| c.matches(positions, &self.params));
        self.resolve_core(positions, transmitters, listeners, cache, Some(perturbation), None)
    }

    fn resolve_instrumented(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        _rng: &mut SmallRng,
        breakdown: &mut Vec<SinrBreakdown>,
    ) -> Vec<Reception> {
        breakdown.clear();
        let cache = cache.filter(|c| c.matches(positions, &self.params));
        // A neutral perturbation routes to the clean denominator grouping,
        // exactly as the uninstrumented dispatch does.
        let perturbation = Some(perturbation).filter(|pt| !pt.is_neutral());
        self.resolve_core(
            positions,
            transmitters,
            listeners,
            cache,
            perturbation,
            Some(breakdown),
        )
    }

    fn resolve_farfield(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        engine: Option<&mut FarFieldEngine>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        match engine.filter(|e| e.matches(positions, &self.params)) {
            Some(e) => {
                // A neutral perturbation routes to the clean denominator
                // grouping, exactly as resolve_core's dispatch does.
                let perturbation = Some(perturbation).filter(|pt| !pt.is_neutral());
                e.resolve_sinr(&self.params, positions, transmitters, listeners, perturbation)
            }
            None => {
                self.resolve_perturbed(positions, transmitters, listeners, None, perturbation, rng)
            }
        }
    }

    fn resolve_hierarchical(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        engine: Option<&mut HierarchicalFarFieldEngine>,
        executor: &dyn ChunkExecutor,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        match engine.filter(|e| e.matches(positions, &self.params)) {
            Some(e) => {
                // A neutral perturbation routes to the clean denominator
                // grouping, exactly as resolve_core's dispatch does.
                let perturbation = Some(perturbation).filter(|pt| !pt.is_neutral());
                e.resolve_sinr(
                    &self.params,
                    positions,
                    transmitters,
                    listeners,
                    perturbation,
                    executor,
                )
            }
            None => {
                self.resolve_perturbed(positions, transmitters, listeners, None, perturbation, rng)
            }
        }
    }

    fn interferer_gain(&self, from: Point, to: Point, power: f64) -> f64 {
        power / pow_alpha(from.distance_sq(to), self.params.alpha())
    }

    fn build_gain_cache(&self, positions: &[Point]) -> Option<GainCache> {
        GainCache::build(positions, &self.params)
    }

    fn build_farfield_engine(&self, positions: &[Point]) -> Option<FarFieldEngine> {
        FarFieldEngine::build(positions, &self.params)
    }

    fn build_hierarchical_engine(&self, positions: &[Point]) -> Option<HierarchicalFarFieldEngine> {
        HierarchicalFarFieldEngine::build(positions, &self.params)
    }

    fn resolve_draws_rng(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "sinr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn params() -> SinrParams {
        // P=16, alpha=3, beta=2, noise=1.
        SinrParams::builder()
            .power(16.0)
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn pow_alpha_matches_powf() {
        for &alpha in &[2.0f64, 2.5, 3.0, 3.7, 4.0, 5.1, 6.0] {
            for &d in &[0.5f64, 1.0, 2.0, 10.0, 123.4] {
                let want = d.powf(alpha);
                let got = pow_alpha(d * d, alpha);
                assert!(
                    (got - want).abs() <= 1e-9 * want,
                    "alpha={alpha} d={d} got={got} want={want}"
                );
            }
        }
    }

    #[test]
    fn solo_transmitter_in_range_is_received() {
        // d=1: SINR = 16 / 1 = 16 >= 2.
        let ch = SinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let rx = ch.resolve(&pos, &[0], &[1], &mut rng());
        assert_eq!(rx, vec![Reception::Message { from: 0 }]);
    }

    #[test]
    fn solo_transmitter_out_of_range_is_silence() {
        // d=3: signal = 16/27 < beta*noise = 2.
        let ch = SinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(3.0, 0.0)];
        let rx = ch.resolve(&pos, &[0], &[1], &mut rng());
        assert_eq!(rx, vec![Reception::Silence]);
    }

    #[test]
    fn symmetric_interferers_jam_each_other() {
        // Listener at origin flanked by transmitters at ±1: each has signal
        // 16, interference 16, SINR = 16/(1+16) < 2.
        let ch = SinrChannel::new(params());
        let pos = [Point::new(-1.0, 0.0), Point::ORIGIN, Point::new(1.0, 0.0)];
        let rx = ch.resolve(&pos, &[0, 2], &[1], &mut rng());
        assert_eq!(rx, vec![Reception::Silence]);
    }

    #[test]
    fn capture_effect_near_transmitter_wins() {
        // Near transmitter at d=1 (signal 16), far interferer at d=4
        // (signal 16/64 = 0.25). SINR = 16 / (1 + 0.25) = 12.8 >= 2.
        let ch = SinrChannel::new(params());
        let pos = [
            Point::new(1.0, 0.0),  // near tx
            Point::ORIGIN,         // listener
            Point::new(-4.0, 0.0), // far interferer
        ];
        let rx = ch.resolve(&pos, &[0, 2], &[1], &mut rng());
        assert_eq!(rx, vec![Reception::Message { from: 0 }]);
    }

    #[test]
    fn spatial_reuse_two_simultaneous_receptions() {
        // Two well-separated pairs each decode concurrently — the spectrum
        // reuse that the paper's algorithm exploits.
        let ch = SinrChannel::new(params());
        let pos = [
            Point::new(0.0, 0.0),   // tx A
            Point::new(1.0, 0.0),   // rx A
            Point::new(100.0, 0.0), // tx B
            Point::new(99.0, 0.0),  // rx B
        ];
        let rx = ch.resolve(&pos, &[0, 2], &[1, 3], &mut rng());
        assert_eq!(
            rx,
            vec![
                Reception::Message { from: 0 },
                Reception::Message { from: 2 }
            ]
        );
    }

    #[test]
    fn no_transmitters_means_silence() {
        let ch = SinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let rx = ch.resolve(&pos, &[], &[0, 1], &mut rng());
        assert_eq!(rx, vec![Reception::Silence, Reception::Silence]);
    }

    #[test]
    fn interference_at_sums_received_powers() {
        let ch = SinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        // At origin: 16/1 + 16/8 = 18.
        let i = ch.interference_at(&pos, Point::ORIGIN, &[1, 2]);
        assert!((i - 18.0).abs() < 1e-12);
    }

    #[test]
    fn sinr_helper_matches_resolve_decision() {
        let ch = SinrChannel::new(params());
        let pos = [Point::new(1.0, 0.0), Point::ORIGIN, Point::new(-4.0, 0.0)];
        let s = ch.sinr(&pos, 0, 1, &[2]);
        assert!((s - 16.0 / 1.25).abs() < 1e-12);
        assert!(s >= ch.params().beta());
    }

    #[test]
    fn sinr_infinite_with_no_noise_no_interference() {
        let p = SinrParams::builder()
            .power(16.0)
            .noise(0.0)
            .build()
            .unwrap();
        let ch = SinrChannel::new(p);
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0)];
        assert_eq!(ch.sinr(&pos, 0, 1, &[]), f64::INFINITY);
    }

    #[test]
    fn reception_order_follows_listener_order() {
        let ch = SinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0), Point::new(200.0, 0.0)];
        let rx = ch.resolve(&pos, &[0], &[2, 1], &mut rng());
        // Listener 2 is far: signal 16/200^3 << 2. Listener 1 decodes.
        assert_eq!(rx[0], Reception::Silence);
        assert_eq!(rx[1], Reception::Message { from: 0 });
    }

    #[test]
    fn channel_name_and_cd_flag() {
        let ch = SinrChannel::new(params());
        assert_eq!(ch.name(), "sinr");
        assert!(!ch.supports_collision_detection());
    }
}
