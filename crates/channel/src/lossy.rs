//! A lossy SINR variant for robustness / failure-injection experiments.

use rand::rngs::SmallRng;
use rand::Rng;

use fading_geom::Point;

use crate::channel::{sealed, Channel};
use crate::{
    ChannelPerturbation, ChunkExecutor, FarFieldEngine, GainCache, HierarchicalFarFieldEngine,
    NodeId, Reception, SinrBreakdown, SinrChannel, SinrParams,
};

/// A SINR channel in which every successfully decoded message is
/// additionally **dropped** with a fixed probability, independently per
/// listener per round.
///
/// This models unmodeled outage effects (deep fades, receiver-side losses)
/// beyond the geometric SINR rule, and supports the failure-injection
/// ablation of experiment E12: the paper's algorithm relies on receptions
/// only as knockout signals, so a loss rate `q < 1` merely rescales the
/// knockout rate by `1 − q` — resolution slows by a constant factor but
/// never breaks.
///
/// Drops are drawn from the channel RNG, so runs remain reproducible.
///
/// # Example
///
/// ```
/// use fading_channel::{Channel, LossySinrChannel, SinrParams};
/// use fading_geom::Point;
/// use rand::SeedableRng;
///
/// let ch = LossySinrChannel::new(SinrParams::default_single_hop(), 0.3)?;
/// assert_eq!(ch.drop_probability(), 0.3);
/// let pos = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
/// let rx = ch.resolve(&pos, &[0], &[1], &mut rng);
/// assert_eq!(rx.len(), 1);
/// # Ok::<(), fading_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LossySinrChannel {
    inner: SinrChannel,
    drop_prob: f64,
}

impl LossySinrChannel {
    /// Creates a lossy SINR channel with per-reception drop probability
    /// `drop_prob ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ChannelError::InvalidParameter`] if `drop_prob` is
    /// outside `[0, 1)` or not finite.
    pub fn new(params: SinrParams, drop_prob: f64) -> Result<Self, crate::ChannelError> {
        if !(0.0..1.0).contains(&drop_prob) {
            return Err(crate::ChannelError::InvalidParameter {
                name: "drop_prob",
                reason: "must lie in [0, 1)",
                value: drop_prob,
            });
        }
        Ok(LossySinrChannel {
            inner: SinrChannel::new(params),
            drop_prob,
        })
    }

    /// The per-reception drop probability.
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_prob
    }

    /// The underlying SINR parameters.
    #[must_use]
    pub fn params(&self) -> &SinrParams {
        self.inner.params()
    }
}

impl sealed::Sealed for LossySinrChannel {}

impl Channel for LossySinrChannel {
    fn resolve(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let mut receptions = self.inner.resolve(positions, transmitters, listeners, rng);
        if self.drop_prob > 0.0 {
            for r in &mut receptions {
                if r.is_message() && rng.gen_bool(self.drop_prob) {
                    *r = Reception::Silence;
                }
            }
        }
        receptions
    }

    fn resolve_cached(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        // Reuse the inner SINR cached path; the drop pass afterwards draws
        // from the rng in the same order as the uncached resolve.
        let mut receptions = self
            .inner
            .resolve_cached(positions, transmitters, listeners, cache, rng);
        if self.drop_prob > 0.0 {
            for r in &mut receptions {
                if r.is_message() && rng.gen_bool(self.drop_prob) {
                    *r = Reception::Silence;
                }
            }
        }
        receptions
    }

    fn resolve_perturbed(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        // The perturbation applies to the SINR physics; the i.i.d. drop
        // pass afterwards draws from the rng in the same order as the
        // clean resolve paths.
        let mut receptions = self
            .inner
            .resolve_perturbed(positions, transmitters, listeners, cache, perturbation, rng);
        if self.drop_prob > 0.0 {
            for r in &mut receptions {
                if r.is_message() && rng.gen_bool(self.drop_prob) {
                    *r = Reception::Silence;
                }
            }
        }
        receptions
    }

    fn resolve_instrumented(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
        breakdown: &mut Vec<SinrBreakdown>,
    ) -> Vec<Reception> {
        // The inner SINR physics produce the breakdowns; the i.i.d. drop
        // pass afterwards draws from the rng in the same order as the
        // uninstrumented paths. A dropped message keeps `decoded = true` in
        // its breakdown — the SINR test passed; the loss layer is a
        // separate, post-SINR effect (see `SinrBreakdown`).
        let mut receptions = self.inner.resolve_instrumented(
            positions,
            transmitters,
            listeners,
            cache,
            perturbation,
            rng,
            breakdown,
        );
        if self.drop_prob > 0.0 {
            for r in &mut receptions {
                if r.is_message() && rng.gen_bool(self.drop_prob) {
                    *r = Reception::Silence;
                }
            }
        }
        receptions
    }

    fn resolve_farfield(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        engine: Option<&mut FarFieldEngine>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        // The inner SINR physics take the pruned path; the i.i.d. drop
        // pass afterwards draws from the rng in the same order as the
        // other resolve paths (the pruned resolve draws nothing).
        let mut receptions = self.inner.resolve_farfield(
            positions,
            transmitters,
            listeners,
            engine,
            perturbation,
            rng,
        );
        if self.drop_prob > 0.0 {
            for r in &mut receptions {
                if r.is_message() && rng.gen_bool(self.drop_prob) {
                    *r = Reception::Silence;
                }
            }
        }
        receptions
    }

    fn resolve_hierarchical(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        engine: Option<&mut HierarchicalFarFieldEngine>,
        executor: &dyn ChunkExecutor,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        // The inner SINR physics take the pruned path (drawing nothing
        // from the rng, on any executor); the i.i.d. drop pass afterwards
        // runs serially in listener order, drawing from the rng exactly as
        // the other resolve paths do.
        let mut receptions = self.inner.resolve_hierarchical(
            positions,
            transmitters,
            listeners,
            engine,
            executor,
            perturbation,
            rng,
        );
        if self.drop_prob > 0.0 {
            for r in &mut receptions {
                if r.is_message() && rng.gen_bool(self.drop_prob) {
                    *r = Reception::Silence;
                }
            }
        }
        receptions
    }

    fn interferer_gain(&self, from: Point, to: Point, power: f64) -> f64 {
        self.inner.interferer_gain(from, to, power)
    }

    fn build_gain_cache(&self, positions: &[Point]) -> Option<GainCache> {
        self.inner.build_gain_cache(positions)
    }

    fn build_farfield_engine(&self, positions: &[Point]) -> Option<FarFieldEngine> {
        self.inner.build_farfield_engine(positions)
    }

    fn build_hierarchical_engine(&self, positions: &[Point]) -> Option<HierarchicalFarFieldEngine> {
        self.inner.build_hierarchical_engine(positions)
    }

    fn name(&self) -> &'static str {
        "lossy-sinr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> SinrParams {
        SinrParams::builder()
            .power(16.0)
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn validates_drop_probability() {
        assert!(LossySinrChannel::new(params(), 0.0).is_ok());
        assert!(LossySinrChannel::new(params(), 0.999).is_ok());
        assert!(LossySinrChannel::new(params(), 1.0).is_err());
        assert!(LossySinrChannel::new(params(), -0.1).is_err());
        assert!(LossySinrChannel::new(params(), f64::NAN).is_err());
    }

    #[test]
    fn zero_loss_matches_plain_sinr() {
        let lossy = LossySinrChannel::new(params(), 0.0).unwrap();
        let plain = SinrChannel::new(params());
        let pos = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
        ];
        let a = lossy.resolve(&pos, &[0], &[1, 2], &mut SmallRng::seed_from_u64(7));
        let b = plain.resolve(&pos, &[0], &[1, 2], &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn drop_rate_is_approximately_q() {
        let lossy = LossySinrChannel::new(params(), 0.3).unwrap();
        let pos = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 5_000;
        let received = (0..trials)
            .filter(|_| lossy.resolve(&pos, &[0], &[1], &mut rng)[0].is_message())
            .count();
        let rate = received as f64 / f64::from(trials);
        assert!((rate - 0.7).abs() < 0.03, "observed decode rate {rate}");
    }

    #[test]
    fn losses_never_fabricate_messages() {
        // A link that can never decode stays silent under any loss setting.
        let lossy = LossySinrChannel::new(params(), 0.5).unwrap();
        let pos = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            assert_eq!(
                lossy.resolve(&pos, &[0], &[1], &mut rng),
                vec![Reception::Silence]
            );
        }
    }

    #[test]
    fn name_and_accessors() {
        let lossy = LossySinrChannel::new(params(), 0.25).unwrap();
        assert_eq!(lossy.name(), "lossy-sinr");
        assert_eq!(lossy.drop_probability(), 0.25);
        assert_eq!(lossy.params(), &params());
        assert!(!lossy.supports_collision_detection());
    }
}
