//! The hierarchical far-field engine: Barnes–Hut-style tile-tree resolve
//! with the same **decision-exactness** contract as [`FarFieldEngine`].
//!
//! # Why a hierarchy
//!
//! The flat engine precomputes gain bounds for every tile *pair*, which is
//! quadratic in tile count: capping the tables ([`MAX_TILES_PER_SIDE`])
//! keeps memory bounded but forces tile occupancy — and with it the exact
//! near-scan cost per listener — to grow linearly with `n`. The
//! [`TileTree`] removes the quadratic table: fine tiles stay small (near
//! scans stay O(occupancy)), and the far field is aggregated against
//! tree nodes chosen per listener tile by an opening criterion, touching
//! O(log n) nodes per traversal with **no** pairwise precompute.
//!
//! # The traversal
//!
//! Per round, transmitters are bucketed into fine tiles and their counts
//! propagated up the tree (only nodes actually touched are visited). For
//! each distinct listener tile the engine walks the tree from the root:
//!
//! * nodes with no transmitters beneath them are skipped;
//! * nodes whose fine-tile span intersects the listener's near ring are
//!   descended (their mass may include near transmitters, which the exact
//!   near scan owns);
//! * far nodes are **accepted** when their certified distance bracket is
//!   tight — `d_max² ≤ [`HIER_ACCEPT_RATIO_SQ`] · d_min²` — contributing
//!   `mass × [P/d_max^α, P/d_min^α]` to the interference bracket (and the
//!   upper gain to the far cap); loose nodes are descended, bottoming out
//!   at fine tiles which are always accepted.
//!
//! Every transmitter therefore lands in exactly one accepted node or in
//! the near scan, and every accepted bracket is certified by the tree's
//! content bboxes — so the 5-rung decision ladder ([`decide_ladder`]) and
//! its exactness argument carry over verbatim from the flat engine. The
//! receptions are **bit-identical** to `resolve`/`resolve_perturbed` on
//! all inputs; `tests/farfield_equivalence.rs` and
//! `tests/hierarchical_bounds.rs` enforce it end to end.
//!
//! # In-round parallelism
//!
//! Listener decisions are independent given the per-tile far aggregates,
//! so after a serial prepare phase (bucketing, mass propagation, one
//! traversal per distinct listener tile) the per-listener ladder runs on a
//! [`ChunkExecutor`]: listeners are split into fixed
//! [`HIER_CHUNK`]-sized chunks (independent of thread count), each task
//! writes its own output slot, slots are merged in chunk order, and the
//! per-chunk ladder counters are summed (u64 addition — commutative), so
//! any executor scheduling produces byte-identical results.

use std::sync::Mutex;

use fading_geom::{Point, PointsSoA, TileTree};

use crate::exec::ChunkExecutor;
use crate::farfield::{decide_ladder, DecisionInputs};
use crate::kernels::gain_batch;
use crate::sinr::{scan_transmitters_soa, ScanOutcome};
use crate::{
    pow_alpha, ChannelPerturbation, FarFieldStats, NodeId, Reception, SinrParams,
    FARFIELD_REL_SLACK, NEAR_RING,
};

/// Average number of nodes per *fine* tile the hierarchical engine aims
/// for. Matches the flat engine's occupancy target, but without the flat
/// engine's tile-count cap the occupancy actually stays at this value as
/// `n` grows.
pub const HIER_TARGET_TILE_OCCUPANCY: usize = 64;

/// Upper bound on fine tiles per side (memory is linear in tile count —
/// `512² = 262144` fine tiles ≈ a few MB of aggregates — so the cap is
/// far above [`MAX_TILES_PER_SIDE`](crate::MAX_TILES_PER_SIDE)).
pub const HIER_MAX_TILES_PER_SIDE: usize = 512;

/// Opening criterion: a far tree node is accepted as one aggregate when
/// `d_max² ≤ ratio · d_min²` between the listener tile's and the node's
/// content bboxes (i.e. `d_max ≤ 1.5·d_min`), otherwise its children are
/// visited. Smaller = tighter brackets but deeper traversals; 2.25 keeps
/// the worst accepted gain ratio `(d_max/d_min)^α` comparable to the flat
/// engine's near-far tile pairs while still aggregating geometrically.
pub const HIER_ACCEPT_RATIO_SQ: f64 = 2.25;

/// Listeners per parallel chunk. Fixed (never derived from thread count)
/// so chunk boundaries — and thus all floating-point accumulation orders —
/// are identical under any executor.
pub const HIER_CHUNK: usize = 1024;

/// Chunk-local gain buffers for [`HierarchicalFarFieldEngine`]'s parallel
/// listener phase: one per chunk closure, so concurrent
/// `decide_listener` calls never share mutable state.
#[derive(Debug, Default)]
struct NearScratch {
    /// Per-near-tile batched gains (bucket order).
    near_gains: Vec<f64>,
    /// Exact-fallback gains over all transmitters (slice order).
    fallback_gains: Vec<f64>,
}

/// Multi-resolution far-field engine over a [`TileTree`]. Built once per
/// deployment by
/// [`Channel::build_hierarchical_engine`](crate::Channel::build_hierarchical_engine);
/// see the [module docs](self) for the traversal and its exactness
/// argument.
#[derive(Debug)]
pub struct HierarchicalFarFieldEngine {
    tree: TileTree,
    n: usize,
    power: f64,
    alpha: f64,
    first: Point,
    last: Point,
    /// Live-node flags mirrored from the simulator's knockout/churn state.
    alive: Vec<bool>,
    /// Live members per fine tile.
    alive_per_tile: Vec<u32>,
    num_alive: usize,
    /// SoA mirror of the build positions, feeding the batched kernels
    /// (coherent with `positions` whenever `matches` holds).
    soa: PointsSoA,
    /// Per-round transmitter buckets per fine tile: `(node, slice index)`.
    tx_in_tile: Vec<Vec<(u32, u32)>>,
    /// Per-tile contiguous transmitter coordinates, parallel to
    /// `tx_in_tile` (bucket order), so near-ring scans run as one fused
    /// gain batch per tile.
    tx_x_in_tile: Vec<Vec<f64>>,
    tx_y_in_tile: Vec<Vec<f64>>,
    /// Round-level gathered transmitter coordinates (slice order) for the
    /// batched exact fallback. Written during the serial prepare phase,
    /// read-only during the parallel listener phase (gain buffers are
    /// chunk-local — see [`NearScratch`]).
    tx_xs: Vec<f64>,
    tx_ys: Vec<f64>,
    /// Per-round transmitter count under each tree node, per level.
    tx_count: Vec<Vec<u32>>,
    /// Nodes touched this round, per level (level 0 doubles as the list of
    /// fine tiles whose `tx_in_tile` bucket needs clearing).
    touched: Vec<Vec<u32>>,
    /// Lazily computed per-listener-tile far aggregates, validated by
    /// `far_stamp` against the current round's `stamp`.
    far_lo: Vec<f64>,
    far_hi: Vec<f64>,
    far_cap: Vec<f64>,
    far_stamp: Vec<u64>,
    stamp: u64,
    /// Traversal scratch, reused across listener tiles.
    stack: Vec<(usize, usize)>,
    stats: FarFieldStats,
}

impl HierarchicalFarFieldEngine {
    /// Builds an engine for `positions` under `params`, with the default
    /// tiling ([`HIER_TARGET_TILE_OCCUPANCY`] nodes per fine tile, at most
    /// [`HIER_MAX_TILES_PER_SIDE`] fine tiles per side).
    ///
    /// Returns `None` for an empty deployment or non-finite coordinates
    /// (the exact paths define the semantics of such inputs).
    #[must_use]
    pub fn build(positions: &[Point], params: &SinrParams) -> Option<Self> {
        let tree = TileTree::with_target_occupancy(
            positions,
            HIER_TARGET_TILE_OCCUPANCY,
            HIER_MAX_TILES_PER_SIDE,
        )?;
        Self::from_tree(tree, positions, params)
    }

    /// Builds an engine over an explicit `tiles_per_side × tiles_per_side`
    /// fine grid. Exposed so tests can force multi-level tree layouts on
    /// small deployments; `build` is the production sizing.
    #[must_use]
    pub fn build_with_tiling(
        positions: &[Point],
        params: &SinrParams,
        tiles_per_side: usize,
    ) -> Option<Self> {
        let tree = TileTree::build(positions, tiles_per_side)?;
        Self::from_tree(tree, positions, params)
    }

    fn from_tree(tree: TileTree, positions: &[Point], params: &SinrParams) -> Option<Self> {
        if !positions.iter().all(|p| p.is_finite()) {
            return None;
        }
        let num_fine = tree.fine().num_tiles();
        let num_levels = tree.num_levels();
        let alive_per_tile = (0..num_fine).map(|t| tree.fine().count(t) as u32).collect();
        Some(HierarchicalFarFieldEngine {
            n: positions.len(),
            power: params.power(),
            alpha: params.alpha(),
            first: positions[0],
            last: positions[positions.len() - 1],
            alive: vec![true; positions.len()],
            alive_per_tile,
            num_alive: positions.len(),
            soa: PointsSoA::from_points(positions),
            tx_in_tile: vec![Vec::new(); num_fine],
            tx_x_in_tile: vec![Vec::new(); num_fine],
            tx_y_in_tile: vec![Vec::new(); num_fine],
            tx_xs: Vec::new(),
            tx_ys: Vec::new(),
            tx_count: (0..num_levels).map(|l| vec![0u32; tree.num_nodes(l)]).collect(),
            touched: vec![Vec::new(); num_levels],
            far_lo: vec![0.0; num_fine],
            far_hi: vec![0.0; num_fine],
            far_cap: vec![0.0; num_fine],
            far_stamp: vec![0; num_fine],
            stamp: 0,
            stack: Vec::new(),
            stats: FarFieldStats::default(),
            tree,
        })
    }

    /// Whether this engine was built over exactly these `positions` and
    /// SINR parameters (size, power, α, and a first/last position
    /// fingerprint — the same discipline as
    /// [`FarFieldEngine::matches`](crate::FarFieldEngine::matches)).
    #[must_use]
    pub fn matches(&self, positions: &[Point], params: &SinrParams) -> bool {
        self.n == positions.len()
            && self.power == params.power()
            && self.alpha == params.alpha()
            && positions.first() == Some(&self.first)
            && positions.last() == Some(&self.last)
    }

    /// Marks node `w` dead, decrementing its fine tile's live count.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn deactivate(&mut self, w: NodeId) {
        assert!(
            w < self.n,
            "node {w} out of range for engine of size {}",
            self.n
        );
        if std::mem::replace(&mut self.alive[w], false) {
            self.alive_per_tile[self.tree.fine().tile_of(w)] -= 1;
            self.num_alive -= 1;
        }
    }

    /// Marks node `w` live again (churn revival). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn activate(&mut self, w: NodeId) {
        assert!(
            w < self.n,
            "node {w} out of range for engine of size {}",
            self.n
        );
        if !std::mem::replace(&mut self.alive[w], true) {
            self.alive_per_tile[self.tree.fine().tile_of(w)] += 1;
            self.num_alive += 1;
        }
    }

    /// Whether node `w` is currently marked live.
    #[must_use]
    pub fn is_active(&self, w: NodeId) -> bool {
        self.alive[w]
    }

    /// Number of live nodes.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.num_alive
    }

    /// Number of live nodes in fine tile `t`.
    #[must_use]
    pub fn active_in_tile(&self, t: usize) -> usize {
        self.alive_per_tile[t] as usize
    }

    /// The underlying tile tree.
    #[must_use]
    pub fn tree(&self) -> &TileTree {
        &self.tree
    }

    /// Decision counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FarFieldStats {
        self.stats
    }

    /// Resets the decision counters.
    pub fn reset_stats(&mut self) {
        self.stats = FarFieldStats::default();
    }

    /// Overwrites the decision counters (checkpoint restore: a rebuilt
    /// engine resumes the counter totals the snapshotted engine had
    /// accumulated, so `EngineCounters` reconciliation survives a resume).
    pub fn set_stats(&mut self, stats: FarFieldStats) {
        self.stats = stats;
    }

    /// One Barnes–Hut traversal: the far-field aggregate `(lo, hi, cap)`
    /// for listeners in fine tile `lt`, over this round's transmitter
    /// masses. `stack` is caller-provided scratch.
    fn traverse(&self, lt: usize, stack: &mut Vec<(usize, usize)>) -> (f64, f64, f64) {
        let fine = self.tree.fine();
        let (ltc, ltr) = (lt % fine.cols(), lt / fine.cols());
        // The near ring in fine-tile coordinates (clipped at the grid edge,
        // exactly like `TileIndex::neighborhood`).
        let near_c0 = ltc.saturating_sub(NEAR_RING);
        let near_c1 = (ltc + NEAR_RING).min(fine.cols() - 1);
        let near_r0 = ltr.saturating_sub(NEAR_RING);
        let near_r1 = (ltr + NEAR_RING).min(fine.rows() - 1);

        let p = self.power;
        let alpha = self.alpha;
        let (mut lo, mut hi, mut cap) = (0.0f64, 0.0f64, 0.0f64);
        stack.clear();
        stack.push(self.tree.root());
        while let Some((l, idx)) = stack.pop() {
            let mass = self.tx_count[l][idx];
            if mass == 0 {
                continue;
            }
            if l > 0 {
                // Descend nodes overlapping the near ring: their mass may
                // include near transmitters, which the exact scan owns.
                let (crange, rrange) = self.tree.fine_tile_range(l, idx);
                if crange.start <= near_c1
                    && near_c0 < crange.end
                    && rrange.start <= near_r1
                    && near_r0 < rrange.end
                {
                    stack.extend(self.tree.children(l, idx).map(|c| (l - 1, c)));
                    continue;
                }
                let Some((d_min_sq, d_max_sq)) = self.tree.distance_sq_bounds_to(lt, l, idx)
                else {
                    unreachable!("listener tile and massive node are both non-empty")
                };
                if d_max_sq > HIER_ACCEPT_RATIO_SQ * d_min_sq {
                    // Too wide an opening angle: refine.
                    stack.extend(self.tree.children(l, idx).map(|c| (l - 1, c)));
                    continue;
                }
                // Accept the aggregate. d_min² = 0 (touching boxes) makes
                // the upper gain infinite — rung 1 then falls back, which
                // is conservative, never wrong.
                let m = f64::from(mass);
                lo += m * (p / pow_alpha(d_max_sq, alpha));
                let g_hi = p / pow_alpha(d_min_sq, alpha);
                hi += m * g_hi;
                cap = cap.max(g_hi);
            } else {
                // Fine tile: near ones belong to the exact scan; far ones
                // are always accepted (the recursion's base case).
                if fine.chebyshev(lt, idx) <= NEAR_RING {
                    continue;
                }
                let Some((d_min_sq, d_max_sq)) = self.tree.distance_sq_bounds_to(lt, 0, idx)
                else {
                    unreachable!("listener tile and massive tile are both non-empty")
                };
                let m = f64::from(mass);
                lo += m * (p / pow_alpha(d_max_sq, alpha));
                let g_hi = p / pow_alpha(d_min_sq, alpha);
                hi += m * g_hi;
                cap = cap.max(g_hi);
            }
        }
        (lo, hi, cap)
    }

    /// One listener's decision: exact near scan + cached far bracket
    /// through the shared ladder. Read-only over the engine (runs
    /// concurrently across chunks); `stats` and `scratch` are the
    /// caller's chunk-local accumulator and gain buffers.
    #[allow(clippy::too_many_arguments)] // the round's scalars, spelled out
    fn decide_listener(
        &self,
        v: NodeId,
        positions: &[Point],
        transmitters: &[NodeId],
        perturbation: Option<&ChannelPerturbation<'_>>,
        noise: f64,
        beta: f64,
        stats: &mut FarFieldStats,
        scratch: &mut NearScratch,
    ) -> Reception {
        let p = self.power;
        let alpha = self.alpha;
        let vp = positions[v];
        let fine = self.tree.fine();
        let lt = fine.tile_of(v);
        debug_assert_eq!(self.far_stamp[lt], self.stamp, "prepare pass missed tile {lt}");
        let far_lo = self.far_lo[lt];
        let far_hi = self.far_hi[lt];
        // Widened cap on any single far signal (covers bound rounding and
        // powf non-monotonicity; see FARFIELD_REL_SLACK).
        let far_cap = self.far_cap[lt] * (1.0 + FARFIELD_REL_SLACK);

        // Exact near-field scan: one fused gain batch per near tile
        // (canonical per-pair expression, bucket order), folded in bucket
        // order with winner = minimal slice index among the strict maxima
        // — exactly the canonical fold's first-strict-max.
        let mut near_sum = 0.0f64;
        let mut best_sig = 0.0f64;
        let mut best_tx: Option<NodeId> = None;
        let mut best_idx = u32::MAX;
        for near_t in fine.neighborhood(lt, NEAR_RING) {
            let bucket = &self.tx_in_tile[near_t];
            if bucket.is_empty() {
                continue;
            }
            scratch.near_gains.resize(bucket.len(), 0.0);
            gain_batch(
                p,
                alpha,
                &self.tx_x_in_tile[near_t],
                &self.tx_y_in_tile[near_t],
                vp.x,
                vp.y,
                &mut scratch.near_gains,
            );
            for (&sig, &(u, idx)) in scratch.near_gains.iter().zip(bucket) {
                let u = u as usize;
                debug_assert_ne!(u, v, "a node cannot transmit and listen simultaneously");
                near_sum += sig;
                if sig > best_sig {
                    best_sig = sig;
                    best_tx = Some(u);
                    best_idx = idx;
                } else if sig == best_sig && sig > 0.0 && idx < best_idx {
                    best_tx = Some(u);
                    best_idx = idx;
                }
            }
        }

        let extra = perturbation.map(|pt| pt.extra_at(v));
        decide_ladder(
            stats,
            DecisionInputs {
                near_sum,
                best_sig,
                best_tx,
                far_lo,
                far_hi,
                far_cap,
                noise,
                extra,
                beta,
            },
            || {
                // Exact fallback: the canonical batched scan over *all*
                // transmitters — bit-identical to SinrChannel by sharing
                // its kernels and fold. The gather (`tx_xs`/`tx_ys`) is
                // round-level and read-only; the gain buffer is
                // chunk-local.
                let ScanOutcome {
                    total,
                    best_sig,
                    best_tx,
                } = scan_transmitters_soa(
                    p,
                    alpha,
                    v,
                    vp,
                    transmitters,
                    &self.tx_xs,
                    &self.tx_ys,
                    &mut scratch.fallback_gains,
                );
                let denom = match extra {
                    Some(e) => noise + e + (total - best_sig),
                    None => noise + (total - best_sig),
                };
                match best_tx {
                    Some(u) if best_sig >= beta * denom => Reception::Message { from: u },
                    _ => Reception::Silence,
                }
            },
        )
    }

    /// Resolves one round with the tree-aggregated fast path; reception
    /// semantics (and bits) are exactly those of
    /// [`SinrChannel::resolve`](crate::SinrChannel). `perturbation` must be
    /// `None` for a neutral perturbation, mirroring the dispatch in
    /// `SinrChannel::resolve_core`. Listener chunks run on `executor`; see
    /// the [module docs](self) for why scheduling cannot affect results.
    pub(crate) fn resolve_sinr(
        &mut self,
        params: &SinrParams,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        perturbation: Option<&ChannelPerturbation<'_>>,
        executor: &dyn ChunkExecutor,
    ) -> Vec<Reception> {
        debug_assert!(self.matches(positions, params));
        let beta = params.beta();
        let noise = match perturbation {
            Some(pt) => params.noise() * pt.noise_scale(),
            None => params.noise(),
        };
        self.stats.rounds += 1;

        if transmitters.is_empty() {
            // The canonical loop yields Silence for every listener when
            // nobody transmits (best_tx stays None).
            self.stats.empty_round_silences += listeners.len() as u64;
            return vec![Reception::Silence; listeners.len()];
        }

        // Clear last round's masses (touched nodes only), then bucket this
        // round's transmitters by fine tile — remembering slice indices for
        // the canonical tie-break — and propagate counts up the tree.
        for l in 0..self.touched.len() {
            for &t in &self.touched[l] {
                self.tx_count[l][t as usize] = 0;
                if l == 0 {
                    self.tx_in_tile[t as usize].clear();
                    self.tx_x_in_tile[t as usize].clear();
                    self.tx_y_in_tile[t as usize].clear();
                }
            }
            self.touched[l].clear();
        }
        for (idx, &u) in transmitters.iter().enumerate() {
            let t = self.tree.fine().tile_of(u);
            if self.tx_in_tile[t].is_empty() {
                self.touched[0].push(t as u32);
            }
            self.tx_in_tile[t].push((u as u32, idx as u32));
            self.tx_x_in_tile[t].push(self.soa.xs()[u]);
            self.tx_y_in_tile[t].push(self.soa.ys()[u]);
            self.tx_count[0][t] += 1;
        }
        // Round-level SoA gather for the exact fallback scan: written here
        // in the serial prepare, read-only during the parallel phase.
        self.soa.gather(transmitters, &mut self.tx_xs, &mut self.tx_ys);
        for l in 1..self.tree.num_levels() {
            let cols = self.tree.level_cols(l);
            let child_cols = self.tree.level_cols(l - 1);
            // Split the borrows: children (level l-1) feed parents
            // (level l) in both the count and touched arrays.
            let (lower_counts, upper_counts) = self.tx_count.split_at_mut(l);
            let child_counts = &lower_counts[l - 1];
            let parent_counts = &mut upper_counts[0];
            let (lower_touched, upper_touched) = self.touched.split_at_mut(l);
            let child_touched = &lower_touched[l - 1];
            let parent_touched = &mut upper_touched[0];
            for &c in child_touched {
                let c = c as usize;
                let parent = (c / child_cols / 2) * cols + (c % child_cols) / 2;
                if parent_counts[parent] == 0 {
                    parent_touched.push(parent as u32);
                }
                parent_counts[parent] += child_counts[c];
            }
        }
        self.stamp += 1;

        // Serial prepare: one traversal per distinct listener tile (all
        // listeners of a tile share the aggregate).
        let mut stack = std::mem::take(&mut self.stack);
        for &v in listeners {
            let lt = self.tree.fine().tile_of(v);
            if self.far_stamp[lt] != self.stamp {
                let (lo, hi, cap) = self.traverse(lt, &mut stack);
                self.far_lo[lt] = lo;
                self.far_hi[lt] = hi;
                self.far_cap[lt] = cap;
                self.far_stamp[lt] = self.stamp;
            }
        }
        self.stack = stack;

        // Parallel phase: fixed-size listener chunks, each writing its own
        // slot; merged in chunk order below, so executor scheduling cannot
        // reach the results.
        let num_chunks = listeners.len().div_ceil(HIER_CHUNK);
        let slots = {
            let this = &*self;
            type ChunkSlot = Option<(Vec<Reception>, FarFieldStats)>;
            let slots: Mutex<Vec<ChunkSlot>> = Mutex::new(vec![None; num_chunks]);
            executor.run(num_chunks, &|chunk| {
                let start = chunk * HIER_CHUNK;
                let end = (start + HIER_CHUNK).min(listeners.len());
                let mut local = FarFieldStats::default();
                let mut scratch = NearScratch::default();
                let mut rx = Vec::with_capacity(end - start);
                for &v in &listeners[start..end] {
                    rx.push(this.decide_listener(
                        v,
                        positions,
                        transmitters,
                        perturbation,
                        noise,
                        beta,
                        &mut local,
                        &mut scratch,
                    ));
                }
                let mut guard = slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                guard[chunk] = Some((rx, local));
            });
            slots
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };

        let mut out = Vec::with_capacity(listeners.len());
        for slot in slots {
            let Some((rx, local)) = slot else {
                unreachable!("executor must complete every chunk")
            };
            out.extend(rx);
            // Per-rung counters are u64 sums, so any chunking yields the
            // same totals.
            self.stats.nonfinite_fallbacks += local.nonfinite_fallbacks;
            self.stats.noise_floor_silences += local.noise_floor_silences;
            self.stats.no_near_winner_fallbacks += local.no_near_winner_fallbacks;
            self.stats.far_rival_fallbacks += local.far_rival_fallbacks;
            self.stats.bracket_decisions += local.bracket_decisions;
            self.stats.bracket_straddle_fallbacks += local.bracket_straddle_fallbacks;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SerialExecutor;
    use crate::{Channel, SinrChannel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn params() -> SinrParams {
        SinrParams::builder()
            .power(16.0)
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap()
    }

    fn lattice(n_side: usize, spacing: f64) -> Vec<Point> {
        (0..n_side * n_side)
            .map(|i| Point::new((i % n_side) as f64 * spacing, (i / n_side) as f64 * spacing))
            .collect()
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let p = params();
        assert!(HierarchicalFarFieldEngine::build(&[], &p).is_none());
        let nan = vec![Point::new(f64::NAN, 0.0), Point::ORIGIN];
        assert!(HierarchicalFarFieldEngine::build(&nan, &p).is_none());
    }

    #[test]
    fn matches_is_a_fingerprint() {
        let p = params();
        let pos = lattice(8, 1.0);
        let engine = HierarchicalFarFieldEngine::build(&pos, &p).unwrap();
        assert!(engine.matches(&pos, &p));
        let mut moved = pos.clone();
        moved[0] = Point::new(-7.0, -7.0);
        assert!(!engine.matches(&moved, &p));
        assert!(!engine.matches(&pos[..63], &p));
        let other = SinrParams::builder().power(32.0).build().unwrap();
        assert!(!engine.matches(&pos, &other));
    }

    #[test]
    fn occupancy_tracks_knockout_and_revival() {
        let p = params();
        let pos = lattice(8, 1.0);
        let mut engine = HierarchicalFarFieldEngine::build_with_tiling(&pos, &p, 4).unwrap();
        let t = engine.tree().fine().tile_of(0);
        let before = engine.active_in_tile(t);
        assert_eq!(engine.num_active(), 64);
        engine.deactivate(0);
        engine.deactivate(0); // idempotent
        assert!(!engine.is_active(0));
        assert_eq!(engine.active_in_tile(t), before - 1);
        assert_eq!(engine.num_active(), 63);
        engine.activate(0);
        engine.activate(0); // idempotent
        assert_eq!(engine.active_in_tile(t), before);
        assert_eq!(engine.num_active(), 64);
    }

    #[test]
    fn resolve_matches_exact_on_a_lattice() {
        let p = params();
        let ch = SinrChannel::new(p);
        let pos = lattice(16, 1.5);
        // 8 tiles per side → a 4-level tree with real aggregation.
        let mut engine = HierarchicalFarFieldEngine::build_with_tiling(&pos, &p, 8).unwrap();
        assert!(engine.tree().num_levels() >= 4);
        let transmitters: Vec<NodeId> = (0..pos.len()).step_by(7).collect();
        let listeners: Vec<NodeId> = (0..pos.len())
            .filter(|i| !transmitters.contains(i))
            .collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let exact = ch.resolve(&pos, &transmitters, &listeners, &mut rng);
        let fast = engine.resolve_sinr(
            &p,
            &pos,
            &transmitters,
            &listeners,
            None,
            &SerialExecutor,
        );
        assert_eq!(exact, fast);
        let s = engine.stats();
        assert_eq!(s.rounds, 1);
        assert_eq!(s.listeners_resolved(), listeners.len() as u64);
        assert_eq!(
            s.fast_decisions() + s.noise_floor_silences + s.exact_fallbacks(),
            s.listeners_resolved()
        );
    }

    #[test]
    fn consecutive_rounds_reset_the_masses() {
        let p = params();
        let ch = SinrChannel::new(p);
        let pos = lattice(12, 2.0);
        let mut engine = HierarchicalFarFieldEngine::build_with_tiling(&pos, &p, 6).unwrap();
        // Two rounds with disjoint transmitter sets: stale masses from
        // round 1 would corrupt round 2's brackets.
        for (seed, step) in [(1u64, 5usize), (2, 11)] {
            let transmitters: Vec<NodeId> = (0..pos.len()).step_by(step).collect();
            let listeners: Vec<NodeId> = (0..pos.len())
                .filter(|i| !transmitters.contains(i))
                .collect();
            let mut rng = SmallRng::seed_from_u64(seed);
            let exact = ch.resolve(&pos, &transmitters, &listeners, &mut rng);
            let fast = engine.resolve_sinr(
                &p,
                &pos,
                &transmitters,
                &listeners,
                None,
                &SerialExecutor,
            );
            assert_eq!(exact, fast, "round with step {step}");
        }
        assert_eq!(engine.stats().rounds, 2);
    }

    #[test]
    fn empty_round_is_all_silence_and_counts_fast() {
        let p = params();
        let pos = lattice(4, 1.0);
        let mut engine = HierarchicalFarFieldEngine::build(&pos, &p).unwrap();
        let listeners: Vec<NodeId> = (0..pos.len()).collect();
        let rx = engine.resolve_sinr(&p, &pos, &[], &listeners, None, &SerialExecutor);
        assert!(rx.iter().all(|r| *r == Reception::Silence));
        assert_eq!(engine.stats().empty_round_silences, pos.len() as u64);
        assert_eq!(engine.stats().fast_decisions(), pos.len() as u64);
    }
}
