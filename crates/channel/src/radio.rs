//! Classical radio network channels (the paper's non-fading comparators).

use rand::rngs::SmallRng;

use fading_geom::Point;

use crate::channel::{sealed, Channel};
use crate::{NodeId, Reception};

/// The classical single-hop radio network model (Chlamtac–Kutten /
/// Bar-Yehuda–Goldreich–Itai): a listener receives a message iff **exactly
/// one** node transmits in the round; two or more concurrent transmissions
/// are lost at every receiver, indistinguishably from silence, and
/// transmitters learn nothing about the fate of their transmission.
///
/// On this channel high-probability contention resolution requires
/// `Θ(log² n)` rounds — the "speed limit" the paper's SINR algorithm beats.
///
/// # Example
///
/// ```
/// use fading_channel::{Channel, RadioChannel, Reception};
/// use fading_geom::Point;
/// use rand::SeedableRng;
///
/// let ch = RadioChannel::new();
/// let pos = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// // One transmitter: everyone hears it.
/// assert_eq!(ch.resolve(&pos, &[0], &[1, 2], &mut rng),
///            vec![Reception::Message { from: 0 }; 2]);
/// // Two transmitters: collision looks like silence.
/// assert_eq!(ch.resolve(&pos, &[0, 1], &[2], &mut rng),
///            vec![Reception::Silence]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RadioChannel {
    _private: (),
}

impl RadioChannel {
    /// Creates a radio channel.
    #[must_use]
    pub fn new() -> Self {
        RadioChannel { _private: () }
    }
}

impl sealed::Sealed for RadioChannel {}

impl Channel for RadioChannel {
    fn resolve(
        &self,
        _positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        _rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let outcome = if transmitters.len() == 1 {
            Reception::Message {
                from: transmitters[0],
            }
        } else {
            Reception::Silence
        };
        vec![outcome; listeners.len()]
    }

    fn resolve_draws_rng(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "radio"
    }
}

/// The radio network model with **receiver collision detection**: listeners
/// distinguish silence (no transmitter), a decoded message (one
/// transmitter), and a collision (two or more).
///
/// With this extra bit, contention resolution drops to `Θ(log n)` rounds
/// (Willard-style elimination) — the comparison point for the paper's claim
/// that fading buys the same `log n` without any collision detection.
///
/// # Example
///
/// ```
/// use fading_channel::{Channel, RadioCdChannel, Reception};
/// use fading_geom::Point;
/// use rand::SeedableRng;
///
/// let ch = RadioCdChannel::new();
/// let pos = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// assert_eq!(ch.resolve(&pos, &[0, 1], &[2], &mut rng), vec![Reception::Collision]);
/// assert_eq!(ch.resolve(&pos, &[], &[2], &mut rng), vec![Reception::Silence]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RadioCdChannel {
    _private: (),
}

impl RadioCdChannel {
    /// Creates a collision-detection radio channel.
    #[must_use]
    pub fn new() -> Self {
        RadioCdChannel { _private: () }
    }
}

impl sealed::Sealed for RadioCdChannel {}

impl Channel for RadioCdChannel {
    fn resolve(
        &self,
        _positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        _rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let outcome = match transmitters.len() {
            0 => Reception::Silence,
            1 => Reception::Message {
                from: transmitters[0],
            },
            _ => Reception::Collision,
        };
        vec![outcome; listeners.len()]
    }

    fn resolve_draws_rng(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "radio-cd"
    }

    fn supports_collision_detection(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn positions(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn radio_zero_transmitters_silence() {
        let ch = RadioChannel::new();
        let pos = positions(3);
        assert_eq!(
            ch.resolve(&pos, &[], &[0, 1, 2], &mut rng()),
            vec![Reception::Silence; 3]
        );
    }

    #[test]
    fn radio_single_transmitter_heard_by_all() {
        let ch = RadioChannel::new();
        let pos = positions(4);
        assert_eq!(
            ch.resolve(&pos, &[2], &[0, 1, 3], &mut rng()),
            vec![Reception::Message { from: 2 }; 3]
        );
    }

    #[test]
    fn radio_collision_is_indistinguishable_from_silence() {
        let ch = RadioChannel::new();
        let pos = positions(5);
        let rx = ch.resolve(&pos, &[0, 1, 2], &[3, 4], &mut rng());
        assert_eq!(rx, vec![Reception::Silence; 2]);
        assert!(!ch.supports_collision_detection());
    }

    #[test]
    fn radio_ignores_geometry() {
        // Distance plays no role: a single transmitter is heard at any range.
        let ch = RadioChannel::new();
        let pos = vec![Point::ORIGIN, Point::new(1e9, 1e9)];
        assert_eq!(
            ch.resolve(&pos, &[0], &[1], &mut rng()),
            vec![Reception::Message { from: 0 }]
        );
    }

    #[test]
    fn cd_distinguishes_all_three_outcomes() {
        let ch = RadioCdChannel::new();
        let pos = positions(4);
        assert_eq!(
            ch.resolve(&pos, &[], &[3], &mut rng()),
            vec![Reception::Silence]
        );
        assert_eq!(
            ch.resolve(&pos, &[1], &[3], &mut rng()),
            vec![Reception::Message { from: 1 }]
        );
        assert_eq!(
            ch.resolve(&pos, &[0, 1], &[3], &mut rng()),
            vec![Reception::Collision]
        );
        assert!(ch.supports_collision_detection());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RadioChannel::new().name(), "radio");
        assert_eq!(RadioCdChannel::new().name(), "radio-cd");
    }
}
