//! What a listening node observes in one round.

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// The outcome of one round of listening, as observed by a single node.
///
/// On the SINR channel and the plain radio channel only [`Reception::Silence`]
/// and [`Reception::Message`] occur; [`Reception::Collision`] is produced
/// only by collision-detection channels ([`RadioCdChannel`]), where a
/// receiver can distinguish "two or more transmitters" from "none".
///
/// [`RadioCdChannel`]: crate::RadioCdChannel
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reception {
    /// Nothing decodable was heard, and (on CD channels) no energy detected.
    #[default]
    Silence,
    /// A message from node `from` was successfully decoded.
    Message {
        /// The transmitting node.
        from: NodeId,
    },
    /// Energy was detected but no message decoded (CD channels only).
    Collision,
}

impl Reception {
    /// `true` iff a message was decoded.
    #[must_use]
    pub fn is_message(&self) -> bool {
        matches!(self, Reception::Message { .. })
    }

    /// The sender, if a message was decoded.
    #[must_use]
    pub fn sender(&self) -> Option<NodeId> {
        match self {
            Reception::Message { from } => Some(*from),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accessors() {
        let m = Reception::Message { from: 7 };
        assert!(m.is_message());
        assert_eq!(m.sender(), Some(7));
        assert!(!Reception::Silence.is_message());
        assert_eq!(Reception::Silence.sender(), None);
        assert_eq!(Reception::Collision.sender(), None);
    }

    #[test]
    fn default_is_silence() {
        assert_eq!(Reception::default(), Reception::Silence);
    }
}
