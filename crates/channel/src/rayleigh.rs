//! Stochastic (Rayleigh) fading extension of the SINR channel.

use rand::rngs::SmallRng;
use rand::Rng;

use fading_geom::Point;

use crate::channel::{sealed, Channel};
use crate::kernels::{gain_batch, ScanScratch};
use crate::sinr::pow_alpha;
use crate::{ChannelPerturbation, GainCache, NodeId, Reception, SinrBreakdown, SinrParams};

/// Largest deployment for which the Rayleigh channel keeps its gain cache.
///
/// Unlike the deterministic channel — where a cached row replaces a
/// `pow_alpha` *and* the whole scan arithmetic — the Rayleigh resolve
/// still draws a fade and multiplies per pair, so a cached row only saves
/// the deterministic-gain recompute. Once the `n × n` matrix outgrows
/// last-level cache the row reads become memory-bound and the "cache" is
/// *slower* than recomputing gains with the batched kernels (measured at
/// n = 4096: 43.1 ms cached vs 33.4 ms uncached per round). Cached and
/// uncached results are bit-identical (the fade stream is independent of
/// the cache), so bypassing the cache above this size never changes
/// results — see [`Channel::gain_cache_profitable`].
pub const RAYLEIGH_CACHE_PROFITABLE_NODES: usize = 1024;

/// A SINR channel with Rayleigh fading: every transmitter–listener power
/// gain is multiplied by an independent `Exp(1)` coefficient, redrawn each
/// round.
///
/// The PODC'16 paper analyzes the deterministic geometric-path-loss model;
/// stochastic fading is the natural "future work" robustness check (the
/// algorithm itself is oblivious to the channel). Expected gains equal the
/// deterministic model's, so the deterministic channel is recovered in the
/// mean; individual rounds, however, can deliver lucky captures or unlucky
/// deep fades.
///
/// Randomness comes from the `rng` passed to [`Channel::resolve`], so runs
/// remain reproducible under a fixed seed.
///
/// # Example
///
/// ```
/// use fading_channel::{Channel, RayleighSinrChannel, SinrParams};
/// use fading_geom::Point;
/// use rand::SeedableRng;
///
/// let ch = RayleighSinrChannel::new(SinrParams::default_single_hop());
/// let pos = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let rx = ch.resolve(&pos, &[0], &[1], &mut rng);
/// assert_eq!(rx.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RayleighSinrChannel {
    params: SinrParams,
}

impl RayleighSinrChannel {
    /// Creates a Rayleigh-fading SINR channel.
    #[must_use]
    pub fn new(params: SinrParams) -> Self {
        RayleighSinrChannel { params }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// The single resolve loop every public path funnels through — the
    /// Rayleigh counterpart of `SinrChannel::resolve_core`, with one
    /// `Exp(1)` fade drawn per (listener, transmitter) pair in loop order.
    /// Because the fade draws happen in the exact same sequence regardless
    /// of `cache`, `perturbation`, or `breakdown`, every wrapper consumes
    /// the rng identically and the bit-exactness contracts hold by
    /// construction.
    #[allow(clippy::too_many_arguments)] // the union of every wrapper's parameters
    fn resolve_core(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: Option<&ChannelPerturbation<'_>>,
        rng: &mut SmallRng,
        mut breakdown: Option<&mut Vec<SinrBreakdown>>,
    ) -> Vec<Reception> {
        let p = self.params.power();
        let alpha = self.params.alpha();
        let beta = self.params.beta();
        let noise = match perturbation {
            Some(pt) => self.params.noise() * pt.noise_scale(),
            None => self.params.noise(),
        };
        // Uncached path: gather transmitter coordinates once and batch the
        // deterministic gains per listener. The fades are still drawn one
        // per pair inside the fold below — same order and count as the
        // scalar loop — so the rng stream (and thus every result) is
        // unchanged by the batching.
        let mut scratch = ScanScratch::new();
        if cache.is_none() {
            scratch.gather(positions, transmitters);
        }
        let mut out = Vec::with_capacity(listeners.len());
        for &v in listeners {
            let row = cache.map(|c| c.row(v));
            let vp = positions[v];
            if row.is_none() {
                scratch.gains.resize(transmitters.len(), 0.0);
                gain_batch(p, alpha, &scratch.xs, &scratch.ys, vp.x, vp.y, &mut scratch.gains);
            }
            let mut total = 0.0;
            let mut best_sig = 0.0;
            let mut best_tx: Option<NodeId> = None;
            for (i, &u) in transmitters.iter().enumerate() {
                debug_assert_ne!(u, v, "a node cannot transmit and listen simultaneously");
                let fade = exp1(rng);
                // Grouped as fade × (P/d^α) — the deterministic factor is
                // exactly what GainCache stores (and what the batched
                // kernel computes, bit-identically), so every path
                // multiplies the same two numbers. Jammer power stays
                // deterministic (no fading on jammer links): the adversary
                // transmits wideband interference, not a decodable signal.
                let det = match row {
                    Some(r) => r[u],
                    None => scratch.gains[i],
                };
                let sig = fade * det;
                total += sig;
                if sig > best_sig {
                    best_sig = sig;
                    best_tx = Some(u);
                }
            }
            // The jammer term is looked up once per listener and feeds both
            // the denominator and the breakdown.
            let extra = perturbation.map(|pt| pt.extra_at(v));
            let denom = match extra {
                Some(e) => noise + e + (total - best_sig),
                None => noise + (total - best_sig),
            };
            let reception = match best_tx {
                Some(u) if best_sig >= beta * denom => Reception::Message { from: u },
                _ => Reception::Silence,
            };
            if let Some(b) = breakdown.as_deref_mut() {
                b.push(SinrBreakdown {
                    listener: v,
                    best_tx,
                    signal: best_sig,
                    interference: total - best_sig,
                    noise,
                    extra: extra.unwrap_or(0.0),
                    margin: best_sig - beta * denom,
                    decoded: reception.is_message(),
                });
            }
            out.push(reception);
        }
        out
    }
}

/// Draws an `Exp(1)` variate (the power gain of a Rayleigh amplitude).
fn exp1(rng: &mut SmallRng) -> f64 {
    // Inverse CDF; guard the log away from 0.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

impl sealed::Sealed for RayleighSinrChannel {}

impl Channel for RayleighSinrChannel {
    fn resolve(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        self.resolve_core(positions, transmitters, listeners, None, None, rng, None)
    }

    fn resolve_cached(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let cache = cache.filter(|c| c.matches(positions, &self.params));
        self.resolve_core(positions, transmitters, listeners, cache, None, rng, None)
    }

    fn resolve_perturbed(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        if perturbation.is_neutral() {
            return self.resolve_cached(positions, transmitters, listeners, cache, rng);
        }
        let cache = cache.filter(|c| c.matches(positions, &self.params));
        self.resolve_core(
            positions,
            transmitters,
            listeners,
            cache,
            Some(perturbation),
            rng,
            None,
        )
    }

    fn resolve_instrumented(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
        breakdown: &mut Vec<SinrBreakdown>,
    ) -> Vec<Reception> {
        breakdown.clear();
        let cache = cache.filter(|c| c.matches(positions, &self.params));
        let perturbation = Some(perturbation).filter(|pt| !pt.is_neutral());
        self.resolve_core(
            positions,
            transmitters,
            listeners,
            cache,
            perturbation,
            rng,
            Some(breakdown),
        )
    }

    fn interferer_gain(&self, from: Point, to: Point, power: f64) -> f64 {
        power / pow_alpha(from.distance_sq(to), self.params.alpha())
    }

    fn build_gain_cache(&self, positions: &[Point]) -> Option<GainCache> {
        GainCache::build(positions, &self.params)
    }

    fn gain_cache_profitable(&self, n: usize) -> bool {
        // See `RAYLEIGH_CACHE_PROFITABLE_NODES`: past LLC the cached rows
        // are memory-bound and lose to recomputing gains with the batched
        // kernels. Bit-identical either way, so this is pure policy.
        n <= RAYLEIGH_CACHE_PROFITABLE_NODES
    }

    // No `build_farfield_engine` or `build_hierarchical_engine` override:
    // this channel draws one fade per (listener, transmitter) pair in
    // canonical order, so skipping any pair would desynchronize the rng
    // stream — pruning cannot be decision-exact here. The trait defaults
    // (no engine, wholesale fallback) are the correct behavior, not an
    // omission.

    fn name(&self) -> &'static str {
        "rayleigh-sinr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> SinrParams {
        SinrParams::builder()
            .power(16.0)
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn reproducible_under_fixed_seed() {
        let ch = RayleighSinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let a = ch.resolve(&pos, &[0, 2], &[1], &mut SmallRng::seed_from_u64(5));
        let b = ch.resolve(&pos, &[0, 2], &[1], &mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn strong_solo_link_usually_decodes() {
        // d = 1, signal mean 16, threshold beta*(noise) = 2. The fade must
        // be below 1/8 to fail: probability 1 - e^{-1/8} ≈ 0.118.
        let ch = RayleighSinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let mut rng = SmallRng::seed_from_u64(42);
        let mut received = 0;
        let trials = 2_000;
        for _ in 0..trials {
            if ch.resolve(&pos, &[0], &[1], &mut rng)[0].is_message() {
                received += 1;
            }
        }
        let rate = f64::from(received) / f64::from(trials);
        assert!(
            (rate - (-0.125f64).exp()).abs() < 0.03,
            "observed decode rate {rate}"
        );
    }

    #[test]
    fn deep_fade_can_block_a_strong_link() {
        // Over many trials at least one failure must occur for a link whose
        // deterministic SINR would always pass.
        let ch = RayleighSinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let mut rng = SmallRng::seed_from_u64(9);
        let mut failures = 0;
        for _ in 0..500 {
            if !ch.resolve(&pos, &[0], &[1], &mut rng)[0].is_message() {
                failures += 1;
            }
        }
        assert!(failures > 0, "Rayleigh fading never produced a deep fade");
    }

    #[test]
    fn no_transmitters_is_silence() {
        let ch = RayleighSinrChannel::new(params());
        let pos = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let rx = ch.resolve(&pos, &[], &[0, 1], &mut SmallRng::seed_from_u64(0));
        assert_eq!(rx, vec![Reception::Silence; 2]);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RayleighSinrChannel::new(params()).name(), "rayleigh-sinr");
    }
}
