//! The sealed [`Channel`] trait.

use rand::rngs::SmallRng;

use fading_geom::Point;

use crate::{
    ChannelPerturbation, ChunkExecutor, FarFieldEngine, GainCache, HierarchicalFarFieldEngine,
    NodeId, Reception, SinrBreakdown,
};

pub(crate) mod sealed {
    /// Prevents downstream implementations so the trait can evolve.
    pub trait Sealed {}
}

/// A synchronous-round wireless channel model.
///
/// Given the node positions, the set of transmitters, and the set of
/// listeners for one round, a channel decides what every listener observes.
/// All channels in this crate are memoryless across rounds; stochastic
/// channels (e.g. [`RayleighSinrChannel`](crate::RayleighSinrChannel)) draw
/// their per-round fading coefficients from the supplied `rng`, so a run is
/// reproducible given the rng seed.
///
/// This trait is **sealed**: it cannot be implemented outside this crate
/// (the model set is part of the reproduction's fidelity contract). It is
/// object-safe, so simulators can hold a `Box<dyn Channel>`.
pub trait Channel: sealed::Sealed + Send + Sync + std::fmt::Debug {
    /// Resolves one round: returns what each node in `listeners` observes
    /// (in the same order as `listeners`).
    ///
    /// `transmitters` and `listeners` must be disjoint index sets into
    /// `positions`; a node cannot transmit and listen in the same round
    /// (half-duplex, per the model section of the paper).
    fn resolve(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        rng: &mut SmallRng,
    ) -> Vec<Reception>;

    /// Like [`Channel::resolve`], optionally consulting a precomputed
    /// [`GainCache`] for the deterministic pairwise gains.
    ///
    /// The contract is strict: for any channel, `resolve_cached` with a
    /// cache built by [`Channel::build_gain_cache`] over the same
    /// `positions` returns a `Reception` vector **bit-identical** to
    /// `resolve` (and consumes the `rng` identically). Passing `None`, a
    /// cache that does not match `positions`, or calling on a channel
    /// without a cached path falls back to `resolve` outright.
    ///
    /// The default implementation ignores the cache; geometry-free models
    /// (the radio channels) keep it.
    fn resolve_cached(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let _ = cache;
        self.resolve(positions, transmitters, listeners, rng)
    }

    /// Like [`Channel::resolve_cached`], additionally applying a per-round
    /// [`ChannelPerturbation`] (noise scaling and jammer interference from
    /// a fault plan).
    ///
    /// Contract:
    ///
    /// * A [neutral](ChannelPerturbation::is_neutral) perturbation **must**
    ///   produce results bit-identical to [`Channel::resolve_cached`]
    ///   (and consume the rng identically) — every implementation falls
    ///   back outright, so an empty fault plan is invisible.
    /// * SINR-family channels add `extra_at(v)` to listener `v`'s
    ///   interference sum and multiply the ambient noise by `noise_scale`.
    /// * Geometry-free channels (the radio models) have no SINR denominator
    ///   to perturb; this default implementation ignores `noise_scale` and
    ///   treats any jammed listener (`extra_at(v) > 0`) as blanketed:
    ///   [`Reception::Collision`] on collision-detection channels (energy
    ///   with no decodable message), [`Reception::Silence`] otherwise.
    fn resolve_perturbed(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let mut out = self.resolve_cached(positions, transmitters, listeners, cache, rng);
        if perturbation.has_jamming() {
            let jammed = if self.supports_collision_detection() {
                Reception::Collision
            } else {
                Reception::Silence
            };
            for (slot, &v) in out.iter_mut().zip(listeners) {
                if perturbation.extra_at(v) > 0.0 {
                    *slot = jammed;
                }
            }
        }
        out
    }

    /// Like [`Channel::resolve_perturbed`], additionally reporting one
    /// [`SinrBreakdown`] per listener (in listener order) into `breakdown`
    /// for channels with an SINR decomposition to report.
    ///
    /// Contract:
    ///
    /// * The returned `Reception` vector is **bit-identical** to what
    ///   [`Channel::resolve_perturbed`] returns for the same arguments, and
    ///   the rng is consumed identically — instrumentation observes, it
    ///   never perturbs. (With a neutral perturbation this transitively
    ///   equals [`Channel::resolve_cached`] / [`Channel::resolve`].)
    /// * `breakdown` is cleared first. SINR-family channels then push
    ///   exactly `listeners.len()` entries, one per listener in order;
    ///   geometry-free channels (the radio models) leave it empty — they
    ///   have no SINR to decompose, which is this default implementation.
    /// * Each breakdown's `decoded` flag reflects the SINR test **before**
    ///   any post-SINR loss layer (see [`SinrBreakdown`]).
    #[allow(clippy::too_many_arguments)] // mirrors resolve_perturbed + the breakdown out-param
    fn resolve_instrumented(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        cache: Option<&GainCache>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
        breakdown: &mut Vec<SinrBreakdown>,
    ) -> Vec<Reception> {
        breakdown.clear();
        self.resolve_perturbed(positions, transmitters, listeners, cache, perturbation, rng)
    }

    /// Like [`Channel::resolve_perturbed`], optionally consulting a
    /// [`FarFieldEngine`] for tile-aggregated interference pruning.
    ///
    /// The contract is the same **decision-exactness** guarantee as the
    /// gain cache, one tier up: for any channel, `resolve_farfield` with an
    /// engine built by [`Channel::build_farfield_engine`] over the same
    /// `positions` returns a `Reception` vector **bit-identical** to
    /// [`Channel::resolve_perturbed`] (and consumes the `rng` identically —
    /// the engine is only ever offered to channels whose resolve draws no
    /// randomness). Passing `None`, an engine that does not
    /// [match](FarFieldEngine::matches) `positions`, or calling on a
    /// channel without a pruned path falls back to `resolve_perturbed`
    /// outright — which is this default implementation.
    ///
    /// The engine is `&mut` for its per-round scratch and decision
    /// counters; the receptions never depend on that mutable state.
    fn resolve_farfield(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        engine: Option<&mut FarFieldEngine>,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let _ = engine;
        self.resolve_perturbed(positions, transmitters, listeners, None, perturbation, rng)
    }

    /// Like [`Channel::resolve_farfield`], optionally consulting a
    /// [`HierarchicalFarFieldEngine`] — the tile-tree engine that serves
    /// deployments beyond the flat engine's tile-count cap — and running
    /// listener chunks on `executor`.
    ///
    /// The contract is the same **decision-exactness** guarantee as
    /// [`Channel::resolve_farfield`]: with an engine built by
    /// [`Channel::build_hierarchical_engine`] over the same `positions`,
    /// the `Reception` vector is **bit-identical** to
    /// [`Channel::resolve_perturbed`] (and the rng is consumed
    /// identically), *for any executor* — chunk boundaries are fixed and
    /// outputs merge in chunk order, so scheduling cannot reach the
    /// results. Passing `None`, a non-[matching](HierarchicalFarFieldEngine::matches)
    /// engine, or calling on a channel without a pruned path falls back to
    /// `resolve_perturbed` outright — which is this default implementation.
    #[allow(clippy::too_many_arguments)] // mirrors resolve_farfield + the executor
    fn resolve_hierarchical(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        engine: Option<&mut HierarchicalFarFieldEngine>,
        executor: &dyn ChunkExecutor,
        perturbation: &ChannelPerturbation<'_>,
        rng: &mut SmallRng,
    ) -> Vec<Reception> {
        let _ = (engine, executor);
        self.resolve_perturbed(positions, transmitters, listeners, None, perturbation, rng)
    }

    /// The received power at `to` of an external interferer (a jammer)
    /// transmitting from `from` with power `power`, under this channel's
    /// propagation model.
    ///
    /// SINR-family channels apply their path loss (`power / d^α`);
    /// geometry-free channels return `power` unchanged (any active jammer
    /// blankets every listener — the radio models have no notion of
    /// distance). Used by the simulator to precompute per-node jammer
    /// gains once per deployment, so jamming rides the same
    /// precompute-once fast path as the [`GainCache`].
    fn interferer_gain(&self, from: Point, to: Point, power: f64) -> f64 {
        let _ = (from, to);
        power
    }

    /// Builds the [`GainCache`] this channel can exploit for `positions`,
    /// or `None` when the model has no deterministic pairwise gains (the
    /// radio channels) or the deployment exceeds the cache's size guard.
    ///
    /// Exists on the trait (rather than on the concrete types) so
    /// simulators holding a `Box<dyn Channel>` can build the matching
    /// cache without knowing the concrete model or its parameters.
    fn build_gain_cache(&self, positions: &[Point]) -> Option<GainCache> {
        let _ = positions;
        None
    }

    /// Whether a [`GainCache`] actually speeds this channel up at
    /// deployment size `n`. The simulator consults this before calling
    /// [`Channel::build_gain_cache`]; since cached and uncached resolves
    /// are bit-identical by contract, declining the cache is purely a
    /// performance policy and can never change results.
    ///
    /// Default `true`: for the deterministic SINR family a cached row
    /// replaces the entire scan arithmetic, which wins at every size the
    /// cache's own guard admits. The Rayleigh channel overrides this — its
    /// per-pair fade work dwarfs the deterministic-gain recompute, so
    /// beyond [`RAYLEIGH_CACHE_PROFITABLE_NODES`](crate::RAYLEIGH_CACHE_PROFITABLE_NODES)
    /// the memory-bound row reads lose to the batched kernels.
    fn gain_cache_profitable(&self, n: usize) -> bool {
        let _ = n;
        true
    }

    /// Builds the [`FarFieldEngine`] this channel can exploit for
    /// `positions`, or `None` when the model cannot support the
    /// decision-exactness contract: the radio channels are geometry-free,
    /// and Rayleigh fading draws per-pair randomness in canonical order
    /// that pruning would desynchronize.
    ///
    /// Unlike the gain cache, the engine has no size guard — its memory is
    /// bounded by the tile-pair tables ([`MAX_TILES_PER_SIDE`](crate::MAX_TILES_PER_SIDE)⁴
    /// entries), not by `n²` — which is exactly what lets it serve the
    /// deployments the cache refuses.
    fn build_farfield_engine(&self, positions: &[Point]) -> Option<FarFieldEngine> {
        let _ = positions;
        None
    }

    /// Builds the [`HierarchicalFarFieldEngine`] this channel can exploit
    /// for `positions`, or `None` under the same conditions as
    /// [`Channel::build_farfield_engine`] (the contract is identical; only
    /// the aggregation structure differs). Memory is linear in the fine
    /// tile count, so there is no size guard in either direction.
    fn build_hierarchical_engine(
        &self,
        positions: &[Point],
    ) -> Option<HierarchicalFarFieldEngine> {
        let _ = positions;
        None
    }

    /// Whether [`Channel::resolve`] consumes randomness from its `rng`.
    ///
    /// `true` (the conservative default) for stochastic channels — Rayleigh
    /// fading draws per-pair coefficients and the lossy channel draws
    /// per-reception drops — and overridden to `false` by the
    /// deterministic models (SINR and the radio channels). Consumers that
    /// re-resolve a **subset** of listeners to audit an engine's output
    /// (the simulator's opt-in self-check) must skip channels that draw:
    /// a partial re-resolve would consume a different amount of
    /// randomness and desynchronize the stream.
    fn resolve_draws_rng(&self) -> bool {
        true
    }

    /// A short stable name for reports and tables (e.g. `"sinr"`).
    fn name(&self) -> &'static str;

    /// Whether listeners on this channel can distinguish collisions from
    /// silence (true only for collision-detection channels).
    fn supports_collision_detection(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_trait_is_object_safe() {
        fn _takes_dyn(_c: &dyn Channel) {}
    }
}
