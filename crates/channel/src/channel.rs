//! The sealed [`Channel`] trait.

use rand::rngs::SmallRng;

use fading_geom::Point;

use crate::{NodeId, Reception};

pub(crate) mod sealed {
    /// Prevents downstream implementations so the trait can evolve.
    pub trait Sealed {}
}

/// A synchronous-round wireless channel model.
///
/// Given the node positions, the set of transmitters, and the set of
/// listeners for one round, a channel decides what every listener observes.
/// All channels in this crate are memoryless across rounds; stochastic
/// channels (e.g. [`RayleighSinrChannel`](crate::RayleighSinrChannel)) draw
/// their per-round fading coefficients from the supplied `rng`, so a run is
/// reproducible given the rng seed.
///
/// This trait is **sealed**: it cannot be implemented outside this crate
/// (the model set is part of the reproduction's fidelity contract). It is
/// object-safe, so simulators can hold a `Box<dyn Channel>`.
pub trait Channel: sealed::Sealed + Send + Sync + std::fmt::Debug {
    /// Resolves one round: returns what each node in `listeners` observes
    /// (in the same order as `listeners`).
    ///
    /// `transmitters` and `listeners` must be disjoint index sets into
    /// `positions`; a node cannot transmit and listen in the same round
    /// (half-duplex, per the model section of the paper).
    fn resolve(
        &self,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        rng: &mut SmallRng,
    ) -> Vec<Reception>;

    /// A short stable name for reports and tables (e.g. `"sinr"`).
    fn name(&self) -> &'static str;

    /// Whether listeners on this channel can distinguish collisions from
    /// silence (true only for collision-detection channels).
    fn supports_collision_detection(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_trait_is_object_safe() {
        fn _takes_dyn(_c: &dyn Channel) {}
    }
}
