//! Per-round channel perturbations injected by a fault plan.
//!
//! A [`ChannelPerturbation`] describes how one round's physics deviate from
//! the clean model: a multiplicative scale on the ambient noise `N`
//! (wideband interference, weather) and an extra per-node interference term
//! (adversarial jammers at fixed positions). It is the channel-layer half of
//! the fault-injection subsystem — the schedule deciding *when* and *how
//! strongly* faults fire lives in `fading-sim`'s `faults` module; the
//! channel only applies the already-evaluated per-round values.
//!
//! Determinism contract: a [neutral](ChannelPerturbation::is_neutral)
//! perturbation must be indistinguishable from no perturbation at all —
//! [`Channel::resolve_perturbed`](crate::Channel::resolve_perturbed) falls
//! back to [`Channel::resolve_cached`](crate::Channel::resolve_cached)
//! outright, consuming the rng identically, so fault-capable simulations
//! with an empty plan are byte-identical to plain ones.

use crate::NodeId;

/// One round's deviation from the clean channel model: a noise scale and a
/// per-node extra interference vector (both deterministic for the round —
/// evaluated by the fault plan before the channel resolves).
///
/// # Example
///
/// ```
/// use fading_channel::ChannelPerturbation;
///
/// let neutral = ChannelPerturbation::neutral();
/// assert!(neutral.is_neutral());
/// assert_eq!(neutral.extra_at(3), 0.0);
///
/// let jam = [0.0, 2.5, 0.0];
/// let p = ChannelPerturbation::new(4.0, &jam);
/// assert!(!p.is_neutral());
/// assert_eq!(p.noise_scale(), 4.0);
/// assert_eq!(p.extra_at(1), 2.5);
/// assert_eq!(p.extra_at(7), 0.0); // out of range ⇒ no extra interference
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelPerturbation<'a> {
    noise_scale: f64,
    /// Extra interference power at each node, indexed by [`NodeId`]. Empty
    /// means "no jamming anywhere" (the common case, kept allocation-free).
    extra_interference: &'a [f64],
}

impl<'a> ChannelPerturbation<'a> {
    /// A perturbation with the given noise scale and per-node extra
    /// interference (`extra_interference[v]` is added to the SINR
    /// denominator at listener `v`; an empty slice means none anywhere).
    ///
    /// Values are expected to be pre-validated by the fault plan
    /// (`noise_scale` finite and positive, interference finite and
    /// non-negative); the channel applies them as-is.
    #[must_use]
    pub fn new(noise_scale: f64, extra_interference: &'a [f64]) -> Self {
        ChannelPerturbation {
            noise_scale,
            extra_interference,
        }
    }

    /// The perturbation that changes nothing.
    #[must_use]
    pub fn neutral() -> ChannelPerturbation<'static> {
        ChannelPerturbation {
            noise_scale: 1.0,
            extra_interference: &[],
        }
    }

    /// Multiplier on the ambient noise `N` this round (1.0 = unchanged).
    #[must_use]
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Extra interference power at node `v` (0.0 when out of range or no
    /// jamming is active).
    #[inline]
    #[must_use]
    pub fn extra_at(&self, v: NodeId) -> f64 {
        self.extra_interference.get(v).copied().unwrap_or(0.0)
    }

    /// Whether any node sees extra (jammer) interference this round.
    #[must_use]
    pub fn has_jamming(&self) -> bool {
        !self.extra_interference.is_empty()
    }

    /// `true` iff applying this perturbation is guaranteed to change
    /// nothing (unit noise scale, no jamming).
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.noise_scale == 1.0 && self.extra_interference.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_is_neutral() {
        let n = ChannelPerturbation::neutral();
        assert!(n.is_neutral());
        assert!(!n.has_jamming());
        assert_eq!(n.noise_scale(), 1.0);
        assert_eq!(n.extra_at(0), 0.0);
    }

    #[test]
    fn noise_scale_alone_breaks_neutrality() {
        let p = ChannelPerturbation::new(2.0, &[]);
        assert!(!p.is_neutral());
        assert!(!p.has_jamming());
    }

    #[test]
    fn jamming_alone_breaks_neutrality() {
        let jam = [0.0, 1.0];
        let p = ChannelPerturbation::new(1.0, &jam);
        assert!(!p.is_neutral());
        assert!(p.has_jamming());
        assert_eq!(p.extra_at(0), 0.0);
        assert_eq!(p.extra_at(1), 1.0);
    }

    #[test]
    fn out_of_range_extra_is_zero() {
        let jam = [3.0];
        let p = ChannelPerturbation::new(1.0, &jam);
        assert_eq!(p.extra_at(100), 0.0);
    }
}
