//! SINR model parameters.

use serde::{Deserialize, Serialize};

use fading_geom::Deployment;

use crate::sinr::pow_alpha;
use crate::ChannelError;

/// The constant `c` in the paper's single-hop admissibility condition
/// `P > c · β · N · d(u,v)^α` ("it is sufficient to assume `c ≥ 4`").
pub const DEFAULT_SINGLE_HOP_MARGIN: f64 = 4.0;

/// Parameters of the SINR (physical / fading) model — Equation 1 of the
/// paper.
///
/// * `power` — the fixed transmission power `P` (all nodes transmit at the
///   same power; the paper studies the fixed-power regime).
/// * `alpha` — the path-loss exponent `α`, required to be **strictly greater
///   than 2**; the gap `α − 2` is exactly the "spatial reuse" slack the
///   paper's analysis exploits.
/// * `beta` — the decoding threshold `β ≥ 1`.
/// * `noise` — the ambient noise `N ≥ 0`.
///
/// Construct via [`SinrParams::builder`] (validated) or start from
/// [`SinrParams::default_single_hop`].
///
/// # Example
///
/// ```
/// use fading_channel::SinrParams;
///
/// let p = SinrParams::builder()
///     .power(1e9)
///     .alpha(3.0)
///     .beta(2.0)
///     .noise(1.0)
///     .build()?;
/// assert_eq!(p.alpha(), 3.0);
/// // ε = α/2 − 1 from Definition 1 of the paper.
/// assert_eq!(p.epsilon(), 0.5);
/// # Ok::<(), fading_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinrParams {
    power: f64,
    alpha: f64,
    beta: f64,
    noise: f64,
}

impl SinrParams {
    /// Starts building a parameter set. Unset fields use the defaults of
    /// [`SinrParams::default_single_hop`].
    #[must_use]
    pub fn builder() -> SinrParamsBuilder {
        SinrParamsBuilder::default()
    }

    /// A standard parameter set (`α = 3`, `β = 2`, `N = 1`) with power high
    /// enough (`P = 10^12`) that any deployment of diameter up to a few
    /// thousand distance units is comfortably single-hop.
    ///
    /// This is the interference-limited regime: noise is negligible relative
    /// to signal, which is exactly the setting in which the paper's
    /// single-hop assumption holds with a large constant margin.
    #[must_use]
    pub fn default_single_hop() -> Self {
        SinrParams {
            power: 1e12,
            alpha: 3.0,
            beta: 2.0,
            noise: 1.0,
        }
    }

    /// The transmission power `P`.
    #[must_use]
    pub fn power(&self) -> f64 {
        self.power
    }

    /// The path-loss exponent `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The decoding threshold `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The ambient noise `N`.
    #[must_use]
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The paper's `ε = α/2 − 1` (Definition 1): the exponent gap between
    /// quadratic annulus growth and super-quadratic signal decay. Positive
    /// exactly when `α > 2`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.alpha / 2.0 - 1.0
    }

    /// Received power at distance `d` (i.e. `P / d^α`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `d` is not strictly positive.
    #[must_use]
    pub fn received_power(&self, d: f64) -> f64 {
        debug_assert!(d > 0.0, "distance must be positive");
        self.power / pow_alpha(d * d, self.alpha)
    }

    /// The minimum power required for `deployment` to be single-hop with
    /// margin `c`: `c · β · N · (longest link)^α`.
    #[must_use]
    pub fn required_single_hop_power(&self, deployment: &Deployment, margin: f64) -> f64 {
        let d = deployment.max_link();
        margin * self.beta * self.noise * pow_alpha(d * d, self.alpha)
    }

    /// Checks the paper's single-hop admissibility condition
    /// `P > c · β · N · d(u,v)^α` for every pair, using the default margin
    /// `c = 4` ([`DEFAULT_SINGLE_HOP_MARGIN`]).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::NotSingleHop`] with the required power if the
    /// condition fails.
    pub fn admits_single_hop(&self, deployment: &Deployment) -> Result<(), ChannelError> {
        let required = self.required_single_hop_power(deployment, DEFAULT_SINGLE_HOP_MARGIN);
        if self.power > required {
            Ok(())
        } else {
            Err(ChannelError::NotSingleHop {
                power: self.power,
                required,
            })
        }
    }

    /// Returns a copy with power set exactly large enough for `deployment`
    /// to be single-hop with margin `c = 2 · DEFAULT_SINGLE_HOP_MARGIN`
    /// (double the paper's minimum, so the condition holds strictly).
    #[must_use]
    pub fn with_power_for(&self, deployment: &Deployment) -> Self {
        let mut out = *self;
        out.power = self.required_single_hop_power(deployment, 2.0 * DEFAULT_SINGLE_HOP_MARGIN);
        out
    }
}

impl Default for SinrParams {
    fn default() -> Self {
        Self::default_single_hop()
    }
}

/// Builder for [`SinrParams`]; validates all constraints at
/// [`SinrParamsBuilder::build`].
#[derive(Debug, Clone)]
pub struct SinrParamsBuilder {
    power: f64,
    alpha: f64,
    beta: f64,
    noise: f64,
}

impl Default for SinrParamsBuilder {
    fn default() -> Self {
        let d = SinrParams::default_single_hop();
        SinrParamsBuilder {
            power: d.power,
            alpha: d.alpha,
            beta: d.beta,
            noise: d.noise,
        }
    }
}

impl SinrParamsBuilder {
    /// Sets the transmission power `P` (must be strictly positive).
    pub fn power(&mut self, power: f64) -> &mut Self {
        self.power = power;
        self
    }

    /// Sets the path-loss exponent `α` (must satisfy `α > 2`).
    pub fn alpha(&mut self, alpha: f64) -> &mut Self {
        self.alpha = alpha;
        self
    }

    /// Sets the decoding threshold `β` (must satisfy `β ≥ 1`).
    pub fn beta(&mut self, beta: f64) -> &mut Self {
        self.beta = beta;
        self
    }

    /// Sets the ambient noise `N` (must satisfy `N ≥ 0`).
    pub fn noise(&mut self, noise: f64) -> &mut Self {
        self.noise = noise;
        self
    }

    /// Validates and produces the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidParameter`] if any constraint is
    /// violated (`P > 0`, `α > 2`, `β ≥ 1`, `N ≥ 0`, all finite).
    pub fn build(&self) -> Result<SinrParams, ChannelError> {
        if !self.power.is_finite() || self.power <= 0.0 {
            return Err(ChannelError::InvalidParameter {
                name: "power",
                reason: "must be strictly positive and finite",
                value: self.power,
            });
        }
        if !self.alpha.is_finite() || self.alpha <= 2.0 {
            return Err(ChannelError::InvalidParameter {
                name: "alpha",
                reason: "the fading model requires alpha > 2",
                value: self.alpha,
            });
        }
        if !self.beta.is_finite() || self.beta < 1.0 {
            return Err(ChannelError::InvalidParameter {
                name: "beta",
                reason: "must be at least 1",
                value: self.beta,
            });
        }
        if !self.noise.is_finite() || self.noise < 0.0 {
            return Err(ChannelError::InvalidParameter {
                name: "noise",
                reason: "must be non-negative and finite",
                value: self.noise,
            });
        }
        Ok(SinrParams {
            power: self.power,
            alpha: self.alpha,
            beta: self.beta,
            noise: self.noise,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_geom::Point;

    #[test]
    fn builder_defaults_match_default() {
        let built = SinrParams::builder().build().unwrap();
        assert_eq!(built, SinrParams::default_single_hop());
        assert_eq!(built, SinrParams::default());
    }

    #[test]
    fn builder_rejects_bad_alpha() {
        assert!(SinrParams::builder().alpha(2.0).build().is_err());
        assert!(SinrParams::builder().alpha(1.0).build().is_err());
        assert!(SinrParams::builder().alpha(f64::NAN).build().is_err());
        assert!(SinrParams::builder().alpha(2.0001).build().is_ok());
    }

    #[test]
    fn builder_rejects_bad_beta_noise_power() {
        assert!(SinrParams::builder().beta(0.5).build().is_err());
        assert!(SinrParams::builder().noise(-1.0).build().is_err());
        assert!(SinrParams::builder().power(0.0).build().is_err());
        assert!(SinrParams::builder().power(f64::INFINITY).build().is_err());
    }

    #[test]
    fn epsilon_formula() {
        let p = SinrParams::builder().alpha(4.0).build().unwrap();
        assert_eq!(p.epsilon(), 1.0);
        let q = SinrParams::builder().alpha(2.5).build().unwrap();
        assert!((q.epsilon() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn received_power_decays_with_alpha() {
        let p = SinrParams::builder().power(8.0).alpha(3.0).build().unwrap();
        assert!((p.received_power(2.0) - 1.0).abs() < 1e-12); // 8 / 2^3
        assert!(p.received_power(1.0) > p.received_power(2.0));
    }

    #[test]
    fn single_hop_admissibility() {
        let d = Deployment::from_points(vec![Point::ORIGIN, Point::new(10.0, 0.0)]).unwrap();
        // required = 4 * 2 * 1 * 10^3 = 8000
        let weak = SinrParams::builder().power(8000.0).build().unwrap();
        assert!(weak.admits_single_hop(&d).is_err()); // strict inequality
        let strong = SinrParams::builder().power(8001.0).build().unwrap();
        assert!(strong.admits_single_hop(&d).is_ok());
    }

    #[test]
    fn with_power_for_is_admissible() {
        let d = Deployment::from_points(vec![Point::ORIGIN, Point::new(123.0, 45.0)]).unwrap();
        let p = SinrParams::builder().power(1.0).build().unwrap();
        assert!(p.admits_single_hop(&d).is_err());
        let fixed = p.with_power_for(&d);
        assert!(fixed.admits_single_hop(&d).is_ok());
    }

    #[test]
    fn required_power_uses_longest_link() {
        let d = Deployment::from_points(vec![
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            Point::new(4.0, 0.0),
        ])
        .unwrap();
        let p = SinrParams::builder()
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap();
        // 4 * 2 * 1 * 4^3 = 512
        assert!((p.required_single_hop_power(&d, 4.0) - 512.0).abs() < 1e-9);
    }
}
