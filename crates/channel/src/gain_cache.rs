//! Precomputed pairwise gain matrix and incremental interference totals.
//!
//! Every deterministic SINR quantity in this crate reduces to sums of the
//! pairwise power gains `G[u][v] = P / d(u,v)^α`. For a static deployment
//! those gains never change, yet the straightforward
//! [`Channel::resolve`](crate::Channel::resolve) recomputes a distance,
//! a [`pow_alpha`] and a division for every (transmitter, listener) pair in
//! every round. [`GainCache`] hoists that work out of the round loop: the
//! full `n × n` matrix is computed **once** per deployment, and the cached
//! resolve paths ([`Channel::resolve_cached`](crate::Channel::resolve_cached))
//! reduce the per-round inner loop to a table lookup and an add.
//!
//! Bit-exactness contract: `GainCache::build` stores *exactly* the value
//! `P / pow_alpha(d²(u,v), α)` that the uncached resolve computes, and the
//! cached resolve paths accumulate those values in the same order with the
//! same expression grouping. Cached and uncached resolution therefore
//! produce **identical** `Reception` vectors, not merely close ones — the
//! equivalence test suite in `tests/gain_cache_equivalence.rs` enforces
//! this bit-for-bit.
//!
//! The cache is `O(n²)` memory, so construction is guarded by a node-count
//! limit ([`DEFAULT_MAX_CACHED_NODES`]); past it, [`GainCache::build`]
//! returns `None` and callers fall back to on-the-fly computation. The
//! cache is only valid for fixed positions — mobile deployments must
//! bypass it (pass `None` to `resolve_cached`).
//!
//! [`ActiveInterference`] layers a running per-listener total on top of the
//! matrix: `T[v] = Σ_{w active, w ≠ v} G[w][v]`, maintained incrementally
//! as nodes deactivate (`O(n)` per knockout instead of `O(n²)` to re-sum).
//! The paper's analysis (Lemmas 3–4) bounds exactly this quantity, so the
//! engine gives the analysis/metrics layer cheap per-round access to it.

use fading_geom::{Point, PointsSoA};

use crate::kernels::gain_batch;
use crate::{NodeId, SinrParams};

/// Default node-count limit for [`GainCache::build`].
///
/// `4096` nodes ⇒ `4096² × 8 B = 128 MiB` of gains, the largest matrix the
/// experiment configurations are expected to touch. Larger deployments
/// fall back to on-the-fly gain computation.
pub const DEFAULT_MAX_CACHED_NODES: usize = 4096;

/// Precomputed pairwise power gains for one deployment under one parameter
/// set: `gain(u, v) = P / d(u,v)^α`, stored as a flat row-major matrix
/// (one row per *listener*).
///
/// Build once per deployment via [`GainCache::build`]; pass to
/// [`Channel::resolve_cached`](crate::Channel::resolve_cached) each round.
///
/// # Example
///
/// ```
/// use fading_channel::{GainCache, SinrParams};
/// use fading_geom::Point;
///
/// let params = SinrParams::builder().power(16.0).alpha(3.0).build()?;
/// let pos = [Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
/// let cache = GainCache::build(&pos, &params).expect("within size guard");
/// assert_eq!(cache.gain(0, 1), 2.0); // 16 / 2³
/// assert_eq!(cache.gain(1, 0), 2.0); // symmetric
/// # Ok::<(), fading_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GainCache {
    n: usize,
    power: f64,
    alpha: f64,
    /// Position fingerprint: the first and last deployment positions,
    /// recorded at build time so `matches` can reject a same-sized but
    /// different deployment without re-verifying every coordinate.
    first: Point,
    last: Point,
    /// Row-major: `gains[v * n + u]` is the gain of transmitter `u` at
    /// listener `v`; the diagonal is 0 (a node never hears itself).
    gains: Vec<f64>,
}

impl GainCache {
    /// Builds the gain matrix for `positions` under `params`, or `None`
    /// when the deployment is empty or exceeds
    /// [`DEFAULT_MAX_CACHED_NODES`] (the `O(n²)` size guard).
    #[must_use]
    pub fn build(positions: &[Point], params: &SinrParams) -> Option<Self> {
        Self::build_with_limit(positions, params, DEFAULT_MAX_CACHED_NODES)
    }

    /// Like [`GainCache::build`] with an explicit node-count limit.
    #[must_use]
    pub fn build_with_limit(
        positions: &[Point],
        params: &SinrParams,
        max_nodes: usize,
    ) -> Option<Self> {
        let n = positions.len();
        if n == 0 || n > max_nodes {
            return None;
        }
        let power = params.power();
        let alpha = params.alpha();
        // Row-batched build over an SoA mirror: each row is one fused
        // per-α gain batch, bit-identical per element to the uncached
        // resolve expression (same pow_alpha fast path, same division —
        // see the kernels module's summation-order contract). The batch
        // fills the diagonal with `P / pow_alpha(0, α)`; it is overwritten
        // with the canonical 0 (a node never hears itself) before the row
        // is ever read.
        let soa = PointsSoA::from_points(positions);
        let mut gains = vec![0.0; n * n];
        for (v, &vp) in positions.iter().enumerate() {
            let row = &mut gains[v * n..(v + 1) * n];
            gain_batch(power, alpha, soa.xs(), soa.ys(), vp.x, vp.y, row);
            row[v] = 0.0;
        }
        Some(GainCache {
            n,
            power,
            alpha,
            first: positions[0],
            last: positions[n - 1],
            gains,
        })
    }

    /// Number of nodes the cache was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for a cache over zero nodes (never produced by `build`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cheap consistency check: does this cache plausibly belong to
    /// `positions` under `params`?
    ///
    /// Compares the node count, the gain-determining parameters (`P`, `α`),
    /// and a position fingerprint (the first and last deployment
    /// positions), so a same-sized but different deployment cannot silently
    /// reuse a stale cache. It does **not** re-verify every position (that
    /// would cost as much as the lookups it guards) — callers that move
    /// interior nodes must still drop the cache themselves.
    #[must_use]
    pub fn matches(&self, positions: &[Point], params: &SinrParams) -> bool {
        self.n == positions.len()
            && self.power == params.power()
            && self.alpha == params.alpha()
            && positions.first() == Some(&self.first)
            && positions.last() == Some(&self.last)
    }

    /// The cached gain `P / d(u,v)^α` of transmitter `u` at listener `v`
    /// (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[inline]
    #[must_use]
    pub fn gain(&self, u: NodeId, v: NodeId) -> f64 {
        assert!(u < self.n && v < self.n, "node id out of range");
        self.gains[v * self.n + u]
    }

    /// Listener `v`'s full gain row: `row(v)[u] == gain(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn row(&self, v: NodeId) -> &[f64] {
        &self.gains[v * self.n..(v + 1) * self.n]
    }

    /// Total interference at node `v` from the given transmitters:
    /// `Σ_w gain(w, v)`, accumulated in `transmitters` order (so it is
    /// bit-identical to the uncached sum over the same order).
    #[must_use]
    pub fn interference_at_node(&self, transmitters: &[NodeId], v: NodeId) -> f64 {
        let row = self.row(v);
        transmitters.iter().map(|&w| row[w]).sum()
    }
}

/// Running total interference per listener over the **active** node set,
/// updated incrementally as nodes deactivate.
///
/// Maintains `total_at(v) = Σ_{w active, w ≠ v} gain(w, v)` — the worst-case
/// interference at `v` if every still-active node transmitted at once (the
/// quantity the paper's Lemmas 3–4 bound). A knockout is `O(n)`
/// (one subtraction per listener) instead of the `O(n²)` full re-sum.
///
/// Incremental subtraction accumulates floating-point error on the order of
/// an ulp per update; [`ActiveInterference::recompute_at`] re-sums exactly
/// for callers (and tests) that need a fresh value.
///
/// # Example
///
/// ```
/// use fading_channel::{ActiveInterference, GainCache, SinrParams};
/// use fading_geom::Point;
///
/// let params = SinrParams::builder().power(16.0).alpha(3.0).build()?;
/// let pos = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(4.0, 0.0)];
/// let cache = GainCache::build(&pos, &params).unwrap();
/// let mut ai = ActiveInterference::new(&cache);
/// let before = ai.total_at(0);
/// ai.deactivate(&cache, 1);
/// assert!(ai.total_at(0) < before);
/// # Ok::<(), fading_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ActiveInterference {
    totals: Vec<f64>,
    active: Vec<bool>,
    num_active: usize,
}

impl ActiveInterference {
    /// Starts with every node active: `total_at(v)` sums `v`'s whole gain
    /// row (the diagonal contributes 0).
    #[must_use]
    pub fn new(cache: &GainCache) -> Self {
        let n = cache.len();
        let totals = (0..n).map(|v| cache.row(v).iter().sum()).collect();
        ActiveInterference {
            totals,
            active: vec![true; n],
            num_active: n,
        }
    }

    /// Marks `w` inactive and subtracts its gain contribution from every
    /// other node's total. Idempotent: deactivating an already-inactive
    /// node is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or `cache` has a different node count.
    pub fn deactivate(&mut self, cache: &GainCache, w: NodeId) {
        assert_eq!(cache.len(), self.totals.len(), "cache/engine size mismatch");
        assert!(w < self.totals.len(), "node id out of range");
        if !self.active[w] {
            return;
        }
        self.active[w] = false;
        self.num_active -= 1;
        // gain(w, v) == gain(v, w) bitwise (distance is computed from an
        // exact IEEE negation, so both orders square the same values),
        // which lets this walk w's contiguous *row* in step with the
        // totals instead of striding the matrix column-wise through the
        // bounds-asserting `gain` accessor.
        for (v, (total, &g)) in self.totals.iter_mut().zip(cache.row(w)).enumerate() {
            if v != w {
                *total -= g;
            }
        }
    }

    /// Marks `w` active again and adds its gain contribution back to every
    /// other node's total — the inverse of [`ActiveInterference::deactivate`],
    /// needed when a fault plan revives a crashed node. Idempotent:
    /// activating an already-active node is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or `cache` has a different node count.
    pub fn activate(&mut self, cache: &GainCache, w: NodeId) {
        assert_eq!(cache.len(), self.totals.len(), "cache/engine size mismatch");
        assert!(w < self.totals.len(), "node id out of range");
        if self.active[w] {
            return;
        }
        self.active[w] = true;
        self.num_active += 1;
        // Same row-for-column substitution as `deactivate`.
        for (v, (total, &g)) in self.totals.iter_mut().zip(cache.row(w)).enumerate() {
            if v != w {
                *total += g;
            }
        }
    }

    /// The running total interference at `v` from all active nodes other
    /// than `v` itself.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn total_at(&self, v: NodeId) -> f64 {
        self.totals[v]
    }

    /// Whether node `w` is still counted as active.
    #[must_use]
    pub fn is_active(&self, w: NodeId) -> bool {
        self.active.get(w).copied().unwrap_or(false)
    }

    /// Number of nodes still active.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Re-sums `total_at(v)` from scratch over the current active set —
    /// the drift-free reference value for the incremental total.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `cache` has a different node count.
    #[must_use]
    pub fn recompute_at(&self, cache: &GainCache, v: NodeId) -> f64 {
        assert_eq!(cache.len(), self.totals.len(), "cache/engine size mismatch");
        let row = cache.row(v);
        (0..self.totals.len())
            .filter(|&w| w != v && self.active[w])
            .map(|w| row[w])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinr::pow_alpha;

    fn params() -> SinrParams {
        SinrParams::builder()
            .power(16.0)
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap()
    }

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect()
    }

    #[test]
    fn gains_match_direct_formula() {
        let pos = line(5);
        let cache = GainCache::build(&pos, &params()).unwrap();
        for v in 0..5 {
            for u in 0..5 {
                let want = if u == v {
                    0.0
                } else {
                    16.0 / pow_alpha(pos[u].distance_sq(pos[v]), 3.0)
                };
                assert_eq!(cache.gain(u, v), want, "u={u} v={v}");
            }
        }
    }

    #[test]
    fn rows_alias_the_matrix() {
        let pos = line(4);
        let cache = GainCache::build(&pos, &params()).unwrap();
        for v in 0..4 {
            let row = cache.row(v);
            assert_eq!(row.len(), 4);
            for (u, &g) in row.iter().enumerate() {
                assert_eq!(g, cache.gain(u, v));
            }
        }
    }

    #[test]
    fn symmetric_for_symmetric_distance() {
        let pos = vec![
            Point::new(0.3, -1.7),
            Point::new(2.9, 4.1),
            Point::new(-5.0, 0.2),
        ];
        let cache = GainCache::build(&pos, &params()).unwrap();
        for v in 0..3 {
            for u in 0..3 {
                assert_eq!(cache.gain(u, v), cache.gain(v, u));
            }
        }
    }

    #[test]
    fn size_guard_rejects_large_deployments() {
        let pos = line(9);
        assert!(GainCache::build_with_limit(&pos, &params(), 8).is_none());
        assert!(GainCache::build_with_limit(&pos, &params(), 9).is_some());
        assert!(GainCache::build(&[], &params()).is_none());
    }

    #[test]
    fn matches_checks_count_and_params() {
        let pos = line(4);
        let cache = GainCache::build(&pos, &params()).unwrap();
        assert!(cache.matches(&pos, &params()));
        assert!(!cache.matches(&pos[..3], &params()));
        let other = SinrParams::builder().power(32.0).alpha(3.0).build().unwrap();
        assert!(!cache.matches(&pos, &other));
    }

    #[test]
    fn matches_rejects_same_sized_different_deployment() {
        // Regression: before the position fingerprint, any deployment of
        // the right size under the right parameters was accepted, so a
        // stale cache could silently serve wrong gains.
        let pos = line(4);
        let cache = GainCache::build(&pos, &params()).unwrap();

        let mut moved_first = pos.clone();
        moved_first[0] = Point::new(-3.5, 1.0);
        assert!(!cache.matches(&moved_first, &params()));

        let mut moved_last = pos.clone();
        moved_last[3] = Point::new(100.0, -2.0);
        assert!(!cache.matches(&moved_last, &params()));

        let shuffled: Vec<Point> = pos.iter().rev().copied().collect();
        assert!(!cache.matches(&shuffled, &params()));
    }

    #[test]
    fn deactivate_row_walk_matches_column_walk() {
        // The hot loops subtract w's *row* where they previously looked up
        // the column; this pins the bitwise symmetry that substitution
        // relies on, on an asymmetric-looking deployment.
        let pos = vec![
            Point::new(0.3, -1.7),
            Point::new(2.9, 4.1),
            Point::new(-5.0, 0.2),
            Point::new(7.7, 7.7),
            Point::new(-0.01, 3.3),
        ];
        let cache = GainCache::build(&pos, &params()).unwrap();
        for w in 0..pos.len() {
            for (v, &g) in cache.row(w).iter().enumerate() {
                assert_eq!(g, cache.gain(w, v), "w={w} v={v}");
            }
        }
        // And the incremental totals still land exactly where a column
        // walk would have put them (same values, same order).
        let mut ai = ActiveInterference::new(&cache);
        ai.deactivate(&cache, 2);
        ai.activate(&cache, 2);
        ai.deactivate(&cache, 0);
        let mut expected: Vec<f64> = (0..pos.len())
            .map(|v| cache.row(v).iter().sum::<f64>())
            .collect();
        for (v, e) in expected.iter_mut().enumerate() {
            if v != 2 {
                *e -= cache.gain(2, v);
            }
            if v != 2 {
                *e += cache.gain(2, v);
            }
            if v != 0 {
                *e -= cache.gain(0, v);
            }
        }
        for (v, &e) in expected.iter().enumerate() {
            assert_eq!(ai.total_at(v), e, "v={v}");
        }
    }

    #[test]
    fn interference_at_node_sums_in_order() {
        let pos = line(4);
        let cache = GainCache::build(&pos, &params()).unwrap();
        let tx = [0usize, 2, 3];
        let direct: f64 = tx.iter().map(|&w| cache.gain(w, 1)).sum();
        assert_eq!(cache.interference_at_node(&tx, 1), direct);
    }

    #[test]
    fn active_interference_tracks_knockouts() {
        let pos = line(6);
        let cache = GainCache::build(&pos, &params()).unwrap();
        let mut ai = ActiveInterference::new(&cache);
        assert_eq!(ai.num_active(), 6);
        assert_eq!(ai.total_at(2), cache.row(2).iter().sum::<f64>());

        ai.deactivate(&cache, 4);
        assert!(!ai.is_active(4));
        assert_eq!(ai.num_active(), 5);
        // Idempotent.
        ai.deactivate(&cache, 4);
        assert_eq!(ai.num_active(), 5);

        for v in 0..6 {
            let exact = ai.recompute_at(&cache, v);
            let incr = ai.total_at(v);
            assert!(
                (incr - exact).abs() <= 1e-9 * exact.abs().max(1.0),
                "v={v} incremental={incr} exact={exact}"
            );
        }
    }

    #[test]
    fn deactivating_everyone_zeroes_totals() {
        let pos = line(4);
        let cache = GainCache::build(&pos, &params()).unwrap();
        let mut ai = ActiveInterference::new(&cache);
        for w in 0..4 {
            ai.deactivate(&cache, w);
        }
        assert_eq!(ai.num_active(), 0);
        for v in 0..4 {
            assert_eq!(ai.recompute_at(&cache, v), 0.0);
            assert!(ai.total_at(v).abs() <= 1e-9);
        }
    }
}
