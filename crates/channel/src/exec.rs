//! Executor abstraction for in-round data parallelism.
//!
//! The hierarchical far-field engine splits a round's listeners into
//! fixed-size chunks and hands them to a [`ChunkExecutor`]. The trait lives
//! here, in the channel crate, so the engine can be parallelized by a pool
//! owned higher up the stack (`fading-sim`'s work-stealing pool) without a
//! dependency cycle; [`SerialExecutor`] is the inline single-threaded
//! implementation used by default and in tests.
//!
//! # Determinism contract
//!
//! An executor must run `task(i)` exactly once for every `i in
//! 0..num_tasks` and return only after all of them completed. It may run
//! them in any order, on any threads — the engine's chunking is fixed
//! (independent of thread count), every task writes only its own output
//! slot, and outputs are merged in task-index order afterwards, so
//! scheduling can never leak into results.

/// Runs a batch of independent tasks, possibly in parallel.
///
/// See the [module docs](self) for the determinism contract.
pub trait ChunkExecutor: Sync {
    /// Runs `task(i)` for every `i in 0..num_tasks`, returning after all
    /// completed. `task` must be safe to call concurrently from multiple
    /// threads (it is `Sync`).
    fn run(&self, num_tasks: usize, task: &(dyn Fn(usize) + Sync));
}

/// The inline executor: runs every task on the calling thread, in index
/// order. The degenerate (and always-correct) scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl ChunkExecutor for SerialExecutor {
    fn run(&self, num_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..num_tasks {
            task(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn serial_executor_runs_every_task_once() {
        let hits = AtomicU64::new(0);
        SerialExecutor.run(17, &|i| {
            hits.fetch_add(1 << i, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), (1 << 17) - 1);
        // Zero tasks is a no-op.
        SerialExecutor.run(0, &|_| panic!("no task to run"));
    }

    #[test]
    fn chunk_executor_is_object_safe() {
        fn _takes_dyn(_e: &dyn ChunkExecutor) {}
    }
}
