//! Batched per-α SINR kernels over structure-of-arrays slices.
//!
//! Every engine tier bottoms out in the same per-pair expression:
//! `gain = P / pow_alpha(d²(u, v), α)`. The scalar [`pow_alpha`] dispatches
//! on `α` per call — branch-predictable, but the branch (and the AoS
//! `Point` loads around it) keep the autovectorizer out of the loop. This
//! module hoists the dispatch *outside* the loop: [`AlphaClass::of`]
//! classifies the exponent once, and each batch entry point monomorphizes
//! its inner loop per class through the sealed [`AlphaKernel`] trait, so
//! the α = 2/3/4/6 fast paths compile to branch-free straight-line f64
//! arithmetic over contiguous slices.
//!
//! # The summation-order contract
//!
//! The batched paths are **bit-identical** to the scalar ones, not merely
//! close (DESIGN.md §15):
//!
//! * each element of a gain batch is computed by the *same expression* as
//!   the scalar path — same `dx = x_u − x_v` subtraction order, same
//!   `pow_alpha` fast-path arithmetic, same single division (for the
//!   generic class, `α·0.5` is computed once, but multiplying by 0.5 is
//!   exact in IEEE-754, so `powf` sees identical arguments);
//! * downstream consumers fold the gain scratch **in slice order**
//!   ([`fold_scan`]), reproducing the canonical `total += sig` /
//!   first-strict-max accumulation of `scan_transmitters` add for add.
//!
//! No SIMD reassociation of the *fold* is attempted — a single listener's
//! `total += sig` chain is folded strictly in slice order. What *is*
//! vectorized is the [`scan_block`] kernel, which runs [`LISTENER_BLOCK`]
//! *independent* listeners' fused gain-plus-fold chains side by side: the
//! SIMD lanes map to listeners, never to positions within one listener's
//! sum, so each lane reproduces the canonical scalar accumulation add for
//! add while the interleaving hides the FP-add latency that makes a lone
//! fold chain serial. The `pow_alpha_batch` proptest oracle and the
//! batched-vs-scalar scan equivalence proptest in `tests/kernels.rs` pin
//! the contract across the full dynamic range.
//!
//! # Runtime AVX2 dispatch
//!
//! The crate builds at the portable baseline x86-64 target (SSE2). The
//! hot kernels additionally carry a `#[target_feature(enable = "avx2")]`
//! instantiation selected by cached runtime detection: per-lane `vaddpd` /
//! `vsubpd` / `vmulpd` / `vdivpd` / `vsqrtpd` are IEEE-754-exact at every
//! width, and the `fma` feature is deliberately left off (Rust never
//! contracts `a*b + c` into a fused multiply-add on its own), so the wide
//! path is bit-identical to the baseline one — the dispatch is pure
//! throughput policy. The win is real: the divider, which bottlenecks the
//! α = 3 hot path, roughly doubles its per-element throughput from xmm to
//! ymm (DESIGN.md §15 has the measured numbers).

mod private {
    /// Prevents downstream kernel implementations so the class set stays
    /// closed (the exactness argument enumerates it).
    pub trait Sealed {}
}

/// A path-loss exponent class: computes `d^α` from `d²` with the class's
/// fixed arithmetic. Sealed — the five implementations below mirror the
/// fast paths of the scalar [`pow_alpha`] exactly.
pub trait AlphaKernel: private::Sealed + Copy {
    /// `d^α` given the squared distance `d²`, bit-identical to the scalar
    /// [`pow_alpha`] fast path for this class.
    fn pow_alpha(self, d_sq: f64) -> f64;
}

/// `α = 2`: `d² ` itself.
#[derive(Debug, Clone, Copy)]
pub struct Alpha2;

/// `α = 3`: `d²·√d²`.
#[derive(Debug, Clone, Copy)]
pub struct Alpha3;

/// `α = 4`: `d²·d²`.
#[derive(Debug, Clone, Copy)]
pub struct Alpha4;

/// `α = 6`: `d²·d²·d²`.
#[derive(Debug, Clone, Copy)]
pub struct Alpha6;

/// Any other exponent: `(d²)^(α/2)` via `powf`, with `α·0.5` precomputed
/// (exact — a power-of-two scale only adjusts the exponent field).
#[derive(Debug, Clone, Copy)]
pub struct AlphaGeneric {
    half_alpha: f64,
}

impl private::Sealed for Alpha2 {}
impl private::Sealed for Alpha3 {}
impl private::Sealed for Alpha4 {}
impl private::Sealed for Alpha6 {}
impl private::Sealed for AlphaGeneric {}

impl AlphaKernel for Alpha2 {
    #[inline(always)]
    fn pow_alpha(self, d_sq: f64) -> f64 {
        d_sq
    }
}

impl AlphaKernel for Alpha3 {
    #[inline(always)]
    fn pow_alpha(self, d_sq: f64) -> f64 {
        d_sq * d_sq.sqrt()
    }
}

impl AlphaKernel for Alpha4 {
    #[inline(always)]
    fn pow_alpha(self, d_sq: f64) -> f64 {
        d_sq * d_sq
    }
}

impl AlphaKernel for Alpha6 {
    #[inline(always)]
    fn pow_alpha(self, d_sq: f64) -> f64 {
        d_sq * d_sq * d_sq
    }
}

impl AlphaKernel for AlphaGeneric {
    #[inline(always)]
    fn pow_alpha(self, d_sq: f64) -> f64 {
        d_sq.powf(self.half_alpha)
    }
}

/// The exponent classes the batched kernels monomorphize over — the same
/// set the scalar [`pow_alpha`] special-cases, plus the generic `powf`
/// remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaClass {
    /// `α = 2`.
    Two,
    /// `α = 3`.
    Three,
    /// `α = 4`.
    Four,
    /// `α = 6`.
    Six,
    /// Any other exponent (generic `powf`).
    Generic,
}

impl AlphaClass {
    /// Classifies a path-loss exponent, mirroring the scalar
    /// [`pow_alpha`] dispatch exactly.
    #[must_use]
    pub fn of(alpha: f64) -> Self {
        if alpha == 2.0 {
            AlphaClass::Two
        } else if alpha == 3.0 {
            AlphaClass::Three
        } else if alpha == 4.0 {
            AlphaClass::Four
        } else if alpha == 6.0 {
            AlphaClass::Six
        } else {
            AlphaClass::Generic
        }
    }

    /// The stable label used in benchmark output and the scaling snapshot
    /// (`BENCH_scaling.json` kernel micro-probe).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AlphaClass::Two => "alpha2",
            AlphaClass::Three => "alpha3",
            AlphaClass::Four => "alpha4",
            AlphaClass::Six => "alpha6",
            AlphaClass::Generic => "generic",
        }
    }
}

/// The monomorphized `d^α` batch: `out[i] = pow_alpha(d_sq[i], α)`.
///
/// `#[inline(always)]` so the body is re-codegenned inside the
/// `#[target_feature(enable = "avx2")]` wrapper below — that is what lets
/// the autovectorizer use 256-bit lanes on the runtime-dispatched path.
#[inline(always)]
fn pow_alpha_batch_inner<K: AlphaKernel>(k: K, d_sq: &[f64], out: &mut [f64]) {
    for (o, &d) in out.iter_mut().zip(d_sq) {
        *o = k.pow_alpha(d);
    }
}

/// AVX2 instantiation of [`pow_alpha_batch_inner`]. Per-lane `vmulpd` /
/// `vsqrtpd` are IEEE-754-exact, and the `fma` feature is deliberately
/// *not* enabled (Rust never contracts `a*b + c` on its own, and we keep
/// it that way), so results stay bit-identical to the scalar path.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)] // see the crate-root lint note
unsafe fn pow_alpha_batch_avx2<K: AlphaKernel>(k: K, d_sq: &[f64], out: &mut [f64]) {
    pow_alpha_batch_inner(k, d_sq, out);
}

/// Runtime-dispatched [`pow_alpha_batch_inner`]: picks the AVX2
/// instantiation when the CPU has it (detection is cached by `std`), the
/// baseline build otherwise. Both compute bit-identical results — the
/// dispatch is pure throughput policy.
#[inline]
#[allow(unsafe_code)] // detection-guarded call; see the crate-root lint note
fn pow_alpha_batch_with<K: AlphaKernel>(k: K, d_sq: &[f64], out: &mut [f64]) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { pow_alpha_batch_avx2(k, d_sq, out) };
        return;
    }
    pow_alpha_batch_inner(k, d_sq, out);
}

/// Batched [`pow_alpha`]: fills `out[i] = pow_alpha(d_sq[i], alpha)` with
/// one per-α monomorphized pass. Bit-identical to calling the scalar
/// function element-wise (module docs, "summation-order contract").
///
/// # Panics
///
/// Panics if `out.len() != d_sq.len()`.
pub fn pow_alpha_batch(alpha: f64, d_sq: &[f64], out: &mut [f64]) {
    assert_eq!(d_sq.len(), out.len(), "input/output length mismatch");
    match AlphaClass::of(alpha) {
        AlphaClass::Two => pow_alpha_batch_with(Alpha2, d_sq, out),
        AlphaClass::Three => pow_alpha_batch_with(Alpha3, d_sq, out),
        AlphaClass::Four => pow_alpha_batch_with(Alpha4, d_sq, out),
        AlphaClass::Six => pow_alpha_batch_with(Alpha6, d_sq, out),
        AlphaClass::Generic => pow_alpha_batch_with(
            AlphaGeneric {
                half_alpha: alpha * 0.5,
            },
            d_sq,
            out,
        ),
    }
}

/// The monomorphized distance² batch: `out[i] = (xs[i]−vx)² + (ys[i]−vy)²`.
#[inline]
fn distance_sq_batch_inner(xs: &[f64], ys: &[f64], vx: f64, vy: f64, out: &mut [f64]) {
    for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        let dx = x - vx;
        let dy = y - vy;
        *o = dx * dx + dy * dy;
    }
}

/// Batched squared distances from the point `(vx, vy)` to the SoA points
/// `(xs[i], ys[i])`: the same `dx·dx + dy·dy` expression as
/// `Point::distance_sq(p_i, v)` with the stored point on the left — the
/// orientation every scalar scan uses.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn distance_sq_batch(xs: &[f64], ys: &[f64], vx: f64, vy: f64, out: &mut [f64]) {
    assert_eq!(xs.len(), ys.len(), "SoA slices must be parallel");
    assert_eq!(xs.len(), out.len(), "input/output length mismatch");
    distance_sq_batch_inner(xs, ys, vx, vy, out);
}

/// The monomorphized fused gain batch (see [`pow_alpha_batch_inner`] for
/// why `#[inline(always)]`).
#[inline(always)]
fn gain_batch_inner<K: AlphaKernel>(
    k: K,
    power: f64,
    xs: &[f64],
    ys: &[f64],
    vx: f64,
    vy: f64,
    out: &mut [f64],
) {
    for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        let dx = x - vx;
        let dy = y - vy;
        *o = power / k.pow_alpha(dx * dx + dy * dy);
    }
}

/// AVX2 instantiation of [`gain_batch_inner`] — bit-identical per lane
/// (no `fma`; see [`pow_alpha_batch_avx2`]).
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // mirrors gain_batch_inner
#[allow(unsafe_code)] // see the crate-root lint note
unsafe fn gain_batch_avx2<K: AlphaKernel>(
    k: K,
    power: f64,
    xs: &[f64],
    ys: &[f64],
    vx: f64,
    vy: f64,
    out: &mut [f64],
) {
    gain_batch_inner(k, power, xs, ys, vx, vy, out);
}

/// Runtime-dispatched [`gain_batch_inner`] (pure throughput policy; both
/// arms are bit-identical).
#[inline]
#[allow(unsafe_code)] // detection-guarded call; see the crate-root lint note
fn gain_batch_with<K: AlphaKernel>(
    k: K,
    power: f64,
    xs: &[f64],
    ys: &[f64],
    vx: f64,
    vy: f64,
    out: &mut [f64],
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { gain_batch_avx2(k, power, xs, ys, vx, vy, out) };
        return;
    }
    gain_batch_inner(k, power, xs, ys, vx, vy, out);
}

/// The fused hot-path batch: `out[i] = power / pow_alpha(d²_i, alpha)`
/// with `d²_i` the squared distance from `(vx, vy)` to `(xs[i], ys[i])`.
/// One branch-free monomorphized pass per exponent class; each element is
/// bit-identical to the scalar
/// `power / pow_alpha(Point::distance_sq(p_i, v), alpha)`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn gain_batch(
    power: f64,
    alpha: f64,
    xs: &[f64],
    ys: &[f64],
    vx: f64,
    vy: f64,
    out: &mut [f64],
) {
    assert_eq!(xs.len(), ys.len(), "SoA slices must be parallel");
    assert_eq!(xs.len(), out.len(), "input/output length mismatch");
    match AlphaClass::of(alpha) {
        AlphaClass::Two => gain_batch_with(Alpha2, power, xs, ys, vx, vy, out),
        AlphaClass::Three => gain_batch_with(Alpha3, power, xs, ys, vx, vy, out),
        AlphaClass::Four => gain_batch_with(Alpha4, power, xs, ys, vx, vy, out),
        AlphaClass::Six => gain_batch_with(Alpha6, power, xs, ys, vx, vy, out),
        AlphaClass::Generic => gain_batch_with(
            AlphaGeneric {
                half_alpha: alpha * 0.5,
            },
            power,
            xs,
            ys,
            vx,
            vy,
            out,
        ),
    }
}

/// Listeners per fused block scan ([`scan_block`]). The lanes are
/// independent `total +=` chains, so the block width trades FP-add
/// latency hiding against register pressure: the serial fold is
/// latency-bound at one add per ~4 cycles, and 32 lanes (8 ymm
/// accumulator pairs, spilling the index lanes to L1) measured fastest
/// and steadiest on the divider-bound α = 3 hot path — ~10% over 8
/// lanes, which already recovers most of the win (DESIGN.md §15).
pub const LISTENER_BLOCK: usize = 32;

/// The monomorphized fused block scan: one pass over the transmitters
/// computing, for each of [`LISTENER_BLOCK`] listeners at once, the gain
/// *and* its slice-order fold. Per listener lane the arithmetic — `dx`
/// orientation, `pow_alpha` fast path, division, `total += g`, and the
/// strict-max update — is the canonical scalar sequence, so each lane is
/// bit-identical to [`fold_scan`] over a [`gain_batch`]; the lanes only
/// interleave *between* listeners, never within one listener's chain.
#[inline(always)]
fn scan_block_inner<K: AlphaKernel>(
    k: K,
    power: f64,
    xs: &[f64],
    ys: &[f64],
    vx: &[f64; LISTENER_BLOCK],
    vy: &[f64; LISTENER_BLOCK],
) -> [ScanFold; LISTENER_BLOCK] {
    let mut total = [0.0f64; LISTENER_BLOCK];
    let mut best = [0.0f64; LISTENER_BLOCK];
    // -1 = no strict winner yet (mirrors fold_scan's None).
    let mut best_i = [-1i64; LISTENER_BLOCK];
    for (i, (&x, &y)) in xs.iter().zip(ys).enumerate() {
        for j in 0..LISTENER_BLOCK {
            let dx = x - vx[j];
            let dy = y - vy[j];
            let g = power / k.pow_alpha(dx * dx + dy * dy);
            total[j] += g;
            // Select form (not a branch) so the compiler can if-convert
            // and vectorize across the j lanes; semantics are identical
            // to fold_scan's `if g > best` (NaN compares false → keep).
            let better = g > best[j];
            best[j] = if better { g } else { best[j] };
            best_i[j] = if better { i as i64 } else { best_i[j] };
        }
    }
    std::array::from_fn(|j| ScanFold {
        total: total[j],
        best_sig: best[j],
        best_idx: usize::try_from(best_i[j]).ok(),
    })
}

/// AVX2 instantiation of [`scan_block_inner`] — bit-identical per lane
/// (no `fma`; see [`pow_alpha_batch_avx2`]). This is the variant that
/// makes the block scan pay off: with 256-bit lanes the eight listener
/// chains become two `vaddpd`/`vdivpd`/`vsqrtpd` streams, and the divider
/// (the real bottleneck) runs at its ymm throughput instead of xmm.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)] // see the crate-root lint note
unsafe fn scan_block_avx2<K: AlphaKernel>(
    k: K,
    power: f64,
    xs: &[f64],
    ys: &[f64],
    vx: &[f64; LISTENER_BLOCK],
    vy: &[f64; LISTENER_BLOCK],
) -> [ScanFold; LISTENER_BLOCK] {
    scan_block_inner(k, power, xs, ys, vx, vy)
}

/// Runtime-dispatched [`scan_block_inner`] (pure throughput policy; both
/// arms are bit-identical).
#[inline]
#[allow(unsafe_code)] // detection-guarded call; see the crate-root lint note
fn scan_block_with<K: AlphaKernel>(
    k: K,
    power: f64,
    xs: &[f64],
    ys: &[f64],
    vx: &[f64; LISTENER_BLOCK],
    vy: &[f64; LISTENER_BLOCK],
) -> [ScanFold; LISTENER_BLOCK] {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { scan_block_avx2(k, power, xs, ys, vx, vy) };
    }
    scan_block_inner(k, power, xs, ys, vx, vy)
}

/// Fused multi-listener scan: folds [`LISTENER_BLOCK`] listeners against
/// the SoA transmitter slices in a single pass, returning each listener's
/// [`ScanFold`]. Bit-identical per listener to
/// `fold_scan(gain_batch(..))` — see [`scan_block_with`] — while hiding
/// the fold's FP-add latency behind the other lanes' work.
///
/// # Panics
///
/// Panics if `xs.len() != ys.len()`.
pub fn scan_block(
    power: f64,
    alpha: f64,
    xs: &[f64],
    ys: &[f64],
    vx: &[f64; LISTENER_BLOCK],
    vy: &[f64; LISTENER_BLOCK],
) -> [ScanFold; LISTENER_BLOCK] {
    assert_eq!(xs.len(), ys.len(), "SoA slices must be parallel");
    match AlphaClass::of(alpha) {
        AlphaClass::Two => scan_block_with(Alpha2, power, xs, ys, vx, vy),
        AlphaClass::Three => scan_block_with(Alpha3, power, xs, ys, vx, vy),
        AlphaClass::Four => scan_block_with(Alpha4, power, xs, ys, vx, vy),
        AlphaClass::Six => scan_block_with(Alpha6, power, xs, ys, vx, vy),
        AlphaClass::Generic => scan_block_with(
            AlphaGeneric {
                half_alpha: alpha * 0.5,
            },
            power,
            xs,
            ys,
            vx,
            vy,
        ),
    }
}

/// Outcome of folding a gain scratch buffer in slice order (the canonical
/// accumulation of `scan_transmitters`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanFold {
    /// Sum of all gains, accumulated in slice order.
    pub total: f64,
    /// The strongest single gain (0.0 when none is positive).
    pub best_sig: f64,
    /// The index of the first element attaining `best_sig` strictly, if
    /// any — ties keep the earlier index, exactly as the canonical fold.
    pub best_idx: Option<usize>,
}

/// Folds a gain scratch buffer in slice order: `total += g` plus the
/// first-strict-max winner rule, reproducing the canonical
/// `scan_transmitters` accumulation add for add and compare for compare.
#[inline]
#[must_use]
pub fn fold_scan(gains: &[f64]) -> ScanFold {
    let mut total = 0.0;
    let mut best_sig = 0.0;
    let mut best_idx: Option<usize> = None;
    for (i, &g) in gains.iter().enumerate() {
        total += g;
        if g > best_sig {
            best_sig = g;
            best_idx = Some(i);
        }
    }
    ScanFold {
        total,
        best_sig,
        best_idx,
    }
}

/// Reusable per-round scratch for batched transmitter scans: the gathered
/// SoA transmitter coordinates plus the per-listener gain buffer.
#[derive(Debug, Default, Clone)]
pub struct ScanScratch {
    /// Gathered transmitter `x` coordinates, in transmitter-slice order.
    pub xs: Vec<f64>,
    /// Gathered transmitter `y` coordinates, in transmitter-slice order.
    pub ys: Vec<f64>,
    /// Per-listener gain buffer (resized by the batch entry points).
    pub gains: Vec<f64>,
}

impl ScanScratch {
    /// Fresh, empty scratch.
    #[must_use]
    pub fn new() -> Self {
        ScanScratch::default()
    }

    /// Gathers the coordinates of `ids` (indices into `points`) into the
    /// contiguous `xs`/`ys` slices, replacing their contents.
    pub fn gather(&mut self, points: &[fading_geom::Point], ids: &[usize]) {
        fading_geom::gather_points(points, ids, &mut self.xs, &mut self.ys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinr::pow_alpha;

    #[test]
    fn class_of_mirrors_scalar_dispatch() {
        assert_eq!(AlphaClass::of(2.0), AlphaClass::Two);
        assert_eq!(AlphaClass::of(3.0), AlphaClass::Three);
        assert_eq!(AlphaClass::of(4.0), AlphaClass::Four);
        assert_eq!(AlphaClass::of(6.0), AlphaClass::Six);
        assert_eq!(AlphaClass::of(2.5), AlphaClass::Generic);
        assert_eq!(AlphaClass::of(5.0), AlphaClass::Generic);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AlphaClass::Two.label(), "alpha2");
        assert_eq!(AlphaClass::Generic.label(), "generic");
    }

    #[test]
    fn pow_alpha_batch_is_bit_identical_to_scalar() {
        let d_sq: Vec<f64> = vec![0.0, 1e-300, 0.5, 1.0, 2.0, 123.456, 1e150, 1e300];
        let mut out = vec![0.0; d_sq.len()];
        for &alpha in &[2.0, 2.5, 3.0, 3.7, 4.0, 5.1, 6.0] {
            pow_alpha_batch(alpha, &d_sq, &mut out);
            for (i, &d) in d_sq.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    pow_alpha(d, alpha).to_bits(),
                    "alpha={alpha} d_sq={d}"
                );
            }
        }
    }

    #[test]
    fn gain_batch_is_bit_identical_to_scalar() {
        use fading_geom::Point;
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.5, -2.0),
            Point::new(-3.0, 4.0),
            Point::new(1e3, 1e-3),
        ];
        let v = Point::new(0.25, -0.75);
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        let mut out = vec![0.0; pts.len()];
        for &alpha in &[2.0, 2.5, 3.0, 4.0, 6.0] {
            gain_batch(16.0, alpha, &xs, &ys, v.x, v.y, &mut out);
            for (i, p) in pts.iter().enumerate() {
                let want = 16.0 / pow_alpha(p.distance_sq(v), alpha);
                assert_eq!(out[i].to_bits(), want.to_bits(), "alpha={alpha} i={i}");
            }
        }
    }

    #[test]
    fn distance_sq_batch_matches_point_method() {
        use fading_geom::Point;
        let pts = [Point::new(3.0, 4.0), Point::new(-1.0, 2.5)];
        let v = Point::new(1.0, 1.0);
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        let mut out = vec![0.0; 2];
        distance_sq_batch(&xs, &ys, v.x, v.y, &mut out);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(out[i].to_bits(), p.distance_sq(v).to_bits());
        }
    }

    #[test]
    fn fold_scan_first_strict_max_and_order() {
        // Ties keep the earlier index; zero gains never win.
        let f = fold_scan(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(f.best_idx, Some(1));
        assert_eq!(f.best_sig, 3.0);
        assert_eq!(f.total, 9.0);
        assert_eq!(fold_scan(&[]).best_idx, None);
        assert_eq!(fold_scan(&[0.0, 0.0]).best_idx, None);
        // Accumulation order is slice order: a permuted input may yield a
        // different total under IEEE-754, which is exactly why the contract
        // fixes the order. (These particular values are exact either way;
        // the proptests cover the interesting cases.)
        let g = fold_scan(&[2.0, 1.0, 3.0, 3.0]);
        assert_eq!(g.best_idx, Some(2));
    }

    #[test]
    fn scan_scratch_gathers_in_slice_order() {
        use fading_geom::Point;
        let pts = [Point::new(0.0, 5.0), Point::new(1.0, 6.0), Point::new(2.0, 7.0)];
        let mut s = ScanScratch::new();
        s.gather(&pts, &[2, 0, 1]);
        assert_eq!(s.xs, vec![2.0, 0.0, 1.0]);
        assert_eq!(s.ys, vec![7.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pow_alpha_batch_rejects_mismatched_lengths() {
        let mut out = vec![0.0; 2];
        pow_alpha_batch(3.0, &[1.0], &mut out);
    }

    #[test]
    fn scan_block_lanes_are_bit_identical_to_fold_scan() {
        // Deterministic LCG geometry: irregular magnitudes so the fold
        // order actually matters, plus a manufactured exact tie per lane
        // to exercise the first-strict-max rule inside the block kernel.
        let m = 97;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 200.0 - 100.0
        };
        let xs: Vec<f64> = (0..m).map(|_| next()).collect();
        let ys: Vec<f64> = (0..m).map(|_| next()).collect();
        let mut vx = [0.0; LISTENER_BLOCK];
        let mut vy = [0.0; LISTENER_BLOCK];
        for j in 0..LISTENER_BLOCK {
            vx[j] = next();
            vy[j] = next();
        }
        // Mirror transmitter 70 across each listener's x-axis position so
        // some listener sees an exact gain tie (same distance twice).
        let mut xs_tied = xs.clone();
        let mut ys_tied = ys.clone();
        xs_tied[70] = 2.0 * vx[3] - xs[20];
        ys_tied[70] = ys[20];
        for &alpha in &[2.0, 2.5, 3.0, 4.0, 6.0] {
            for (txs, tys) in [(&xs, &ys), (&xs_tied, &ys_tied)] {
                let folds = scan_block(7.5, alpha, txs, tys, &vx, &vy);
                let mut gains = vec![0.0; m];
                for j in 0..LISTENER_BLOCK {
                    gain_batch(7.5, alpha, txs, tys, vx[j], vy[j], &mut gains);
                    let want = fold_scan(&gains);
                    assert_eq!(
                        folds[j].total.to_bits(),
                        want.total.to_bits(),
                        "alpha={alpha} lane={j} total"
                    );
                    assert_eq!(
                        folds[j].best_sig.to_bits(),
                        want.best_sig.to_bits(),
                        "alpha={alpha} lane={j} best_sig"
                    );
                    assert_eq!(folds[j].best_idx, want.best_idx, "alpha={alpha} lane={j} idx");
                }
            }
        }
    }

    #[test]
    fn scan_block_empty_slices_yield_empty_folds() {
        let folds = scan_block(1.0, 3.0, &[], &[], &[0.0; LISTENER_BLOCK], &[0.0; LISTENER_BLOCK]);
        for f in folds {
            assert_eq!(f.total, 0.0);
            assert_eq!(f.best_idx, None);
        }
    }
}
