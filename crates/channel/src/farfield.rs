//! The far-field interference engine: tile-aggregated SINR resolve with a
//! **decision-exactness** contract.
//!
//! # The idea
//!
//! Exact SINR resolve walks every transmitter per listener — O(|T|·|L|)
//! work per round, which is the wall that stops the simulator past the
//! [`GainCache`] size guard. But the SINR *decision* rarely needs the exact
//! far interference: the paper's own analysis (Lemmas 3–4) bounds the
//! contribution of each exponential annulus `A^i_t(u)` by its population
//! times the extremal gain over the annulus, and that argument turns
//! directly into a kernel.
//!
//! [`FarFieldEngine`] partitions the deployment into a grid of tiles (a
//! [`TileIndex`] over the node positions) and precomputes, for every tile
//! pair `(t, s)`, the minimal and maximal pairwise gain `P/d^α` attainable
//! between their members — from the tiles' tight *content* bounding boxes.
//! Per round, transmitters are bucketed by tile; per listener, the engine:
//!
//! 1. scans the **near field** (the listener tile's 3×3 Chebyshev
//!    neighborhood) exactly, with the canonical per-pair expression;
//! 2. aggregates every **far** tile as `mass × gain` bounds, giving
//!    `I_lo ≤ I_far ≤ I_hi` and a cap on any single far signal;
//! 3. decides the reception from the bracket: when `best_sig` clears (or
//!    misses) `β·(noise + I)` for *both* endpoints — after widening the
//!    bracket by [`FARFIELD_REL_SLACK`] to absorb floating-point
//!    reordering — the decision is provably the one the exact path takes;
//! 4. otherwise **falls back** to the canonical exact scan for that
//!    listener (shared code with [`SinrChannel`], so it is identical by
//!    construction).
//!
//! # The decision-exactness contract
//!
//! `resolve_farfield` is *not* an approximation: its `Reception` vectors
//! are **bit-identical** to `resolve`/`resolve_cached` on all inputs. The
//! pruned path only ever skips work whose outcome is already certain:
//!
//! * **Certain silence** — the exact denominator is at least the (possibly
//!   jammed, noise-scaled) floor `N`, so if neither the near-field best nor
//!   the far-field cap can reach `β·N`, no transmitter decodes.
//! * **Winner identification** — the canonical winner is the *first*
//!   transmitter (in slice order) attaining the maximal signal. Far
//!   signals are capped by the per-tile upper gain; only when the near
//!   best *strictly* beats that cap is the winner certainly near, in which
//!   case the near scan (same expression, first-index tie-break) has
//!   already identified it exactly.
//! * **Bracketed decision** — the exact interference the canonical fold
//!   produces differs from `near + far` only by summation order, i.e. by a
//!   relative error ≪ [`FARFIELD_REL_SLACK`]; the widened
//!   `[I_lo, I_hi]` bracket therefore contains it, and a decision that is
//!   invariant across the bracket is the exact decision.
//!
//! Every uncertain case — non-finite intermediate, no near winner, a far
//! tile that could rival the near best, a bracket that straddles the
//! threshold — takes the exact fallback. The equivalence proptests in
//! `tests/farfield_equivalence.rs` enforce the contract end to end, and
//! `tests/farfield_bounds.rs` checks the bounds bracket real sums and that
//! adversarial clustered deployments do trigger the fallback.
//!
//! Stochastic channels are excluded by design: Rayleigh fading draws one
//! rng variate per (listener, transmitter) pair in canonical order, so any
//! pruning would desynchronize the rng stream. `RayleighSinrChannel`
//! therefore builds no engine and `resolve_farfield` falls back wholesale.

use fading_geom::{Point, PointsSoA, TileIndex};

use crate::kernels::{gain_batch, pow_alpha_batch, ScanScratch};
use crate::sinr::{scan_transmitters_batched, ScanOutcome};
use crate::{ChannelPerturbation, NodeId, Reception, SinrParams};

/// Average number of nodes per tile the engine aims for when sizing the
/// grid (see [`TileIndex::with_target_occupancy`]).
pub const DEFAULT_TARGET_TILE_OCCUPANCY: usize = 64;

/// Upper bound on tiles per side: caps the pair-bound tables at
/// `(36²)² ≈ 1.7M` entries (~13 MB per table) regardless of `n`.
pub const MAX_TILES_PER_SIDE: usize = 36;

/// Chebyshev tile radius of the near field: tiles within this ring of the
/// listener's tile are scanned exactly; everything further is aggregated.
pub const NEAR_RING: usize = 1;

/// Relative slack by which the far-field bracket is widened before the
/// decision test.
///
/// This absorbs every source of discrepancy between the bracket and the
/// value the canonical fold computes: summation reorder (bounded by
/// `k·ε ≈ 1.5e-11` at `k = 65536`, `ε = 2⁻⁵²`), the few-ulp rounding of
/// the tile-pair distance bounds, and the (unspecified, but tiny)
/// non-monotonicity of `powf` for non-integer `α`. The slack is ~70×
/// larger than the worst of these at the maximum supported scale and only
/// costs a sliver of extra fallbacks near the decision boundary.
pub const FARFIELD_REL_SLACK: f64 = 1e-9;

/// Decision counters accumulated by a [`FarFieldEngine`] across rounds,
/// one named counter per rung of the decision ladder (module docs,
/// "decision-exactness contract") plus the trivial transmitter-free case.
///
/// Every listener decision lands in **exactly one** bucket, so the sum of
/// all seven counters ([`FarFieldStats::listeners_resolved`]) equals the
/// total number of listener resolutions performed — the reconciliation
/// invariant the equivalence suite asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarFieldStats {
    /// Rounds resolved through the engine.
    pub rounds: u64,
    /// Listeners of transmitter-free rounds: decided (Silence) without
    /// entering the ladder, since the canonical fold has no candidate.
    pub empty_round_silences: u64,
    /// Rung 1: a non-finite intermediate (overflow, coincident nodes,
    /// touching tile boxes) voided the bracket reasoning → exact fallback.
    pub nonfinite_fallbacks: u64,
    /// Rung 2: certain silence — neither the near best nor the far cap
    /// could reach the (possibly jammed, noise-scaled) floor `β·N`.
    pub noise_floor_silences: u64,
    /// Rung 3: no near candidate, yet rung 2 could not rule out a far
    /// decode → exact fallback (only the exact scan can name the winner).
    pub no_near_winner_fallbacks: u64,
    /// Rung 4: some far tile's gain cap rivals the near best, so the
    /// canonical winner might be a far transmitter → exact fallback.
    pub far_rival_fallbacks: u64,
    /// Rung 5: the slack-widened interference bracket settled the decision
    /// (both endpoints agree).
    pub bracket_decisions: u64,
    /// Rung 5: the bracket straddled the `β` threshold → exact fallback.
    pub bracket_straddle_fallbacks: u64,
}

impl FarFieldStats {
    /// Listener decisions settled by the near scan + far bracket alone
    /// (including listeners of transmitter-free rounds).
    #[must_use]
    pub fn fast_decisions(&self) -> u64 {
        self.empty_round_silences + self.bracket_decisions
    }

    /// Listener decisions that required the exact canonical scan — the sum
    /// of every fallback rung.
    #[must_use]
    pub fn exact_fallbacks(&self) -> u64 {
        self.nonfinite_fallbacks
            + self.no_near_winner_fallbacks
            + self.far_rival_fallbacks
            + self.bracket_straddle_fallbacks
    }

    /// Total listener resolutions performed: the sum of every bucket.
    /// Equals `fast_decisions() + noise_floor_silences + exact_fallbacks()`
    /// by construction.
    #[must_use]
    pub fn listeners_resolved(&self) -> u64 {
        self.empty_round_silences
            + self.nonfinite_fallbacks
            + self.noise_floor_silences
            + self.no_near_winner_fallbacks
            + self.far_rival_fallbacks
            + self.bracket_decisions
            + self.bracket_straddle_fallbacks
    }

    /// Fraction of listener decisions that fell back to the exact scan
    /// (0.0 when no listener has been resolved yet).
    #[must_use]
    pub fn fallback_fraction(&self) -> f64 {
        let total = self.listeners_resolved();
        if total == 0 {
            0.0
        } else {
            self.exact_fallbacks() as f64 / total as f64
        }
    }
}

/// Per-tile-pair gain bounds plus per-round scratch for the tile-aggregated
/// resolve. Built once per deployment by
/// [`Channel::build_farfield_engine`](crate::Channel::build_farfield_engine);
/// see the [module docs](self) for the algorithm and its exactness
/// argument.
#[derive(Debug, Clone)]
pub struct FarFieldEngine {
    tiles: TileIndex,
    n: usize,
    power: f64,
    alpha: f64,
    first: Point,
    last: Point,
    /// Lower gain bound per tile pair (`t * num_tiles + s`): attained at
    /// the maximal content-bbox distance. Zero for pairs with an empty side.
    pair_g_lo: Vec<f64>,
    /// Upper gain bound per tile pair: attained at the minimal content-bbox
    /// distance (`+∞` when the boxes touch — such pairs always fall back).
    pair_g_hi: Vec<f64>,
    /// Live-node flags mirrored from the simulator's knockout/churn state.
    alive: Vec<bool>,
    /// Live members per tile, maintained incrementally alongside
    /// `ActiveInterference`.
    alive_per_tile: Vec<u32>,
    num_alive: usize,
    /// SoA mirror of the build positions, feeding the batched kernels
    /// (coherent with `positions` whenever `matches` holds).
    soa: PointsSoA,
    /// Per-round transmitter buckets: `(node, slice index)` per tile.
    tx_in_tile: Vec<Vec<(u32, u32)>>,
    /// Per-tile contiguous transmitter coordinates, parallel to
    /// `tx_in_tile` (bucket order), so near-ring scans run as one fused
    /// gain batch per tile.
    tx_x_in_tile: Vec<Vec<f64>>,
    tx_y_in_tile: Vec<Vec<f64>>,
    /// Tiles with at least one transmitter this round.
    occupied: Vec<u32>,
    /// Round-level gathered transmitter coordinates + gain buffer for the
    /// batched exact fallback, and the near-scan gain buffer.
    scan: ScanScratch,
    near_gains: Vec<f64>,
    /// Lazily computed per-listener-tile far aggregates, validated by
    /// `far_stamp` against the current round's `stamp`.
    far_lo: Vec<f64>,
    far_hi: Vec<f64>,
    far_cap: Vec<f64>,
    far_stamp: Vec<u64>,
    stamp: u64,
    stats: FarFieldStats,
}

impl FarFieldEngine {
    /// Builds an engine for `positions` under `params`, with the default
    /// tiling ([`DEFAULT_TARGET_TILE_OCCUPANCY`] nodes per tile, at most
    /// [`MAX_TILES_PER_SIDE`] tiles per side).
    ///
    /// Returns `None` for an empty deployment or non-finite coordinates
    /// (the exact paths define the semantics of such inputs).
    #[must_use]
    pub fn build(positions: &[Point], params: &SinrParams) -> Option<Self> {
        let tiles = TileIndex::with_target_occupancy(
            positions,
            DEFAULT_TARGET_TILE_OCCUPANCY,
            MAX_TILES_PER_SIDE,
        )?;
        Self::from_tiles(tiles, positions, params)
    }

    /// Builds an engine over an explicit `tiles_per_side × tiles_per_side`
    /// grid. Exposed so tests can force multi-tile layouts on small
    /// deployments; `build` is the production sizing.
    #[must_use]
    pub fn build_with_tiling(
        positions: &[Point],
        params: &SinrParams,
        tiles_per_side: usize,
    ) -> Option<Self> {
        let tiles = TileIndex::build(positions, tiles_per_side)?;
        Self::from_tiles(tiles, positions, params)
    }

    fn from_tiles(tiles: TileIndex, positions: &[Point], params: &SinrParams) -> Option<Self> {
        if !positions.iter().all(|p| p.is_finite()) {
            return None;
        }
        let num_tiles = tiles.num_tiles();
        let p = params.power();
        let alpha = params.alpha();
        // Row-batched pair-table build: per source tile, gather the
        // distance bounds for the whole row, then one per-α pow batch and
        // one division pass each for the lower and upper gains. Pairs with
        // an empty side keep the `∞` sentinel distance, whose gain
        // `p / ∞ = 0` matches the scalar build's untouched 0.0 slot;
        // d_min_sq = 0 (overlapping/touching content boxes) yields an
        // infinite upper bound, which forces the exact fallback for any
        // listener near such a pair — conservative, never wrong.
        let mut pair_g_lo = vec![0.0; num_tiles * num_tiles];
        let mut pair_g_hi = vec![0.0; num_tiles * num_tiles];
        let mut d_far = vec![f64::INFINITY; num_tiles];
        let mut d_near = vec![f64::INFINITY; num_tiles];
        let mut powed = vec![0.0; num_tiles];
        for t in 0..num_tiles {
            d_far.fill(f64::INFINITY);
            d_near.fill(f64::INFINITY);
            for s in 0..num_tiles {
                if let Some((d_min_sq, d_max_sq)) = tiles.distance_sq_bounds(t, s) {
                    d_far[s] = d_max_sq;
                    d_near[s] = d_min_sq;
                }
            }
            let row_lo = &mut pair_g_lo[t * num_tiles..(t + 1) * num_tiles];
            pow_alpha_batch(alpha, &d_far, &mut powed);
            for (slot, &pw) in row_lo.iter_mut().zip(&powed) {
                *slot = p / pw;
            }
            let row_hi = &mut pair_g_hi[t * num_tiles..(t + 1) * num_tiles];
            pow_alpha_batch(alpha, &d_near, &mut powed);
            for (slot, &pw) in row_hi.iter_mut().zip(&powed) {
                *slot = p / pw;
            }
        }
        let alive_per_tile = (0..num_tiles).map(|t| tiles.count(t) as u32).collect();
        Some(FarFieldEngine {
            tiles,
            n: positions.len(),
            power: p,
            alpha,
            first: positions[0],
            last: positions[positions.len() - 1],
            pair_g_lo,
            pair_g_hi,
            alive: vec![true; positions.len()],
            alive_per_tile,
            num_alive: positions.len(),
            soa: PointsSoA::from_points(positions),
            tx_in_tile: vec![Vec::new(); num_tiles],
            tx_x_in_tile: vec![Vec::new(); num_tiles],
            tx_y_in_tile: vec![Vec::new(); num_tiles],
            occupied: Vec::new(),
            scan: ScanScratch::new(),
            near_gains: Vec::new(),
            far_lo: vec![0.0; num_tiles],
            far_hi: vec![0.0; num_tiles],
            far_cap: vec![0.0; num_tiles],
            far_stamp: vec![0; num_tiles],
            stamp: 0,
            stats: FarFieldStats::default(),
        })
    }

    /// Whether this engine was built over exactly these `positions` and
    /// SINR parameters (size, power, α, and a first/last position
    /// fingerprint — the same discipline as
    /// [`GainCache::matches`](crate::GainCache::matches)).
    #[must_use]
    pub fn matches(&self, positions: &[Point], params: &SinrParams) -> bool {
        self.n == positions.len()
            && self.power == params.power()
            && self.alpha == params.alpha()
            && positions.first() == Some(&self.first)
            && positions.last() == Some(&self.last)
    }

    /// Marks node `w` dead, decrementing its tile's live count. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn deactivate(&mut self, w: NodeId) {
        assert!(
            w < self.n,
            "node {w} out of range for engine of size {}",
            self.n
        );
        if std::mem::replace(&mut self.alive[w], false) {
            self.alive_per_tile[self.tiles.tile_of(w)] -= 1;
            self.num_alive -= 1;
        }
    }

    /// Marks node `w` live again (churn revival). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn activate(&mut self, w: NodeId) {
        assert!(
            w < self.n,
            "node {w} out of range for engine of size {}",
            self.n
        );
        if !std::mem::replace(&mut self.alive[w], true) {
            self.alive_per_tile[self.tiles.tile_of(w)] += 1;
            self.num_alive += 1;
        }
    }

    /// Whether node `w` is currently marked live.
    #[must_use]
    pub fn is_active(&self, w: NodeId) -> bool {
        self.alive[w]
    }

    /// Number of live nodes.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.num_alive
    }

    /// Number of live nodes in tile `t`.
    #[must_use]
    pub fn active_in_tile(&self, t: usize) -> usize {
        self.alive_per_tile[t] as usize
    }

    /// The underlying tile index.
    #[must_use]
    pub fn tiles(&self) -> &TileIndex {
        &self.tiles
    }

    /// The `(lower, upper)` gain bounds cached for tile pair `(t, s)`, or
    /// `None` when either tile has no members. Exposed for the bounds
    /// proptests.
    #[must_use]
    pub fn pair_gain_bounds(&self, t: usize, s: usize) -> Option<(f64, f64)> {
        (self.tiles.count(t) > 0 && self.tiles.count(s) > 0).then(|| {
            let i = t * self.tiles.num_tiles() + s;
            (self.pair_g_lo[i], self.pair_g_hi[i])
        })
    }

    /// Decision counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FarFieldStats {
        self.stats
    }

    /// Resets the decision counters.
    pub fn reset_stats(&mut self) {
        self.stats = FarFieldStats::default();
    }

    /// Overwrites the decision counters (checkpoint restore: a rebuilt
    /// engine resumes the counter totals the snapshotted engine had
    /// accumulated, so `EngineCounters` reconciliation survives a resume).
    pub fn set_stats(&mut self, stats: FarFieldStats) {
        self.stats = stats;
    }

    /// Resolves one round with the tile-aggregated fast path; reception
    /// semantics (and bits) are exactly those of
    /// [`SinrChannel::resolve`](crate::SinrChannel). `perturbation` must be
    /// `None` for a neutral perturbation, mirroring the dispatch in
    /// `SinrChannel::resolve_core`.
    pub(crate) fn resolve_sinr(
        &mut self,
        params: &SinrParams,
        positions: &[Point],
        transmitters: &[NodeId],
        listeners: &[NodeId],
        perturbation: Option<&ChannelPerturbation<'_>>,
    ) -> Vec<Reception> {
        debug_assert!(self.matches(positions, params));
        let p = self.power;
        let alpha = self.alpha;
        let beta = params.beta();
        let noise = match perturbation {
            Some(pt) => params.noise() * pt.noise_scale(),
            None => params.noise(),
        };
        self.stats.rounds += 1;

        if transmitters.is_empty() {
            // The canonical loop yields Silence for every listener when
            // nobody transmits (best_tx stays None).
            self.stats.empty_round_silences += listeners.len() as u64;
            return vec![Reception::Silence; listeners.len()];
        }

        // Bucket this round's transmitters by tile, remembering each
        // transmitter's slice index so the near scan can reproduce the
        // canonical first-strict-max tie-break — and each transmitter's
        // coordinates in bucket order, so near scans run as contiguous
        // gain batches.
        for &t in &self.occupied {
            self.tx_in_tile[t as usize].clear();
            self.tx_x_in_tile[t as usize].clear();
            self.tx_y_in_tile[t as usize].clear();
        }
        self.occupied.clear();
        for (idx, &u) in transmitters.iter().enumerate() {
            let t = self.tiles.tile_of(u);
            if self.tx_in_tile[t].is_empty() {
                self.occupied.push(t as u32);
            }
            self.tx_in_tile[t].push((u as u32, idx as u32));
            self.tx_x_in_tile[t].push(self.soa.xs()[u]);
            self.tx_y_in_tile[t].push(self.soa.ys()[u]);
        }
        self.stamp += 1;
        // Round-level gather for the batched exact fallback (shared with
        // the canonical resolve's uncached path), plus the near-scan gain
        // buffer — both moved out of `self` so the listener loop can
        // borrow tiles and buckets immutably alongside them.
        let mut scan = std::mem::take(&mut self.scan);
        self.soa.gather(transmitters, &mut scan.xs, &mut scan.ys);
        let mut near_gains = std::mem::take(&mut self.near_gains);

        let num_tiles = self.tiles.num_tiles();
        let mut out = Vec::with_capacity(listeners.len());
        for &v in listeners {
            let vp = positions[v];
            let lt = self.tiles.tile_of(v);

            // Far aggregates for this listener tile, computed once per
            // round per tile (all listeners of a tile share them).
            if self.far_stamp[lt] != self.stamp {
                let (mut lo, mut hi, mut cap) = (0.0f64, 0.0f64, 0.0f64);
                for &s in &self.occupied {
                    let s = s as usize;
                    if self.tiles.chebyshev(lt, s) <= NEAR_RING {
                        continue;
                    }
                    let mass = self.tx_in_tile[s].len() as f64;
                    lo += mass * self.pair_g_lo[lt * num_tiles + s];
                    let g_hi = self.pair_g_hi[lt * num_tiles + s];
                    hi += mass * g_hi;
                    cap = cap.max(g_hi);
                }
                self.far_lo[lt] = lo;
                self.far_hi[lt] = hi;
                self.far_cap[lt] = cap;
                self.far_stamp[lt] = self.stamp;
            }
            let far_lo = self.far_lo[lt];
            let far_hi = self.far_hi[lt];
            // Widened cap on any single far signal (covers bound rounding
            // and powf non-monotonicity; see FARFIELD_REL_SLACK).
            let far_cap = self.far_cap[lt] * (1.0 + FARFIELD_REL_SLACK);

            // Exact near-field scan: one fused gain batch per near tile
            // (canonical per-pair expression, bucket order), folded in
            // bucket order with winner = minimal slice index among the
            // strict maxima — exactly the canonical fold's
            // first-strict-max.
            let mut near_sum = 0.0f64;
            let mut best_sig = 0.0f64;
            let mut best_tx: Option<NodeId> = None;
            let mut best_idx = u32::MAX;
            for near_t in self.tiles.neighborhood(lt, NEAR_RING) {
                let bucket = &self.tx_in_tile[near_t];
                if bucket.is_empty() {
                    continue;
                }
                near_gains.resize(bucket.len(), 0.0);
                gain_batch(
                    p,
                    alpha,
                    &self.tx_x_in_tile[near_t],
                    &self.tx_y_in_tile[near_t],
                    vp.x,
                    vp.y,
                    &mut near_gains,
                );
                for (&sig, &(u, idx)) in near_gains.iter().zip(bucket) {
                    let u = u as usize;
                    debug_assert_ne!(u, v, "a node cannot transmit and listen simultaneously");
                    near_sum += sig;
                    if sig > best_sig {
                        best_sig = sig;
                        best_tx = Some(u);
                        best_idx = idx;
                    } else if sig == best_sig && sig > 0.0 && idx < best_idx {
                        best_tx = Some(u);
                        best_idx = idx;
                    }
                }
            }

            let extra = perturbation.map(|pt| pt.extra_at(v));
            let reception = decide_ladder(
                &mut self.stats,
                DecisionInputs {
                    near_sum,
                    best_sig,
                    best_tx,
                    far_lo,
                    far_hi,
                    far_cap,
                    noise,
                    extra,
                    beta,
                },
                || {
                    // Exact fallback: the canonical batched scan over
                    // *all* transmitters — bit-identical to SinrChannel by
                    // sharing its kernels and fold.
                    let ScanOutcome {
                        total,
                        best_sig,
                        best_tx,
                    } = scan_transmitters_batched(p, alpha, v, vp, transmitters, &mut scan);
                    let denom = match extra {
                        Some(e) => noise + e + (total - best_sig),
                        None => noise + (total - best_sig),
                    };
                    match best_tx {
                        Some(u) if best_sig >= beta * denom => Reception::Message { from: u },
                        _ => Reception::Silence,
                    }
                },
            );
            out.push(reception);
        }
        self.scan = scan;
        self.near_gains = near_gains;
        out
    }
}

/// Everything [`decide_ladder`] needs about one listener, bundled to keep
/// the ladder's signature readable.
pub(crate) struct DecisionInputs {
    pub(crate) near_sum: f64,
    pub(crate) best_sig: f64,
    pub(crate) best_tx: Option<NodeId>,
    pub(crate) far_lo: f64,
    pub(crate) far_hi: f64,
    pub(crate) far_cap: f64,
    pub(crate) noise: f64,
    pub(crate) extra: Option<f64>,
    pub(crate) beta: f64,
}

/// The decision ladder (module docs, "decision-exactness contract"),
/// shared by the flat [`FarFieldEngine`] and the hierarchical engine — the
/// correctness argument only depends on the *bracket* inputs, not on how
/// they were aggregated. `fallback` runs the canonical exact scan when no
/// rung is conclusive; `stats` receives exactly one rung increment.
pub(crate) fn decide_ladder(
    stats: &mut FarFieldStats,
    inp: DecisionInputs,
    fallback: impl FnOnce() -> Reception,
) -> Reception {
    let DecisionInputs {
        near_sum,
        best_sig,
        best_tx,
        far_lo,
        far_hi,
        far_cap,
        noise,
        extra,
        beta,
    } = inp;
    // Rung 1: any non-finite intermediate (overflow, coincident nodes,
    // touching tile boxes) voids the bracket reasoning entirely.
    if !(near_sum.is_finite() && far_hi.is_finite() && far_cap.is_finite()) {
        stats.nonfinite_fallbacks += 1;
        return fallback();
    }
    let base = match extra {
        Some(e) => noise + e,
        None => noise,
    };
    // Rung 2: certain silence — the exact denominator is ≥ base, and
    // the exact best signal is ≤ max(near best, far cap).
    if best_sig.max(far_cap) < beta * base {
        stats.noise_floor_silences += 1;
        return Reception::Silence;
    }
    // Rung 3: no near candidate, yet rung 2 could not rule out a far
    // decode — only the exact scan can name the winner.
    let Some(from) = best_tx else {
        stats.no_near_winner_fallbacks += 1;
        return fallback();
    };
    // Rung 4: the near best must strictly dominate every possible far
    // signal, or the canonical winner might be a far transmitter.
    if far_cap >= best_sig {
        stats.far_rival_fallbacks += 1;
        return fallback();
    }
    // Rung 5: bracket the canonical interference and require the
    // decision to be invariant across it.
    let interference_near = near_sum - best_sig;
    let slack = FARFIELD_REL_SLACK * (near_sum + far_hi + best_sig);
    let i_lo = ((interference_near + far_lo) - slack).max(0.0);
    let i_hi = (interference_near + far_hi) + slack;
    let (denom_lo, denom_hi) = match extra {
        Some(e) => (noise + e + i_lo, noise + e + i_hi),
        None => (noise + i_lo, noise + i_hi),
    };
    let msg_lo = best_sig >= beta * denom_lo;
    let msg_hi = best_sig >= beta * denom_hi;
    if msg_lo == msg_hi {
        stats.bracket_decisions += 1;
        if msg_hi {
            Reception::Message { from }
        } else {
            Reception::Silence
        }
    } else {
        stats.bracket_straddle_fallbacks += 1;
        fallback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Channel, SinrChannel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn params() -> SinrParams {
        SinrParams::builder()
            .power(16.0)
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap()
    }

    fn lattice(n_side: usize, spacing: f64) -> Vec<Point> {
        (0..n_side * n_side)
            .map(|i| Point::new((i % n_side) as f64 * spacing, (i / n_side) as f64 * spacing))
            .collect()
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let p = params();
        assert!(FarFieldEngine::build(&[], &p).is_none());
        let nan = vec![Point::new(f64::NAN, 0.0), Point::ORIGIN];
        assert!(FarFieldEngine::build(&nan, &p).is_none());
    }

    #[test]
    fn matches_is_a_fingerprint() {
        let p = params();
        let pos = lattice(8, 1.0);
        let engine = FarFieldEngine::build(&pos, &p).unwrap();
        assert!(engine.matches(&pos, &p));
        let mut moved = pos.clone();
        moved[0] = Point::new(-7.0, -7.0);
        assert!(!engine.matches(&moved, &p));
        assert!(!engine.matches(&pos[..63], &p));
        let other = SinrParams::builder().power(32.0).build().unwrap();
        assert!(!engine.matches(&pos, &other));
    }

    #[test]
    fn occupancy_tracks_knockout_and_revival() {
        let p = params();
        let pos = lattice(8, 1.0);
        let mut engine = FarFieldEngine::build_with_tiling(&pos, &p, 4).unwrap();
        let t = engine.tiles().tile_of(0);
        let before = engine.active_in_tile(t);
        assert_eq!(engine.num_active(), 64);
        engine.deactivate(0);
        engine.deactivate(0); // idempotent
        assert!(!engine.is_active(0));
        assert_eq!(engine.active_in_tile(t), before - 1);
        assert_eq!(engine.num_active(), 63);
        engine.activate(0);
        engine.activate(0); // idempotent
        assert_eq!(engine.active_in_tile(t), before);
        assert_eq!(engine.num_active(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn deactivate_out_of_range_panics() {
        let p = params();
        let pos = lattice(2, 1.0);
        let mut engine = FarFieldEngine::build(&pos, &p).unwrap();
        engine.deactivate(4);
    }

    #[test]
    fn resolve_matches_exact_on_a_lattice() {
        let p = params();
        let ch = SinrChannel::new(p);
        let pos = lattice(16, 1.5);
        let mut engine = FarFieldEngine::build_with_tiling(&pos, &p, 6).unwrap();
        let transmitters: Vec<NodeId> = (0..pos.len()).step_by(7).collect();
        let listeners: Vec<NodeId> = (0..pos.len())
            .filter(|i| !transmitters.contains(i))
            .collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let exact = ch.resolve(&pos, &transmitters, &listeners, &mut rng);
        let fast = engine.resolve_sinr(&p, &pos, &transmitters, &listeners, None);
        assert_eq!(exact, fast);
        let s = engine.stats();
        assert_eq!(s.rounds, 1);
        assert_eq!(s.listeners_resolved(), listeners.len() as u64);
        assert_eq!(
            s.fast_decisions() + s.noise_floor_silences + s.exact_fallbacks(),
            s.listeners_resolved()
        );
    }

    #[test]
    fn empty_round_is_all_silence_and_counts_fast() {
        let p = params();
        let pos = lattice(4, 1.0);
        let mut engine = FarFieldEngine::build(&pos, &p).unwrap();
        let listeners: Vec<NodeId> = (0..pos.len()).collect();
        let rx = engine.resolve_sinr(&p, &pos, &[], &listeners, None);
        assert!(rx.iter().all(|r| *r == Reception::Silence));
        assert_eq!(engine.stats().empty_round_silences, pos.len() as u64);
        assert_eq!(engine.stats().fast_decisions(), pos.len() as u64);
    }

    #[test]
    fn stats_reset() {
        let p = params();
        let pos = lattice(4, 1.0);
        let mut engine = FarFieldEngine::build(&pos, &p).unwrap();
        engine.resolve_sinr(&p, &pos, &[], &[0], None);
        assert_ne!(engine.stats(), FarFieldStats::default());
        engine.reset_stats();
        assert_eq!(engine.stats(), FarFieldStats::default());
    }
}
