//! # fading-channel
//!
//! Wireless channel models for the contention-resolution study of *Contention
//! Resolution on a Fading Channel* (Fineman, Gilbert, Kuhn, Newport —
//! PODC 2016).
//!
//! The centerpiece is [`SinrChannel`], an exact implementation of the paper's
//! signal-to-interference-and-noise model (Equation 1): listener `v` receives
//! a message from transmitter `u` among concurrent transmitters `I` iff
//!
//! ```text
//!        P / d(u,v)^α
//! ─────────────────────────────  ≥  β
//!  N + Σ_{w∈I} P / d(w,v)^α
//! ```
//!
//! with fixed transmission power `P`, path-loss exponent `α > 2`, noise
//! `N ≥ 0`, and threshold `β ≥ 1`.
//!
//! The crate also implements every comparator model the paper discusses:
//!
//! * [`RadioChannel`] — the classical radio network model: a listener
//!   receives iff *exactly one* node transmits (concurrent transmissions are
//!   lost, and transmitters learn nothing). Contention resolution here
//!   requires `Θ(log² n)` rounds.
//! * [`RadioCdChannel`] — the radio network model with receiver collision
//!   detection, where the problem drops to `Θ(log n)`.
//! * [`RayleighSinrChannel`] — a stochastic-fading extension in which every
//!   transmitter–listener gain is multiplied by an i.i.d. exponential
//!   (Rayleigh power) coefficient each round.
//! * [`LossySinrChannel`] — SINR plus i.i.d. per-reception message drops,
//!   for robustness / failure-injection experiments.
//!
//! All channels implement the sealed [`Channel`] trait and can be driven by
//! the `fading-sim` simulator.
//!
//! For static deployments, [`GainCache`] precomputes the `n × n` pairwise
//! gain matrix once and [`Channel::resolve_cached`] resolves rounds against
//! it with results bit-identical to [`Channel::resolve`]; see the
//! [`gain_cache`](GainCache) module docs for the exactness contract and
//! the size guard. Beyond the cache, two far-field engines prune the
//! per-round work under the same bit-exactness contract:
//! [`FarFieldEngine`] (flat tile-pair tables) and
//! [`HierarchicalFarFieldEngine`] (a [`fading_geom::TileTree`] traversal
//! with no quadratic precompute, parallelizable via [`ChunkExecutor`]).
//!
//! All tiers bottom out in the batched per-α SINR kernels of the
//! [`kernels`] module — structure-of-arrays distance/gain batches,
//! monomorphized per exponent class, bit-identical to the scalar
//! [`pow_alpha`] path (see DESIGN.md §15 for the summation-order
//! contract).
//!
//! # Example
//!
//! ```
//! use fading_channel::{Channel, Reception, SinrChannel, SinrParams};
//! use fading_geom::Point;
//! use rand::SeedableRng;
//!
//! let params = SinrParams::builder().alpha(3.0).beta(2.0).noise(1.0).power(1e9).build()?;
//! let channel = SinrChannel::new(params);
//! let positions = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(500.0, 0.0)];
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//!
//! // Node 0 transmits; nodes 1 and 2 listen. The far-away listener 2 still
//! // decodes because nothing interferes.
//! let rx = channel.resolve(&positions, &[0], &[1, 2], &mut rng);
//! assert_eq!(rx, vec![Reception::Message { from: 0 }, Reception::Message { from: 0 }]);
//! # Ok::<(), fading_channel::ChannelError>(())
//! ```

#![deny(unsafe_code)] // narrowly allowed inside `kernels` only: the
// `#[target_feature(enable = "avx2")]` instantiations of the batch
// kernels need `unsafe` at their runtime-dispatched call sites (the
// detection guard is the safety argument; the wide path computes
// bit-identical results). Everything else in the crate is unsafe-free.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod breakdown;
mod channel;
mod error;
mod exec;
mod farfield;
mod hierarchical;
mod gain_cache;
pub mod kernels;
mod lossy;
mod params;
mod perturbation;
mod radio;
mod rayleigh;
mod reception;
mod sinr;

pub use breakdown::SinrBreakdown;
pub use channel::Channel;
pub use error::ChannelError;
pub use exec::{ChunkExecutor, SerialExecutor};
pub use farfield::{
    FarFieldEngine, FarFieldStats, DEFAULT_TARGET_TILE_OCCUPANCY, FARFIELD_REL_SLACK,
    MAX_TILES_PER_SIDE, NEAR_RING,
};
pub use hierarchical::{
    HierarchicalFarFieldEngine, HIER_ACCEPT_RATIO_SQ, HIER_CHUNK, HIER_MAX_TILES_PER_SIDE,
    HIER_TARGET_TILE_OCCUPANCY,
};
pub use gain_cache::{ActiveInterference, GainCache, DEFAULT_MAX_CACHED_NODES};
pub use lossy::LossySinrChannel;
pub use params::{SinrParams, SinrParamsBuilder, DEFAULT_SINGLE_HOP_MARGIN};
pub use perturbation::ChannelPerturbation;
pub use radio::{RadioCdChannel, RadioChannel};
pub use rayleigh::{RayleighSinrChannel, RAYLEIGH_CACHE_PROFITABLE_NODES};
pub use reception::Reception;
pub use sinr::{pow_alpha, SinrChannel};

/// Node identifier: an index into a deployment's position array.
pub type NodeId = usize;
