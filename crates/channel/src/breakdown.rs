//! Per-listener SINR diagnostics emitted by instrumented resolve paths.
//!
//! A [`SinrBreakdown`] records the terms of Equation 1 — the strongest
//! received signal, the residual interference sum, the (scaled) ambient
//! noise, any jammer contribution — plus the resulting decode margin, for
//! one listener in one round. Instrumentation is an *observer*: the
//! decision it reports is computed from the exact same float expressions as
//! the uninstrumented resolve paths, so attaching it can never change a
//! run (see [`Channel::resolve_instrumented`](crate::Channel::resolve_instrumented)).

use crate::NodeId;

/// The SINR decision at one listener, decomposed into Equation 1's terms.
///
/// Produced by [`Channel::resolve_instrumented`] for SINR-family channels
/// (geometry-free radio models report no breakdowns — they have no SINR).
///
/// Invariants, for breakdowns produced by this crate's channels:
///
/// * `denominator() == noise + extra + interference` is the exact value the
///   decode test divided by (with `noise` already multiplied by any
///   perturbation's noise scale).
/// * `decoded` is true iff `signal >= beta * denominator()`, i.e. iff
///   `margin >= 0.0`, **before** any post-SINR loss layer (the
///   [`LossySinrChannel`](crate::LossySinrChannel) drop pass and the
///   simulator's Gilbert–Elliott loss run *after* the SINR test and may
///   still turn a decoded message into silence).
///
/// [`Channel::resolve_instrumented`]: crate::Channel::resolve_instrumented
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrBreakdown {
    /// The listener this breakdown describes.
    pub listener: NodeId,
    /// The strongest transmitter at this listener, if any transmitted.
    pub best_tx: Option<NodeId>,
    /// Received power of the strongest transmitter (the SINR numerator);
    /// 0.0 when nobody transmitted.
    pub signal: f64,
    /// Interference from all *other* transmitters (`total - signal`).
    pub interference: f64,
    /// Ambient noise as used in the decode test (already scaled by the
    /// round's perturbation, if any).
    pub noise: f64,
    /// Extra jammer interference landed on this listener this round.
    pub extra: f64,
    /// `signal - beta * denominator()`: non-negative iff the listener
    /// decoded. The slack (or deficit) of Equation 1 in power units.
    pub margin: f64,
    /// Whether the SINR test passed (pre-loss-layer; see type docs).
    pub decoded: bool,
}

impl SinrBreakdown {
    /// The full SINR denominator: `noise + extra + interference`.
    #[must_use]
    pub fn denominator(&self) -> f64 {
        self.noise + self.extra + self.interference
    }

    /// The realized SINR value `signal / denominator()`
    /// (`f64::INFINITY` when the denominator is zero and signal positive,
    /// `0.0` when nobody transmitted).
    #[must_use]
    pub fn sinr(&self) -> f64 {
        let d = self.denominator();
        if d == 0.0 {
            if self.signal > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.signal / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SinrBreakdown {
        SinrBreakdown {
            listener: 3,
            best_tx: Some(1),
            signal: 16.0,
            interference: 2.0,
            noise: 1.0,
            extra: 1.0,
            margin: 16.0 - 2.0 * 4.0,
            decoded: true,
        }
    }

    #[test]
    fn denominator_sums_terms() {
        assert_eq!(sample().denominator(), 4.0);
    }

    #[test]
    fn sinr_is_signal_over_denominator() {
        assert_eq!(sample().sinr(), 4.0);
    }

    #[test]
    fn sinr_handles_zero_denominator() {
        let mut b = sample();
        b.noise = 0.0;
        b.extra = 0.0;
        b.interference = 0.0;
        assert_eq!(b.sinr(), f64::INFINITY);
        b.signal = 0.0;
        assert_eq!(b.sinr(), 0.0);
    }
}
