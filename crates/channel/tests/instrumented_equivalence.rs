//! Instrumented/uninstrumented equivalence oracle.
//!
//! The contract under test ([`Channel::resolve_instrumented`]) is that
//! instrumentation is a pure observer: for every channel, perturbation,
//! and cache setting, the instrumented path returns a `Reception` vector
//! **bit-identical** to [`Channel::resolve_perturbed`] on the same inputs
//! while consuming the rng identically, and the reported
//! [`SinrBreakdown`]s are internally consistent with the decisions
//! (`decoded ⇔ margin ≥ 0 ⇔ Reception::Message`).

use fading_channel::{
    Channel, ChannelPerturbation, LossySinrChannel, RadioCdChannel, RadioChannel,
    RayleighSinrChannel, Reception, SinrBreakdown, SinrChannel, SinrParams,
};
use fading_geom::Point;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Distinct points on a jittered lattice (guaranteed non-coincident).
fn arb_positions(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..0.4f64, 0.0..0.4f64), min..=max).prop_map(|jitters| {
        let side = (jitters.len() as f64).sqrt().ceil() as usize;
        jitters
            .iter()
            .enumerate()
            .map(|(i, &(jx, jy))| Point::new((i % side) as f64 + jx, (i / side) as f64 + jy))
            .collect()
    })
}

/// Splits node ids into disjoint (transmitters, listeners) from per-node
/// role draws: 0 ⇒ transmit, 1–2 ⇒ listen, 3 ⇒ idle.
fn partition(roles: &[u8], n: usize) -> (Vec<usize>, Vec<usize>) {
    let mut tx = Vec::new();
    let mut ls = Vec::new();
    for i in 0..n {
        match roles.get(i).copied().unwrap_or(1) % 4 {
            0 => tx.push(i),
            1 | 2 => ls.push(i),
            _ => {}
        }
    }
    (tx, ls)
}

fn params() -> SinrParams {
    SinrParams::builder()
        .power(16.0)
        .alpha(3.0)
        .beta(2.0)
        .noise(1.0)
        .build()
        .unwrap()
}

/// Asserts the instrumented path matches `resolve_perturbed` bit for bit
/// (receptions and final rng state) under both cache settings, and sanity
/// checks the breakdowns when the channel reports them.
fn assert_instrumented_equiv<C: Channel>(
    ch: &C,
    positions: &[Point],
    tx: &[usize],
    ls: &[usize],
    perturbation: &ChannelPerturbation<'_>,
    seed: u64,
    expect_breakdowns: bool,
) {
    let cache = ch.build_gain_cache(positions);
    for use_cache in [false, true] {
        let cache = if use_cache { cache.as_ref() } else { None };
        let mut rng_plain = SmallRng::seed_from_u64(seed);
        let mut rng_inst = SmallRng::seed_from_u64(seed);
        let plain = ch.resolve_perturbed(positions, tx, ls, cache, perturbation, &mut rng_plain);
        let mut breakdown: Vec<SinrBreakdown> = vec![SinrBreakdown {
            listener: usize::MAX,
            best_tx: None,
            signal: -1.0,
            interference: -1.0,
            noise: -1.0,
            extra: -1.0,
            margin: -1.0,
            decoded: false,
        }];
        let inst = ch.resolve_instrumented(
            positions,
            tx,
            ls,
            cache,
            perturbation,
            &mut rng_inst,
            &mut breakdown,
        );
        assert_eq!(
            plain,
            inst,
            "instrumented receptions diverged ({}, cache={use_cache}, seed={seed})",
            ch.name()
        );
        assert_eq!(
            rng_plain.gen::<u64>(),
            rng_inst.gen::<u64>(),
            "rng streams diverged ({}, cache={use_cache})",
            ch.name()
        );
        if expect_breakdowns {
            assert_eq!(breakdown.len(), ls.len(), "one breakdown per listener");
            for (k, b) in breakdown.iter().enumerate() {
                assert_eq!(b.listener, ls[k], "breakdowns follow listener order");
                assert_eq!(
                    b.decoded,
                    b.margin >= 0.0,
                    "decoded flag must mirror the margin sign ({b:?})"
                );
                assert!(
                    b.signal >= 0.0 && b.interference >= 0.0 && b.extra >= 0.0,
                    "power terms must be non-negative ({b:?})"
                );
                // A decoded breakdown must coincide with a Message from its
                // best transmitter — except on the lossy channel, whose
                // post-SINR drop pass may erase it.
                if b.decoded && ch.name() != "lossy-sinr" {
                    assert_eq!(inst[k], Reception::Message { from: b.best_tx.unwrap() });
                }
                if !b.decoded {
                    assert_eq!(inst[k], Reception::Silence);
                }
            }
        } else {
            assert!(
                breakdown.is_empty(),
                "geometry-free channels must clear and not fill breakdowns"
            );
        }
    }
}

use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sinr_instrumented_is_pure_observer(
        positions in arb_positions(4, 24),
        roles in prop::collection::vec(0u8..4, 24),
        noise_scale in prop_oneof![Just(1.0f64), 1.0..8.0f64],
        jam_flag in 0u8..2,
        seed in 0u64..1_000,
    ) {
        let (tx, ls) = partition(&roles, positions.len());
        let jam_vec: Vec<f64> = if jam_flag == 1 {
            (0..positions.len()).map(|i| if i % 3 == 0 { 2.5 } else { 0.0 }).collect()
        } else {
            Vec::new()
        };
        let perturbation = ChannelPerturbation::new(noise_scale, &jam_vec);
        assert_instrumented_equiv(
            &SinrChannel::new(params()), &positions, &tx, &ls, &perturbation, seed, true,
        );
    }

    #[test]
    fn rayleigh_instrumented_is_pure_observer(
        positions in arb_positions(4, 20),
        roles in prop::collection::vec(0u8..4, 20),
        noise_scale in prop_oneof![Just(1.0f64), 1.0..8.0f64],
        seed in 0u64..1_000,
    ) {
        let (tx, ls) = partition(&roles, positions.len());
        let perturbation = ChannelPerturbation::new(noise_scale, &[]);
        assert_instrumented_equiv(
            &RayleighSinrChannel::new(params()), &positions, &tx, &ls, &perturbation, seed, true,
        );
    }

    #[test]
    fn lossy_instrumented_is_pure_observer(
        positions in arb_positions(4, 20),
        roles in prop::collection::vec(0u8..4, 20),
        seed in 0u64..1_000,
    ) {
        let (tx, ls) = partition(&roles, positions.len());
        let perturbation = ChannelPerturbation::neutral();
        assert_instrumented_equiv(
            &LossySinrChannel::new(params(), 0.4).unwrap(),
            &positions, &tx, &ls, &perturbation, seed, true,
        );
    }

    #[test]
    fn radio_instrumented_reports_no_breakdowns(
        positions in arb_positions(4, 16),
        roles in prop::collection::vec(0u8..4, 16),
        seed in 0u64..1_000,
    ) {
        let (tx, ls) = partition(&roles, positions.len());
        let perturbation = ChannelPerturbation::neutral();
        assert_instrumented_equiv(
            &RadioChannel::new(), &positions, &tx, &ls, &perturbation, seed, false,
        );
        assert_instrumented_equiv(
            &RadioCdChannel::new(), &positions, &tx, &ls, &perturbation, seed, false,
        );
    }
}

#[test]
fn breakdown_terms_recompose_equation_one() {
    // Hand-checkable scenario: P=16, α=3, β=2, N=1. Listener at origin,
    // transmitters at d=1 (signal 16) and d=2 (signal 2).
    let ch = SinrChannel::new(params());
    let pos = [
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(-2.0, 0.0),
    ];
    let mut breakdown = Vec::new();
    let mut rng = SmallRng::seed_from_u64(0);
    let rx = ch.resolve_instrumented(
        &pos,
        &[1, 2],
        &[0],
        None,
        &ChannelPerturbation::neutral(),
        &mut rng,
        &mut breakdown,
    );
    assert_eq!(rx, vec![Reception::Message { from: 1 }]);
    let b = breakdown[0];
    assert_eq!(b.listener, 0);
    assert_eq!(b.best_tx, Some(1));
    assert!((b.signal - 16.0).abs() < 1e-12);
    assert!((b.interference - 2.0).abs() < 1e-12);
    assert_eq!(b.noise, 1.0);
    assert_eq!(b.extra, 0.0);
    assert!((b.denominator() - 3.0).abs() < 1e-12);
    // margin = 16 − 2·3 = 10; SINR = 16/3.
    assert!((b.margin - 10.0).abs() < 1e-12);
    assert!((b.sinr() - 16.0 / 3.0).abs() < 1e-12);
    assert!(b.decoded);
}

#[test]
fn jammed_breakdown_includes_extra_term() {
    let ch = SinrChannel::new(params());
    let pos = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let jam = [7.0, 0.0];
    let mut breakdown = Vec::new();
    let mut rng = SmallRng::seed_from_u64(0);
    let rx = ch.resolve_instrumented(
        &pos,
        &[1],
        &[0],
        None,
        &ChannelPerturbation::new(3.0, &jam),
        &mut rng,
        &mut breakdown,
    );
    let b = breakdown[0];
    // noise scaled 1×3, extra 7, interference 0 ⇒ denominator 10;
    // signal 16 ≥ 2·10 fails by margin −4.
    assert_eq!(b.noise, 3.0);
    assert_eq!(b.extra, 7.0);
    assert!((b.denominator() - 10.0).abs() < 1e-12);
    assert!((b.margin + 4.0).abs() < 1e-12);
    assert!(!b.decoded);
    assert_eq!(rx, vec![Reception::Silence]);
}
