//! Property-based tests for the channel models.
//!
//! The key physical invariants: adding interferers can only hurt reception,
//! reception implies the SINR inequality holds exactly, and at most one
//! transmitter can be decoded per listener when `β ≥ 1`.

use fading_channel::{Channel, RadioChannel, Reception, SinrChannel, SinrParams};
use fading_geom::Point;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_params() -> impl Strategy<Value = SinrParams> {
    (2.1..6.0f64, 1.0..4.0f64, 0.0..2.0f64, 1.0..1e6f64).prop_map(|(alpha, beta, noise, power)| {
        SinrParams::builder()
            .alpha(alpha)
            .beta(beta)
            .noise(noise)
            .power(power)
            .build()
            .expect("strategy stays in the valid range")
    })
}

/// Distinct points on a jittered lattice (guaranteed non-coincident).
fn arb_positions(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..0.4f64, 0.0..0.4f64), min..=max).prop_map(|jitters| {
        let side = (jitters.len() as f64).sqrt().ceil() as usize;
        jitters
            .iter()
            .enumerate()
            .map(|(i, &(jx, jy))| Point::new((i % side) as f64 + jx, (i / side) as f64 + jy))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monotonicity: if `v` decodes `u` against transmitter set `T`, it also
    /// decodes `u` against any subset of `T` that contains `u`.
    #[test]
    fn removing_interferers_never_hurts(
        params in arb_params(),
        positions in arb_positions(3, 20),
    ) {
        let ch = SinrChannel::new(params);
        let n = positions.len();
        let listener = n - 1;
        let all_tx: Vec<usize> = (0..n - 1).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let full = ch.resolve(&positions, &all_tx, &[listener], &mut rng)[0];
        if let Reception::Message { from } = full {
            // Drop each interferer in turn; reception must persist.
            for drop in all_tx.iter().copied().filter(|&w| w != from) {
                let reduced: Vec<usize> =
                    all_tx.iter().copied().filter(|&w| w != drop).collect();
                let r = ch.resolve(&positions, &reduced, &[listener], &mut rng)[0];
                prop_assert_eq!(
                    r,
                    Reception::Message { from },
                    "dropping interferer {} broke reception",
                    drop
                );
            }
        }
    }

    /// Any decoded message must satisfy the SINR inequality exactly.
    #[test]
    fn decoded_messages_satisfy_equation_one(
        params in arb_params(),
        positions in arb_positions(2, 24),
        tx_mask in prop::collection::vec(any::<bool>(), 24),
    ) {
        let ch = SinrChannel::new(params);
        let n = positions.len();
        let transmitters: Vec<usize> =
            (0..n).filter(|&i| tx_mask.get(i).copied().unwrap_or(false)).collect();
        let listeners: Vec<usize> =
            (0..n).filter(|&i| !tx_mask.get(i).copied().unwrap_or(false)).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let rx = ch.resolve(&positions, &transmitters, &listeners, &mut rng);
        for (k, &v) in listeners.iter().enumerate() {
            match rx[k] {
                Reception::Message { from } => {
                    let s = ch.sinr(&positions, from, v, &transmitters);
                    prop_assert!(
                        s >= params.beta() * (1.0 - 1e-9),
                        "decoded link {}→{} has SINR {} < β {}",
                        from, v, s, params.beta()
                    );
                }
                Reception::Silence => {
                    // No transmitter may clear the threshold.
                    for &u in &transmitters {
                        let s = ch.sinr(&positions, u, v, &transmitters);
                        prop_assert!(
                            s < params.beta() * (1.0 + 1e-9),
                            "silent listener {} would decode {} (SINR {})",
                            v, u, s
                        );
                    }
                }
                Reception::Collision => prop_assert!(false, "SINR channel emitted Collision"),
            }
        }
    }

    /// The radio channel's outcome depends only on the transmitter count.
    #[test]
    fn radio_depends_only_on_count(
        positions in arb_positions(2, 16),
        k in 0usize..16,
    ) {
        let n = positions.len();
        let k = k.min(n.saturating_sub(1));
        let ch = RadioChannel::new();
        let transmitters: Vec<usize> = (0..k).collect();
        let listeners: Vec<usize> = (k..n).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let rx = ch.resolve(&positions, &transmitters, &listeners, &mut rng);
        for r in rx {
            match k {
                1 => prop_assert_eq!(r, Reception::Message { from: 0 }),
                _ => prop_assert_eq!(r, Reception::Silence),
            }
        }
    }

    /// With β ≥ 1 at most one transmitter can be decodable at any listener
    /// (checked by scanning all transmitters, not just the strongest).
    #[test]
    fn at_most_one_decodable_sender(
        params in arb_params(),
        positions in arb_positions(3, 16),
    ) {
        let ch = SinrChannel::new(params);
        let n = positions.len();
        let listener = 0;
        let transmitters: Vec<usize> = (1..n).collect();
        let decodable = transmitters
            .iter()
            .filter(|&&u| ch.sinr(&positions, u, listener, &transmitters) >= params.beta())
            .count();
        prop_assert!(decodable <= 1, "{decodable} senders decodable at once");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The `pow_alpha` fast paths (α ∈ {2, 3, 4, 6}) agree with the
    /// generic `powf` path to 1e-9 relative error across the full dynamic
    /// range of squared distances the simulator can produce.
    #[test]
    fn pow_alpha_fast_paths_match_generic_powf(
        // Sample d² log-uniformly over (0, 1e12) so tiny and huge
        // distances are exercised equally.
        exponent in -30.0..12.0f64,
        mantissa in 1.0..10.0f64,
    ) {
        use fading_channel::pow_alpha;
        let d_sq = mantissa * 10f64.powf(exponent);
        prop_assert!(d_sq > 0.0 && d_sq < 1e13);
        for &alpha in &[2.0f64, 3.0, 4.0, 6.0] {
            let fast = pow_alpha(d_sq, alpha);
            let generic = d_sq.powf(alpha * 0.5);
            prop_assert!(
                (fast - generic).abs() <= 1e-9 * generic.abs(),
                "alpha={} d_sq={} fast={} generic={}", alpha, d_sq, fast, generic
            );
        }
    }
}
