//! Cached/uncached equivalence oracle for the gain-cache engine.
//!
//! The contract under test ([`Channel::resolve_cached`]) is *bit-exact*
//! equivalence: for every deterministic-gain channel, resolving a round
//! through a [`GainCache`] must yield a `Reception` vector **identical**
//! (`==`, not approximately equal) to the uncached path, while consuming
//! the channel rng identically. The property tests below drive arbitrary
//! deployments, transmitter/listener partitions, and parameter draws
//! through both paths for each path-loss exponent the experiments use
//! (`α ∈ {2.5, 3, 4, 6}`), 256 cases per exponent.

use fading_channel::{
    Channel, GainCache, LossySinrChannel, RadioChannel, RayleighSinrChannel, Reception,
    SinrChannel, SinrParams,
};
use fading_geom::Point;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Distinct points on a jittered lattice (guaranteed non-coincident).
fn arb_positions(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..0.4f64, 0.0..0.4f64), min..=max).prop_map(|jitters| {
        let side = (jitters.len() as f64).sqrt().ceil() as usize;
        jitters
            .iter()
            .enumerate()
            .map(|(i, &(jx, jy))| Point::new((i % side) as f64 + jx, (i / side) as f64 + jy))
            .collect()
    })
}

/// Splits node ids into disjoint (transmitters, listeners) from per-node
/// role draws: 0 ⇒ transmit, 1–2 ⇒ listen, 3 ⇒ idle.
fn partition(roles: &[u8], n: usize) -> (Vec<usize>, Vec<usize>) {
    let mut tx = Vec::new();
    let mut ls = Vec::new();
    for i in 0..n {
        match roles.get(i).copied().unwrap_or(1) % 4 {
            0 => tx.push(i),
            1 | 2 => ls.push(i),
            _ => {}
        }
    }
    (tx, ls)
}

fn params_with(alpha: f64, beta: f64, noise: f64, power: f64) -> SinrParams {
    SinrParams::builder()
        .alpha(alpha)
        .beta(beta)
        .noise(noise)
        .power(power)
        .build()
        .expect("strategy stays in the valid range")
}

/// Asserts bit-exact cached/uncached equivalence (receptions *and* final
/// rng state) for one channel on one scenario.
fn assert_channel_equiv<C: Channel>(
    ch: &C,
    positions: &[Point],
    tx: &[usize],
    ls: &[usize],
    cache: Option<&GainCache>,
    seed: u64,
) {
    let mut rng_uncached = SmallRng::seed_from_u64(seed);
    let mut rng_cached = SmallRng::seed_from_u64(seed);
    let uncached = ch.resolve(positions, tx, ls, &mut rng_uncached);
    let cached = ch.resolve_cached(positions, tx, ls, cache, &mut rng_cached);
    assert_eq!(
        uncached,
        cached,
        "cached receptions diverged ({}, n={}, tx={}, ls={}, seed={seed})",
        ch.name(),
        positions.len(),
        tx.len(),
        ls.len()
    );
    assert_eq!(
        rng_uncached,
        rng_cached,
        "cached path consumed the rng differently ({}, seed={seed})",
        ch.name()
    );
}

/// The full per-case oracle: checks SINR, Rayleigh, and lossy SINR over
/// the same deployment, with caches built through the trait method.
#[allow(clippy::too_many_arguments)] // mirrors the proptest argument list
fn check_all_channels(
    alpha: f64,
    positions: &[Point],
    roles: &[u8],
    beta: f64,
    noise: f64,
    power: f64,
    drop_prob: f64,
    seed: u64,
) {
    let (tx, ls) = partition(roles, positions.len());
    let params = params_with(alpha, beta, noise, power);

    let sinr = SinrChannel::new(params);
    let cache = sinr
        .build_gain_cache(positions)
        .expect("deployments under test are within the size guard");
    assert_channel_equiv(&sinr, positions, &tx, &ls, Some(&cache), seed);

    let rayleigh = RayleighSinrChannel::new(params);
    let rcache = rayleigh.build_gain_cache(positions).expect("within guard");
    assert_channel_equiv(&rayleigh, positions, &tx, &ls, Some(&rcache), seed);

    let lossy = LossySinrChannel::new(params, drop_prob).expect("drop_prob in [0, 1)");
    let lcache = lossy.build_gain_cache(positions).expect("within guard");
    assert_channel_equiv(&lossy, positions, &tx, &ls, Some(&lcache), seed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Equivalence oracle at the generic-powf exponent α = 2.5.
    #[test]
    fn cached_equals_uncached_alpha_2_5(
        positions in arb_positions(2, 40),
        roles in prop::collection::vec(0u8..4, 40),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        seed in any::<u64>(),
    ) {
        check_all_channels(2.5, &positions, &roles, beta, noise, power, drop_prob, seed);
    }

    /// Equivalence oracle at the fast-path exponent α = 3.
    #[test]
    fn cached_equals_uncached_alpha_3(
        positions in arb_positions(2, 40),
        roles in prop::collection::vec(0u8..4, 40),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        seed in any::<u64>(),
    ) {
        check_all_channels(3.0, &positions, &roles, beta, noise, power, drop_prob, seed);
    }

    /// Equivalence oracle at the fast-path exponent α = 4.
    #[test]
    fn cached_equals_uncached_alpha_4(
        positions in arb_positions(2, 40),
        roles in prop::collection::vec(0u8..4, 40),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        seed in any::<u64>(),
    ) {
        check_all_channels(4.0, &positions, &roles, beta, noise, power, drop_prob, seed);
    }

    /// Equivalence oracle at the fast-path exponent α = 6.
    #[test]
    fn cached_equals_uncached_alpha_6(
        positions in arb_positions(2, 40),
        roles in prop::collection::vec(0u8..4, 40),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        seed in any::<u64>(),
    ) {
        check_all_channels(6.0, &positions, &roles, beta, noise, power, drop_prob, seed);
    }

    /// A cache built for *different* positions or parameters must be
    /// rejected, falling back to the uncached (still correct) path.
    #[test]
    fn mismatched_cache_falls_back_to_uncached(
        positions in arb_positions(3, 20),
        roles in prop::collection::vec(0u8..4, 20),
        seed in any::<u64>(),
    ) {
        let (tx, ls) = partition(&roles, positions.len());
        let params = params_with(3.0, 2.0, 1.0, 1e4);
        let ch = SinrChannel::new(params);

        // Wrong node count: cache over a prefix of the deployment.
        let stale = GainCache::build(&positions[..positions.len() - 1], &params)
            .expect("within guard");
        assert_channel_equiv(&ch, &positions, &tx, &ls, Some(&stale), seed);

        // Wrong parameters: cache built under a different power.
        let other = params_with(3.0, 2.0, 1.0, 2e4);
        let wrong = GainCache::build(&positions, &other).expect("within guard");
        assert_channel_equiv(&ch, &positions, &tx, &ls, Some(&wrong), seed);

        // No cache at all.
        assert_channel_equiv(&ch, &positions, &tx, &ls, None, seed);
    }

    /// The incremental active-interference totals stay within 1e-9
    /// relative error of an exact re-sum through an arbitrary knockout
    /// sequence.
    #[test]
    fn active_interference_matches_exact_resum(
        positions in arb_positions(4, 32),
        knockouts in prop::collection::vec(any::<u32>(), 0..32),
    ) {
        use fading_channel::ActiveInterference;
        let params = params_with(3.0, 2.0, 1.0, 1e4);
        let cache = GainCache::build(&positions, &params).expect("within guard");
        let mut ai = ActiveInterference::new(&cache);
        // Error scale: the all-active total is the largest magnitude the
        // running sum ever holds, so drift is relative to it (the exact
        // value itself can cancel to 0 once neighbors knock out).
        let scales: Vec<f64> = (0..positions.len())
            .map(|v| ai.total_at(v).max(1.0))
            .collect();
        for &k in &knockouts {
            ai.deactivate(&cache, k as usize % positions.len());
            for (v, &scale) in scales.iter().enumerate() {
                let exact = ai.recompute_at(&cache, v);
                let incr = ai.total_at(v);
                prop_assert!(
                    (incr - exact).abs() <= 1e-9 * scale,
                    "v={} incremental={} exact={}", v, incr, exact
                );
            }
        }
    }
}

#[test]
fn gain_cache_is_symmetric_with_zero_diagonal() {
    let positions = [
        Point::new(0.0, 0.0),
        Point::new(1.3, -0.7),
        Point::new(-2.1, 4.0),
        Point::new(5.5, 5.5),
    ];
    let params = params_with(3.0, 2.0, 1.0, 1e4);
    let cache = GainCache::build(&positions, &params).unwrap();
    for v in 0..positions.len() {
        assert_eq!(cache.gain(v, v), 0.0);
        for u in 0..positions.len() {
            // d(u,v) = d(v,u) exactly (coordinate subtraction only flips
            // sign, squaring erases it), so the gains are bit-equal.
            assert_eq!(cache.gain(u, v), cache.gain(v, u));
        }
    }
}

#[test]
fn size_guard_bypasses_cache_but_resolve_cached_still_works() {
    let positions: Vec<Point> = (0..12).map(|i| Point::new(i as f64, 0.0)).collect();
    let params = params_with(3.0, 2.0, 1.0, 1e4);
    assert!(GainCache::build_with_limit(&positions, &params, 11).is_none());

    // The trait-level builder applies the default guard; at n = 12 the
    // cache exists, and an oversized deployment would just yield None —
    // which resolve_cached treats as "fall back", exercised here via the
    // explicit None.
    let ch = SinrChannel::new(params);
    assert!(ch.build_gain_cache(&positions).is_some());
    let tx = [0usize, 5];
    let ls = [1usize, 2, 3];
    assert_channel_equiv(&ch, &positions, &tx, &ls, None, 99);
}

#[test]
fn radio_channels_have_no_cache_and_ignore_one() {
    let positions = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
    let radio = RadioChannel::new();
    assert!(radio.build_gain_cache(&positions).is_none());

    // Handing the geometry-free model someone else's cache must not
    // change its semantics (the default trait impl ignores it).
    let params = params_with(3.0, 2.0, 1.0, 1e4);
    let foreign = GainCache::build(&positions, &params).unwrap();
    let rx = radio.resolve_cached(
        &positions,
        &[0],
        &[1, 2],
        Some(&foreign),
        &mut SmallRng::seed_from_u64(3),
    );
    assert_eq!(
        rx,
        vec![Reception::Message { from: 0 }, Reception::Message { from: 0 }]
    );
}
