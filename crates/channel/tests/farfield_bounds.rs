//! Soundness of the far-field interference bounds, plus adversarial
//! deployments engineered to force the exact-fallback rung of the decision
//! ladder.
//!
//! The equivalence oracle (`farfield_equivalence.rs`) proves the *end*
//! result is bit-exact; these tests prove the *means*: every cached tile
//! pair's gain interval genuinely brackets the exact per-pair gains (the
//! invariant the decision ladder's correctness argument rests on), and
//! when the bracket cannot separate Message from Silence the engine really
//! does fall back rather than guess.

use fading_channel::{
    pow_alpha, Channel, ChannelPerturbation, FarFieldEngine, Reception, SinrChannel, SinrParams,
    NEAR_RING,
};
use fading_geom::Point;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn params_with(alpha: f64, beta: f64, noise: f64, power: f64) -> SinrParams {
    SinrParams::builder()
        .alpha(alpha)
        .beta(beta)
        .noise(noise)
        .power(power)
        .build()
        .expect("strategy stays in the valid range")
}

/// Clustered deployments: a handful of dense clumps with wide gaps between
/// them, the geometry the tile bounds have to work hardest on.
fn arb_clustered_positions() -> impl Strategy<Value = Vec<Point>> {
    let cluster = (
        0.0..200.0f64,
        0.0..200.0f64,
        prop::collection::vec((0.0..2.0f64, 0.0..2.0f64), 1..12),
    );
    prop::collection::vec(cluster, 1..6).prop_map(|clusters| {
        clusters
            .into_iter()
            .flat_map(|(cx, cy, members)| {
                members
                    .into_iter()
                    .map(move |(dx, dy)| Point::new(cx + dx, cy + dy))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every occupied tile pair and every exponent, the cached
    /// `[g_lo, g_hi]` interval must bracket the exact gain of every member
    /// pair. This is the load-bearing invariant: if it ever failed, the
    /// decision ladder could emit a wrong-but-confident reception.
    #[test]
    fn pair_gain_bounds_bracket_exact_gains(
        positions in arb_clustered_positions(),
        alpha_idx in 0usize..4,
        power in 1.0..1e6f64,
        tiles_per_side in 2usize..9,
    ) {
        let alpha = [2.5, 3.0, 4.0, 6.0][alpha_idx];
        let params = params_with(alpha, 2.0, 1.0, power);
        let engine = FarFieldEngine::build_with_tiling(&positions, &params, tiles_per_side)
            .expect("finite positions must build");
        let tiles = engine.tiles();
        let num_tiles = tiles.num_tiles();
        for t in 0..num_tiles {
            for s in 0..num_tiles {
                let Some((g_lo, g_hi)) = engine.pair_gain_bounds(t, s) else {
                    continue;
                };
                prop_assert!(g_lo >= 0.0);
                prop_assert!(g_lo <= g_hi);
                for (v, pv) in positions.iter().enumerate() {
                    if tiles.tile_of(v) != t {
                        continue;
                    }
                    for (u, pu) in positions.iter().enumerate() {
                        if u == v || tiles.tile_of(u) != s {
                            continue;
                        }
                        let exact = power / pow_alpha(pv.distance_sq(*pu), alpha);
                        prop_assert!(
                            g_lo <= exact && exact <= g_hi,
                            "gain {exact} of pair ({v}, {u}) escapes bracket \
                             [{g_lo}, {g_hi}] of tiles ({t}, {s}) at alpha {alpha}"
                        );
                    }
                }
            }
        }
    }

    /// The lazily-aggregated far field for a listener's tile must bracket
    /// the exact interference sum over all far transmitters, checked
    /// end-to-end through a resolve: receptions match the exact path on
    /// clustered adversarial geometry.
    #[test]
    fn clustered_geometry_stays_exact(
        positions in arb_clustered_positions(),
        roles in prop::collection::vec(0u8..4, 60),
        alpha_idx in 0usize..4,
        beta in 1.0..4.0f64,
        power in 1.0..1e6f64,
        tiles_per_side in 2usize..9,
        seed in any::<u64>(),
    ) {
        let alpha = [2.5, 3.0, 4.0, 6.0][alpha_idx];
        let params = params_with(alpha, beta, 1.0, power);
        let ch = SinrChannel::new(params);
        let mut tx = Vec::new();
        let mut ls = Vec::new();
        for i in 0..positions.len() {
            match roles.get(i).copied().unwrap_or(1) % 4 {
                0 => tx.push(i),
                1 | 2 => ls.push(i),
                _ => {}
            }
        }
        let mut engine = FarFieldEngine::build_with_tiling(&positions, &params, tiles_per_side);
        let exact = ch.resolve(&positions, &tx, &ls, &mut SmallRng::seed_from_u64(seed));
        let fast = ch.resolve_farfield(
            &positions,
            &tx,
            &ls,
            engine.as_mut(),
            &ChannelPerturbation::neutral(),
            &mut SmallRng::seed_from_u64(seed),
        );
        prop_assert_eq!(exact, fast);
    }
}

/// Adversarial margin case: parameters tuned so the SINR decision sits
/// *exactly* on the `best_sig == beta * denom` boundary. No finite bracket
/// slack can separate the two outcomes, so the engine must take the exact
/// fallback — and still agree with `resolve` bit-for-bit.
///
/// Geometry (α = 4, P = 16, β = 2, noise = 1):
///   listener 0 at the origin, near transmitter 1 at (1, 1) ⇒
///   `sig = 16 / (1² + 1²)² = 4` exactly; four far transmitters coincident
///   at (2, 2) ⇒ each contributes `16 / (2² + 2²)² = 0.25`, summing to
///   exactly 1.0 (all powers of two, no rounding anywhere). Then
///   `denom = noise + I = 2.0` and `beta * denom = 4.0 = sig`: a decision
///   on the knife edge (`>=` succeeds, but no strict inequality holds), so
///   the widened bracket must straddle it and bail out.
#[test]
fn knife_edge_margin_forces_exact_fallback() {
    let params = params_with(4.0, 2.0, 1.0, 16.0);
    let ch = SinrChannel::new(params);

    let mut positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
    // Four coincident far transmitters whose interference sums to
    // exactly 1.0.
    for _ in 0..4 {
        positions.push(Point::new(2.0, 2.0));
    }
    // Pad the bounding box to [0, 8]² so an 8×8 tiling gives unit cells:
    // the near transmitter lands in tile (1, 1) (inside the near ring) and
    // the cluster in tile (2, 2) (genuinely far).
    positions.push(Point::new(8.0, 8.0));

    let tx: Vec<usize> = vec![1, 2, 3, 4, 5];
    let ls: Vec<usize> = vec![0];
    let mut engine = FarFieldEngine::build_with_tiling(&positions, &params, 8);

    // Sanity: the far cluster is genuinely outside the near ring.
    {
        let e = engine.as_ref().unwrap();
        let t0 = e.tiles().tile_of(0);
        let t2 = e.tiles().tile_of(2);
        assert!(
            e.tiles().chebyshev(t0, t2) > NEAR_RING,
            "test geometry regressed: far cluster fell inside the near ring"
        );
    }

    let exact = ch.resolve(&positions, &tx, &ls, &mut SmallRng::seed_from_u64(7));
    let fast = ch.resolve_farfield(
        &positions,
        &tx,
        &ls,
        engine.as_mut(),
        &ChannelPerturbation::neutral(),
        &mut SmallRng::seed_from_u64(7),
    );
    assert_eq!(exact, fast);
    // The margin is exactly zero, so the bracket cannot settle it: the
    // decision must have come from the exact fallback rung.
    let stats = engine.unwrap().stats();
    assert_eq!(
        stats.exact_fallbacks(),
        1,
        "knife-edge listener should fall back to the exact scan: {stats:?}"
    );
    assert_eq!(
        stats.bracket_straddle_fallbacks, 1,
        "a zero-margin decision is precisely a bracket straddle: {stats:?}"
    );
    // And the decision itself sits on the boundary: `>=` admits it.
    assert_eq!(exact, vec![Reception::Message { from: 1 }]);
}

/// Far-only decode: the strongest signal lives *outside* the near ring, so
/// the near scan finds no candidate sender at all. The ladder has no
/// near-field winner to bracket and must fall back — and the fallback must
/// recover the far winner exactly.
#[test]
fn far_only_cluster_forces_fallback_and_decodes() {
    let params = params_with(3.0, 1.5, 0.1, 1e6);
    let ch = SinrChannel::new(params);

    // Listener alone in one corner; a single strong transmitter in the
    // opposite corner (far under any multi-tile layout).
    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(30.0, 30.0),
        Point::new(15.0, 0.0),
    ];
    let tx = vec![1];
    let ls = vec![0];
    let mut engine = FarFieldEngine::build_with_tiling(&positions, &params, 8);
    {
        let e = engine.as_ref().unwrap();
        let t0 = e.tiles().tile_of(0);
        let t1 = e.tiles().tile_of(1);
        assert!(e.tiles().chebyshev(t0, t1) > NEAR_RING);
    }

    let exact = ch.resolve(&positions, &tx, &ls, &mut SmallRng::seed_from_u64(21));
    let fast = ch.resolve_farfield(
        &positions,
        &tx,
        &ls,
        engine.as_mut(),
        &ChannelPerturbation::neutral(),
        &mut SmallRng::seed_from_u64(21),
    );
    assert_eq!(exact, fast);
    assert_eq!(
        exact,
        vec![Reception::Message { from: 1 }],
        "the far transmitter should decode: sig = 10⁶/(30√2)³ ≈ 13.1 ≫ β·noise"
    );
    let stats = engine.unwrap().stats();
    assert!(
        stats.exact_fallbacks() >= 1,
        "a decodable far-only sender cannot be settled by bounds alone: {stats:?}"
    );
    assert!(
        stats.no_near_winner_fallbacks >= 1,
        "with no near candidate the ladder must exit at rung 3: {stats:?}"
    );
}
