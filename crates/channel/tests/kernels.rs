//! Kernel-contract suite: the batched SoA kernels must be **bit-identical**
//! to the scalar hot path (DESIGN.md §15, "summation-order contract").
//!
//! Three families of properties:
//!
//! 1. `pow_alpha_batch` ≡ scalar `pow_alpha` element-wise — bit-exact for
//!    the integer-exponent fast paths, ≤ 1e-9 relative for the generic
//!    `powf` class (mirroring `pow_alpha_fast_paths_match_generic_powf`);
//!    in fact the batch is bit-exact for the generic class too, which the
//!    test pins.
//! 2. `PointsSoA` stays coherent with the canonical `Vec<Point>` through
//!    arbitrary churn (push / overwrite / rebuild), and `gather` preserves
//!    id order bit-for-bit.
//! 3. The batched `scan_transmitters` path (the uncached public `resolve`)
//!    is bit-identical to both the cached scalar row path and a scalar
//!    reference fold written out here — including the first-strict-max
//!    tie-break, exercised with mirror-symmetric (equal-gain) transmitters.

use fading_channel::kernels::{distance_sq_batch, fold_scan, gain_batch, pow_alpha_batch};
use fading_channel::{pow_alpha, Channel, GainCache, Reception, SinrChannel, SinrParams};
use fading_geom::{Point, PointsSoA};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn params_with_alpha(alpha: f64) -> SinrParams {
    SinrParams::builder()
        .alpha(alpha)
        .beta(1.5)
        .noise(0.5)
        .power(1e4)
        .build()
        .expect("valid test params")
}

/// Distinct points on a jittered lattice (guaranteed non-coincident).
fn arb_positions(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..0.4f64, 0.0..0.4f64), min..=max).prop_map(|jitters| {
        let side = (jitters.len() as f64).sqrt().ceil() as usize;
        jitters
            .iter()
            .enumerate()
            .map(|(i, &(jx, jy))| Point::new((i % side) as f64 + jx, (i / side) as f64 + jy))
            .collect()
    })
}

/// The path-loss exponents the kernels monomorphize over: every fast-path
/// class plus a generic (`powf`) representative.
const ALPHAS: [f64; 5] = [2.0, 2.5, 3.0, 4.0, 6.0];

/// The subset valid at the channel level (`SinrParams` requires α > 2;
/// the α = 2 kernel class exists for raw-kernel consumers and benches).
const CHANNEL_ALPHAS: [f64; 4] = [2.5, 3.0, 4.0, 6.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Oracle: `pow_alpha_batch` agrees with the scalar `pow_alpha`
    /// element-wise across the full dynamic range of squared distances —
    /// bit-exact for every class (the batch runs the *same* arithmetic;
    /// for the generic class `α·0.5` is precomputed, which IEEE-754
    /// guarantees is exact, so `powf` sees identical arguments).
    #[test]
    fn pow_alpha_batch_matches_scalar_oracle(
        // Log-uniform d² over (1e-30, 1e12]: tiny and huge distances get
        // equal weight, like the scalar fast-path oracle.
        samples in prop::collection::vec((-30.0..12.0f64, 1.0..10.0f64), 1..64),
        alpha in 2.1..6.0f64,
    ) {
        let d_sq: Vec<f64> = samples.iter().map(|&(e, m)| m * 10f64.powf(e)).collect();
        let mut out = vec![0.0; d_sq.len()];
        // The drawn generic exponent, plus every fast-path class.
        for &a in ALPHAS.iter().chain(std::iter::once(&alpha)) {
            pow_alpha_batch(a, &d_sq, &mut out);
            for (i, &d) in d_sq.iter().enumerate() {
                let scalar = pow_alpha(d, a);
                // Bit-exact across all classes...
                prop_assert_eq!(
                    out[i].to_bits(), scalar.to_bits(),
                    "alpha={} d_sq={} batch={} scalar={}", a, d, out[i], scalar
                );
                // ...which trivially implies the documented ≤1e-9 relative
                // bound for the generic class.
                prop_assert!((out[i] - scalar).abs() <= 1e-9 * scalar.abs());
            }
        }
    }

    /// The fused gain batch is bit-identical to the canonical per-pair
    /// expression `P / pow_alpha(Point::distance_sq(u, v), α)`, and the
    /// distance batch to `Point::distance_sq`, for every exponent class.
    #[test]
    fn gain_and_distance_batches_match_point_arithmetic(
        positions in arb_positions(2, 32),
        (lvx, lvy) in (-5.0..45.0f64, -5.0..45.0f64),
        power in 1.0..1e6f64,
    ) {
        let v = Point::new(lvx, lvy);
        let soa = PointsSoA::from_points(&positions);
        let mut d_out = vec![0.0; positions.len()];
        let mut g_out = vec![0.0; positions.len()];
        distance_sq_batch(soa.xs(), soa.ys(), v.x, v.y, &mut d_out);
        for (i, p) in positions.iter().enumerate() {
            prop_assert_eq!(d_out[i].to_bits(), p.distance_sq(v).to_bits());
        }
        for &alpha in &ALPHAS {
            gain_batch(power, alpha, soa.xs(), soa.ys(), v.x, v.y, &mut g_out);
            for (i, p) in positions.iter().enumerate() {
                let want = power / pow_alpha(p.distance_sq(v), alpha);
                prop_assert_eq!(
                    g_out[i].to_bits(), want.to_bits(),
                    "alpha={} i={}", alpha, i
                );
            }
        }
    }

    /// SoA/AoS coherence under churn: an arbitrary interleaving of pushes,
    /// overwrites, gathers, and rebuilds leaves `PointsSoA` bit-coherent
    /// with the canonical `Vec<Point>` it mirrors (the engines' build-time
    /// mirror plus the per-round coordinate buckets reduce to exactly
    /// these operations).
    #[test]
    fn points_soa_stays_coherent_through_churn(
        seed_points in arb_positions(1, 16),
        ops in prop::collection::vec((0u8..4, 0usize..64, -10.0..10.0f64, -10.0..10.0f64), 0..48),
    ) {
        let mut aos: Vec<Point> = seed_points.clone();
        let mut soa = PointsSoA::from_points(&seed_points);
        for &(op, idx, x, y) in &ops {
            match op {
                0 => {
                    // Push a fresh point to both representations.
                    aos.push(Point::new(x, y));
                    soa.push(Point::new(x, y));
                }
                1 if !aos.is_empty() => {
                    // Overwrite an existing slot (churn repositions a node).
                    let i = idx % aos.len();
                    aos[i] = Point::new(x, y);
                    soa.set(i, Point::new(x, y));
                }
                2 if !aos.is_empty() => {
                    // Gather a rotated id permutation and check bit-order.
                    let ids: Vec<usize> =
                        (0..aos.len()).map(|i| (i + idx) % aos.len()).collect();
                    let mut gx = Vec::new();
                    let mut gy = Vec::new();
                    soa.gather(&ids, &mut gx, &mut gy);
                    for (k, &id) in ids.iter().enumerate() {
                        prop_assert_eq!(gx[k].to_bits(), aos[id].x.to_bits());
                        prop_assert_eq!(gy[k].to_bits(), aos[id].y.to_bits());
                    }
                }
                3 => {
                    // Rebuild from scratch (deployment reload).
                    soa = PointsSoA::from_points(&aos);
                }
                _ => {}
            }
            prop_assert!(soa.matches(&aos), "SoA diverged after op {:?}", op);
            prop_assert_eq!(soa.len(), aos.len());
        }
        // Full round-trip at the end: every coordinate bit-equal.
        for (i, p) in aos.iter().enumerate() {
            prop_assert_eq!(soa.point(i).x.to_bits(), p.x.to_bits());
            prop_assert_eq!(soa.point(i).y.to_bits(), p.y.to_bits());
        }
    }

    /// End-to-end scan equivalence: the uncached `resolve` (batched SoA
    /// kernels + slice-order fold) must agree with (a) the cached resolve
    /// (scalar row reads) and (b) a scalar reference fold written out
    /// below, for every exponent class. This pins the winner and the
    /// accumulated total — any reassociation of the sum or slip of the
    /// first-strict-max rule shows up as a reception flip near the
    /// threshold.
    #[test]
    fn batched_resolve_matches_cached_and_scalar_reference(
        positions in arb_positions(3, 24),
        tx_mask in prop::collection::vec(any::<bool>(), 24),
        alpha_idx in 0usize..CHANNEL_ALPHAS.len(),
    ) {
        let alpha = CHANNEL_ALPHAS[alpha_idx];
        let params = params_with_alpha(alpha);
        let ch = SinrChannel::new(params);
        let n = positions.len();
        let transmitters: Vec<usize> =
            (0..n).filter(|&i| tx_mask.get(i).copied().unwrap_or(false)).collect();
        let listeners: Vec<usize> =
            (0..n).filter(|&i| !tx_mask.get(i).copied().unwrap_or(false)).collect();

        let mut rng = SmallRng::seed_from_u64(1);
        let batched = ch.resolve(&positions, &transmitters, &listeners, &mut rng);

        let cache = GainCache::build(&positions, &params).expect("within size guard");
        let mut rng = SmallRng::seed_from_u64(1);
        let cached =
            ch.resolve_cached(&positions, &transmitters, &listeners, Some(&cache), &mut rng);
        prop_assert_eq!(&batched, &cached, "batched vs cached diverged at alpha={}", alpha);

        // Scalar reference: the canonical fold, written out longhand.
        for (k, &v) in listeners.iter().enumerate() {
            let vp = positions[v];
            let mut total = 0.0;
            let mut best_sig = 0.0;
            let mut best_tx = None;
            for &u in &transmitters {
                let sig = params.power() / pow_alpha(positions[u].distance_sq(vp), alpha);
                total += sig;
                if sig > best_sig {
                    best_sig = sig;
                    best_tx = Some(u);
                }
            }
            let denom = params.noise() + (total - best_sig);
            let want = match best_tx {
                Some(u) if best_sig >= params.beta() * denom => Reception::Message { from: u },
                _ => Reception::Silence,
            };
            prop_assert_eq!(batched[k], want, "listener {} alpha={}", v, alpha);
        }
    }
}

/// The tie-break, deterministically: two transmitters mirror-symmetric
/// about the listener produce bit-equal gains; the canonical rule keeps
/// the *earlier slice index*, in both transmitter orderings, on both the
/// batched and cached paths.
#[test]
fn batched_scan_keeps_first_strict_max_on_exact_ties() {
    let params = params_with_alpha(3.0);
    let ch = SinrChannel::new(params);
    // Listener at the origin; transmitters at (d, 0) and (-d, 0) have
    // bit-identical squared distances, hence bit-identical gains.
    let positions = [
        Point::new(0.0, 0.0),
        Point::new(1.25, 0.0),
        Point::new(-1.25, 0.0),
    ];
    let cache = GainCache::build(&positions, &params).expect("tiny deployment");
    for tx in [[1usize, 2], [2usize, 1]] {
        let mut rng = SmallRng::seed_from_u64(0);
        let batched = ch.resolve(&positions, &tx, &[0], &mut rng);
        let mut rng = SmallRng::seed_from_u64(0);
        let cached = ch.resolve_cached(&positions, &tx, &[0], Some(&cache), &mut rng);
        assert_eq!(batched, cached, "tie-break diverged for order {tx:?}");
        // With β = 1.5 > 1 and two equal signals the SINR is ~1, so the
        // decode fails — but the *fold* still has a well-defined winner.
        // Check it directly through fold_scan on hand-built gains.
    }
    // fold_scan itself: equal gains keep the earlier index.
    let g = params.power() / pow_alpha(positions[1].distance_sq(positions[0]), 3.0);
    let fold = fold_scan(&[g, g]);
    assert_eq!(fold.best_idx, Some(0), "tie must keep the earlier index");
    let fold_rev = fold_scan(&[g * 0.5, g]);
    assert_eq!(fold_rev.best_idx, Some(1), "strict max must win");
}
