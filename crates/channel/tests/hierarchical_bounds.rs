//! Soundness of the tile-tree's certified distance brackets as *gain*
//! brackets, plus adversarial deployments engineered to hit the exact
//! fallback from a coarse (multi-tile) aggregate.
//!
//! The equivalence oracle (`hierarchical_equivalence.rs`) proves the *end*
//! result is bit-exact; these tests prove the *means*: every tree node's
//! `[d_min², d_max²]` certificate, at every level and against every
//! listener tile, genuinely brackets the summed exact gain of its members
//! (the invariant the Barnes–Hut-style accept rule rests on), for any cut
//! of the tree a traversal could take — and when the aggregated bracket
//! cannot separate Message from Silence the engine really does fall back
//! rather than guess.

use fading_channel::{
    pow_alpha, Channel, ChannelPerturbation, HierarchicalFarFieldEngine, Reception,
    SerialExecutor, SinrChannel, SinrParams, NEAR_RING,
};
use fading_geom::{Point, TileTree};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn params_with(alpha: f64, beta: f64, noise: f64, power: f64) -> SinrParams {
    SinrParams::builder()
        .alpha(alpha)
        .beta(beta)
        .noise(noise)
        .power(power)
        .build()
        .expect("strategy stays in the valid range")
}

/// Clustered deployments: a handful of dense clumps with wide gaps between
/// them — the geometry that leaves many tree nodes empty and makes the
/// content-bbox (vs. grid-cell) bounds earn their keep.
fn arb_clustered_positions() -> impl Strategy<Value = Vec<Point>> {
    let cluster = (
        0.0..200.0f64,
        0.0..200.0f64,
        prop::collection::vec((0.0..2.0f64, 0.0..2.0f64), 1..12),
    );
    prop::collection::vec(cluster, 1..6).prop_map(|clusters| {
        clusters
            .into_iter()
            .flat_map(|(cx, cy, members)| {
                members
                    .into_iter()
                    .map(move |(dx, dy)| Point::new(cx + dx, cy + dy))
            })
            .collect()
    })
}

/// Indices of the points lying under node `(level, idx)` of `tree`.
fn node_members(tree: &TileTree, positions: &[Point], level: usize, idx: usize) -> Vec<usize> {
    let (col_range, row_range) = tree.fine_tile_range(level, idx);
    let cols = tree.fine().cols();
    (0..positions.len())
        .filter(|&i| {
            let t = tree.fine().tile_of(i);
            col_range.contains(&(t % cols)) && row_range.contains(&(t / cols))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every listener tile, every level, and every occupied node, the
    /// gain interval implied by the node's distance certificate must
    /// bracket the summed exact gain of the node's members. This is the
    /// load-bearing invariant: the hierarchical engine adds
    /// `count · P / pow_alpha(d_max²)` and `count · P / pow_alpha(d_min²)`
    /// to its far-field bounds wherever it accepts a node, at *any* level.
    #[test]
    fn node_gain_brackets_contain_exact_member_sums(
        positions in arb_clustered_positions(),
        alpha_idx in 0usize..4,
        power in 1.0..1e6f64,
        tiles_per_side in 4usize..17,
    ) {
        let alpha = [2.5, 3.0, 4.0, 6.0][alpha_idx];
        let tree = TileTree::build(&positions, tiles_per_side)
            .expect("finite nonempty positions must build");
        let num_tiles = tree.fine().num_tiles();
        for t in 0..num_tiles {
            let listeners: Vec<usize> = (0..positions.len())
                .filter(|&v| tree.fine().tile_of(v) == t)
                .collect();
            if listeners.is_empty() {
                continue;
            }
            for level in 0..tree.num_levels() {
                for idx in 0..tree.num_nodes(level) {
                    let count = tree.node_count(level, idx);
                    if count == 0 {
                        continue;
                    }
                    let (d_min_sq, d_max_sq) = tree
                        .distance_sq_bounds_to(t, level, idx)
                        .expect("both sides are occupied");
                    prop_assert!(d_min_sq >= 0.0 && d_min_sq <= d_max_sq);
                    let members = node_members(&tree, &positions, level, idx);
                    prop_assert_eq!(members.len(), count,
                        "node ({}, {}) count disagrees with membership", level, idx);
                    for &v in &listeners {
                        // Per-pair distance containment for members other
                        // than the listener itself (its own distance is 0,
                        // but then d_min² = 0 too, so it still holds).
                        let mut exact_sum = 0.0f64;
                        let mut self_in_node = false;
                        for &u in &members {
                            if u == v {
                                self_in_node = true;
                                continue;
                            }
                            let d_sq = positions[v].distance_sq(positions[u]);
                            prop_assert!(
                                d_min_sq <= d_sq && d_sq <= d_max_sq,
                                "pair ({}, {}) distance² {} escapes node ({}, {}) \
                                 certificate [{}, {}]",
                                v, u, d_sq, level, idx, d_min_sq, d_max_sq
                            );
                            exact_sum += power / pow_alpha(d_sq, alpha);
                        }
                        if self_in_node || d_min_sq == 0.0 {
                            // Touching bboxes give an unbounded gain cap;
                            // the sum bracket is trivially sound there.
                            continue;
                        }
                        let m = (members.len() - usize::from(self_in_node)) as f64;
                        let lo = m * power / pow_alpha(d_max_sq, alpha);
                        let hi = m * power / pow_alpha(d_min_sq, alpha);
                        prop_assert!(
                            lo * (1.0 - 1e-9) <= exact_sum && exact_sum <= hi * (1.0 + 1e-9),
                            "summed gain {} escapes bracket [{}, {}] of node ({}, {}) \
                             for listener {} at alpha {}",
                            exact_sum, lo, hi, level, idx, v, alpha
                        );
                    }
                }
            }
        }
    }

    /// Any *cut* of the tree — any antichain of accepted nodes a traversal
    /// could produce — yields a sound aggregate bracket on the total
    /// far-field interference. A seeded random descent (descend/accept
    /// chosen by coin flip, forced descent through the listener's own
    /// subtree) simulates arbitrary accept-rule outcomes, so soundness
    /// cannot secretly depend on the production accept ratio.
    #[test]
    fn random_tree_cuts_bracket_total_interference(
        positions in arb_clustered_positions(),
        alpha_idx in 0usize..4,
        power in 1.0..1e6f64,
        tiles_per_side in 4usize..17,
        seed in any::<u64>(),
        listener_pick in any::<u64>(),
    ) {
        prop_assume!(positions.len() >= 2);
        let alpha = [2.5, 3.0, 4.0, 6.0][alpha_idx];
        let tree = TileTree::build(&positions, tiles_per_side)
            .expect("finite nonempty positions must build");
        let v = usize::try_from(listener_pick).unwrap_or(usize::MAX) % positions.len();
        let lt = tree.fine().tile_of(v);
        let cols = tree.fine().cols();
        let (lt_col, lt_row) = (lt % cols, lt / cols);
        let mut rng = SmallRng::seed_from_u64(seed);

        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        let mut exact = 0.0f64;
        // Iterative descent from the root; each frame is (level, idx).
        let (root_level, root_idx) = tree.root();
        let mut stack = vec![(root_level, root_idx)];
        while let Some((level, idx)) = stack.pop() {
            if tree.node_count(level, idx) == 0 {
                continue;
            }
            let (col_range, row_range) = tree.fine_tile_range(level, idx);
            let covers_listener =
                col_range.contains(&lt_col) && row_range.contains(&lt_row);
            if covers_listener && level == 0 {
                // The listener's own tile is the traversal's near field;
                // a cut never aggregates it.
                continue;
            }
            if covers_listener || (level > 0 && rng.gen_bool(0.5)) {
                stack.extend(tree.children(level, idx).map(|c| (level - 1, c)));
                continue;
            }
            // Accept: fold this node's certificate into the aggregate.
            let (d_min_sq, d_max_sq) = tree
                .distance_sq_bounds_to(lt, level, idx)
                .expect("both sides are occupied");
            let members = node_members(&tree, &positions, level, idx);
            let m = members.len() as f64;
            lo += m * power / pow_alpha(d_max_sq, alpha);
            hi += m * power / pow_alpha(d_min_sq, alpha);
            for &u in &members {
                exact += power / pow_alpha(positions[v].distance_sq(positions[u]), alpha);
            }
        }
        prop_assert!(
            lo * (1.0 - 1e-9) <= exact && exact <= hi * (1.0 + 1e-9),
            "cut aggregate {} escapes bracket [{}, {}] at alpha {}",
            exact, lo, hi, alpha
        );
    }
}

/// Adversarial margin case at a *coarse* tree level: parameters tuned so
/// the SINR decision sits exactly on the `best_sig == beta * denom`
/// boundary, with the entire far field aggregated from one degenerate
/// multi-tile node. No finite bracket slack can separate the two outcomes,
/// so the engine must take the exact fallback — and still agree with
/// `resolve` bit-for-bit.
///
/// Geometry (α = 4, P = 16, β = 2, noise = 2⁻⁸, 8×8 tiling over [0, 32]²,
/// so tiles are 4×4):
///   listener 0 alone at (0.5, 0.5) in fine tile (0, 0); near
///   transmitter 1 at (4.5, 4.5) in fine tile (1, 1), inside the near
///   ring ⇒ `sig = 16 / (4² + 4²)² = 2⁻⁶` exactly; 64 far transmitters
///   coincident at (16.5, 16.5) — fine tile (4, 4), outside the near
///   ring — each contribute `16 / (16² + 16²)² = 2⁻¹⁴`, summing to
///   exactly `2⁻⁸` (all powers of two, no rounding anywhere). Then
///   `denom = noise + I = 2⁻⁷` and `beta * denom = 2⁻⁶ = sig`: a
///   knife-edge decision (`>=` succeeds, but no strict inequality holds),
///   so the slack-widened bracket must straddle it and bail out to the
///   exact scan.
///
/// The cluster's level-1 ancestor covers fine tiles (4..6)² — four tiles,
/// none inside the near ring — and both its content bbox (the single
/// point (16.5, 16.5)) and the listener tile's content bbox (the single
/// point (0.5, 0.5)) are degenerate, so the node's distance certificate
/// is *tight* (`d_min = d_max`) and the accept ratio is 1: the traversal
/// aggregates the whole far field at level 1 (its level-2 ancestor also
/// holds the idle pad point, which fails the accept ratio and forces one
/// descent), and the straddle is forced on a genuinely coarse bracket.
#[test]
fn coarse_knife_edge_margin_forces_exact_fallback() {
    let params = params_with(4.0, 2.0, 0.00390625, 16.0);
    let ch = SinrChannel::new(params);

    let mut positions = vec![Point::new(0.5, 0.5), Point::new(4.5, 4.5)];
    for _ in 0..64 {
        positions.push(Point::new(16.5, 16.5));
    }
    // Idle pad stretching the bbox to [0, 32]² so the 8×8 tiling has 4×4
    // cells and the tree stacks 8 → 4 → 2 → 1.
    positions.push(Point::new(32.0, 32.0));

    let tx: Vec<usize> = (1..66).collect();
    let ls: Vec<usize> = vec![0];
    let mut engine = HierarchicalFarFieldEngine::build_with_tiling(&positions, &params, 8);

    // Structural sanity: the geometry really exercises a coarse accept.
    {
        let tree = engine.as_ref().unwrap().tree();
        assert_eq!(tree.num_levels(), 4, "8×8 fine grid must stack 4 levels");
        let t0 = tree.fine().tile_of(0);
        let tc = tree.fine().tile_of(2);
        assert!(
            tree.fine().chebyshev(t0, tc) > NEAR_RING,
            "test geometry regressed: far cluster fell inside the near ring"
        );
        // Level-1 node (2, 2) covers fine tiles (4..6)²: it holds exactly
        // the 64-strong cluster and its bbox is a single point, so the
        // certificate is tight and the accept ratio test passes at
        // level 1.
        let l1_cols = tree.level_cols(1);
        let node = 2 * l1_cols + 2;
        assert_eq!(tree.node_count(1, node), 64);
        let (d_min_sq, d_max_sq) = tree.distance_sq_bounds_to(t0, 1, node).unwrap();
        assert_eq!(
            d_min_sq, d_max_sq,
            "a degenerate cluster bbox must give a tight certificate"
        );
    }

    let exact = ch.resolve(&positions, &tx, &ls, &mut SmallRng::seed_from_u64(7));
    let fast = ch.resolve_hierarchical(
        &positions,
        &tx,
        &ls,
        engine.as_mut(),
        &SerialExecutor,
        &ChannelPerturbation::neutral(),
        &mut SmallRng::seed_from_u64(7),
    );
    assert_eq!(exact, fast);
    // The margin is exactly zero, so the bracket cannot settle it: the
    // decision must have come from the exact fallback rung.
    let stats = engine.unwrap().stats();
    assert_eq!(
        stats.exact_fallbacks(),
        1,
        "knife-edge listener should fall back to the exact scan: {stats:?}"
    );
    assert_eq!(
        stats.bracket_straddle_fallbacks, 1,
        "a zero-margin decision is precisely a bracket straddle: {stats:?}"
    );
    // And the decision itself sits on the boundary: `>=` admits it.
    assert_eq!(exact, vec![Reception::Message { from: 1 }]);
}

/// Far-only decode through the tree: the strongest signal lives outside
/// the near ring, so the near scan finds no candidate and the ladder must
/// exit at rung 3 (exact fallback) — and the fallback must recover the far
/// winner exactly.
#[test]
fn far_only_sender_forces_fallback_and_decodes() {
    let params = params_with(3.0, 1.5, 0.1, 1e6);
    let ch = SinrChannel::new(params);

    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(120.0, 120.0),
        Point::new(60.0, 0.0),
    ];
    let tx = vec![1];
    let ls = vec![0];
    let mut engine = HierarchicalFarFieldEngine::build_with_tiling(&positions, &params, 8);
    {
        let tree = engine.as_ref().unwrap().tree();
        let t0 = tree.fine().tile_of(0);
        let t1 = tree.fine().tile_of(1);
        assert!(tree.fine().chebyshev(t0, t1) > NEAR_RING);
    }

    let exact = ch.resolve(&positions, &tx, &ls, &mut SmallRng::seed_from_u64(21));
    let fast = ch.resolve_hierarchical(
        &positions,
        &tx,
        &ls,
        engine.as_mut(),
        &SerialExecutor,
        &ChannelPerturbation::neutral(),
        &mut SmallRng::seed_from_u64(21),
    );
    assert_eq!(exact, fast);
    assert_eq!(
        exact,
        vec![Reception::Message { from: 1 }],
        "the far transmitter should decode: sig = 10⁶/(120√2)³ ≈ 0.2 ≥ β·noise"
    );
    let stats = engine.unwrap().stats();
    assert!(
        stats.exact_fallbacks() >= 1,
        "a decodable far-only sender cannot be settled by bounds alone: {stats:?}"
    );
    assert!(
        stats.no_near_winner_fallbacks >= 1,
        "with no near candidate the ladder must exit at rung 3: {stats:?}"
    );
}
