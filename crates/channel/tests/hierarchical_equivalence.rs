//! Decision-exactness oracle for the hierarchical (tile-tree) far-field
//! engine.
//!
//! The contract under test ([`Channel::resolve_hierarchical`]) is the same
//! *bit-exact* equivalence the flat engine guarantees: resolving a round
//! through a [`HierarchicalFarFieldEngine`] must yield a `Reception`
//! vector **identical** (`==`, not approximately equal) to the exact
//! paths — `resolve` for neutral perturbations, `resolve_perturbed` for
//! faulted rounds — while consuming the channel rng identically. The
//! property tests drive arbitrary deployments, transmitter/listener
//! partitions, parameter draws, and perturbations (noise scaling +
//! per-node jammer interference) through both paths for each path-loss
//! exponent the experiments use (`α ∈ {2.5, 3, 4, 6}`), 256 cases per
//! exponent. Two generator families deliberately stress the tree:
//! **clustered** fields (tight blobs separated by hundreds of units, so
//! coarse aggregates are accepted levels above the fine tiles) and
//! **corridor** fields (long thin strips, so the ceil-halving pyramid
//! degenerates to 1×k levels).

use fading_channel::{
    Channel, ChannelPerturbation, HierarchicalFarFieldEngine, LossySinrChannel, RadioChannel,
    RayleighSinrChannel, Reception, SerialExecutor, SinrChannel, SinrParams,
};
use fading_geom::Point;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Distinct points on a jittered lattice (guaranteed non-coincident).
fn arb_lattice_positions(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..0.4f64, 0.0..0.4f64), min..=max).prop_map(|jitters| {
        let side = (jitters.len() as f64).sqrt().ceil() as usize;
        jitters
            .iter()
            .enumerate()
            .map(|(i, &(jx, jy))| Point::new((i % side) as f64 + jx, (i / side) as f64 + jy))
            .collect()
    })
}

/// Tight clusters flung across a 200×200 field: most transmitter mass sits
/// levels above any listener's fine neighborhood, so accepted aggregates
/// are genuinely coarse.
fn arb_clustered_positions() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (
            (0.0..200.0f64, 0.0..200.0f64),
            prop::collection::vec((0.0..2.0f64, 0.0..2.0f64), 1..12),
        ),
        1..6,
    )
    .prop_map(|clusters| {
        clusters
            .iter()
            .flat_map(|((cx, cy), members)| {
                members
                    .iter()
                    .map(move |&(dx, dy)| Point::new(cx + dx, cy + dy))
            })
            .collect()
    })
}

/// A long thin strip (one unit tall, up to ~150 units long): the pyramid's
/// ceil-halving runs many levels in one axis while the other is already 1,
/// exercising the degenerate 1×k merge geometry.
fn arb_corridor_positions(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..3.0f64, 0.0..1.0f64), min..=max).prop_map(|jitters| {
        jitters
            .iter()
            .enumerate()
            .map(|(i, &(jx, jy))| Point::new(i as f64 * 3.0 + jx, jy))
            .collect()
    })
}

/// Splits node ids into disjoint (transmitters, listeners) from per-node
/// role draws: 0 ⇒ transmit, 1–2 ⇒ listen, 3 ⇒ idle.
fn partition(roles: &[u8], n: usize) -> (Vec<usize>, Vec<usize>) {
    let mut tx = Vec::new();
    let mut ls = Vec::new();
    for i in 0..n {
        match roles.get(i).copied().unwrap_or(1) % 4 {
            0 => tx.push(i),
            1 | 2 => ls.push(i),
            _ => {}
        }
    }
    (tx, ls)
}

fn params_with(alpha: f64, beta: f64, noise: f64, power: f64) -> SinrParams {
    SinrParams::builder()
        .alpha(alpha)
        .beta(beta)
        .noise(noise)
        .power(power)
        .build()
        .expect("strategy stays in the valid range")
}

/// Builds the jammer-interference vector for a perturbation: every third
/// node (by a role-derived mask) receives `jam_power`.
fn jam_extra(roles: &[u8], n: usize, jam_power: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if roles.get(i).copied().unwrap_or(0) % 3 == 0 {
                jam_power
            } else {
                0.0
            }
        })
        .collect()
}

/// Asserts bit-exact hierarchical/exact equivalence (receptions *and*
/// final rng state) for one channel on one scenario, neutral and faulted.
fn assert_hierarchical_equiv<C: Channel>(
    ch: &C,
    positions: &[Point],
    tx: &[usize],
    ls: &[usize],
    engine: &mut Option<HierarchicalFarFieldEngine>,
    perturbation: &ChannelPerturbation<'_>,
    seed: u64,
) {
    let executor = SerialExecutor;
    // Neutral round: hierarchical vs plain resolve.
    let mut rng_exact = SmallRng::seed_from_u64(seed);
    let mut rng_fast = SmallRng::seed_from_u64(seed);
    let exact = ch.resolve(positions, tx, ls, &mut rng_exact);
    let fast = ch.resolve_hierarchical(
        positions,
        tx,
        ls,
        engine.as_mut(),
        &executor,
        &ChannelPerturbation::neutral(),
        &mut rng_fast,
    );
    assert_eq!(
        exact,
        fast,
        "hierarchical receptions diverged on the clean path ({}, n={}, tx={}, ls={}, seed={seed})",
        ch.name(),
        positions.len(),
        tx.len(),
        ls.len()
    );
    assert_eq!(
        rng_exact,
        rng_fast,
        "hierarchical path consumed the rng differently ({}, seed={seed})",
        ch.name()
    );

    // Faulted round: hierarchical vs resolve_perturbed under the same
    // noise-scale + jammer perturbation.
    let mut rng_exact = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut rng_fast = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let exact = ch.resolve_perturbed(positions, tx, ls, None, perturbation, &mut rng_exact);
    let fast = ch.resolve_hierarchical(
        positions,
        tx,
        ls,
        engine.as_mut(),
        &executor,
        perturbation,
        &mut rng_fast,
    );
    assert_eq!(
        exact,
        fast,
        "hierarchical receptions diverged on the faulted path ({}, seed={seed})",
        ch.name()
    );
    assert_eq!(
        rng_exact,
        rng_fast,
        "hierarchical faulted path consumed the rng differently ({}, seed={seed})",
        ch.name()
    );
}

/// The full per-case oracle: SINR and lossy SINR take the pruned path
/// (engines forced to a multi-tile fine grid so the pyramid has real
/// depth); Rayleigh builds no engine and must fall back wholesale.
#[allow(clippy::too_many_arguments)] // mirrors the proptest argument list
fn check_all_channels(
    alpha: f64,
    positions: &[Point],
    roles: &[u8],
    beta: f64,
    noise: f64,
    power: f64,
    drop_prob: f64,
    jam_power: f64,
    noise_scale: f64,
    seed: u64,
) {
    let (tx, ls) = partition(roles, positions.len());
    let params = params_with(alpha, beta, noise, power);
    let extra = jam_extra(roles, positions.len(), jam_power);
    let perturbation = ChannelPerturbation::new(noise_scale, &extra);

    let sinr = SinrChannel::new(params);
    // Forced 8-per-side fine grid ⇒ a 4-level pyramid (8 → 4 → 2 → 1),
    // so coarse-level accepts genuinely happen at these small n.
    let mut engine = HierarchicalFarFieldEngine::build_with_tiling(positions, &params, 8);
    assert!(engine.is_some(), "multi-level engine must build");
    assert!(
        engine.as_ref().is_some_and(|e| e.tree().num_levels() >= 4),
        "forced tiling should produce a multi-level pyramid"
    );
    assert_hierarchical_equiv(&sinr, positions, &tx, &ls, &mut engine, &perturbation, seed);
    // And through the production builder (small n ⇒ shallow tree, the
    // near scan dominates).
    let mut default_engine = sinr.build_hierarchical_engine(positions);
    assert!(default_engine.is_some());
    assert_hierarchical_equiv(
        &sinr,
        positions,
        &tx,
        &ls,
        &mut default_engine,
        &perturbation,
        seed,
    );

    let lossy = LossySinrChannel::new(params, drop_prob).expect("drop_prob in [0, 1)");
    let mut lengine = HierarchicalFarFieldEngine::build_with_tiling(positions, &params, 8);
    assert_hierarchical_equiv(
        &lossy,
        positions,
        &tx,
        &ls,
        &mut lengine,
        &perturbation,
        seed,
    );

    // Rayleigh: no engine by contract (per-pair rng draws); the trait
    // default must fall back and stay exact.
    let rayleigh = RayleighSinrChannel::new(params);
    assert!(rayleigh.build_hierarchical_engine(positions).is_none());
    let mut none = None;
    assert_hierarchical_equiv(
        &rayleigh,
        positions,
        &tx,
        &ls,
        &mut none,
        &perturbation,
        seed,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decision-exactness oracle at the generic-powf exponent α = 2.5.
    #[test]
    fn hierarchical_equals_exact_alpha_2_5(
        positions in arb_lattice_positions(2, 48),
        roles in prop::collection::vec(0u8..4, 48),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        jam_power in 0.0..100.0f64,
        noise_scale in 0.25..4.0f64,
        seed in any::<u64>(),
    ) {
        check_all_channels(
            2.5, &positions, &roles, beta, noise, power, drop_prob, jam_power, noise_scale, seed,
        );
    }

    /// Decision-exactness oracle at the fast-path exponent α = 3.
    #[test]
    fn hierarchical_equals_exact_alpha_3(
        positions in arb_lattice_positions(2, 48),
        roles in prop::collection::vec(0u8..4, 48),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        jam_power in 0.0..100.0f64,
        noise_scale in 0.25..4.0f64,
        seed in any::<u64>(),
    ) {
        check_all_channels(
            3.0, &positions, &roles, beta, noise, power, drop_prob, jam_power, noise_scale, seed,
        );
    }

    /// Decision-exactness oracle at the fast-path exponent α = 4, on the
    /// clustered generator (coarse-level accepts dominate).
    #[test]
    fn hierarchical_equals_exact_alpha_4_clustered(
        positions in arb_clustered_positions(),
        roles in prop::collection::vec(0u8..4, 60),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        jam_power in 0.0..100.0f64,
        noise_scale in 0.25..4.0f64,
        seed in any::<u64>(),
    ) {
        prop_assume!(positions.len() >= 2);
        check_all_channels(
            4.0, &positions, &roles, beta, noise, power, drop_prob, jam_power, noise_scale, seed,
        );
    }

    /// Decision-exactness oracle at the fast-path exponent α = 6, on the
    /// corridor generator (degenerate 1×k pyramid levels).
    #[test]
    fn hierarchical_equals_exact_alpha_6_corridor(
        positions in arb_corridor_positions(2, 48),
        roles in prop::collection::vec(0u8..4, 48),
        beta in 1.0..4.0f64,
        noise in 0.0..2.0f64,
        power in 1.0..1e6f64,
        drop_prob in 0.0..0.9f64,
        jam_power in 0.0..100.0f64,
        noise_scale in 0.25..4.0f64,
        seed in any::<u64>(),
    ) {
        check_all_channels(
            6.0, &positions, &roles, beta, noise, power, drop_prob, jam_power, noise_scale, seed,
        );
    }

    /// An engine built for *different* positions or parameters must be
    /// rejected, falling back to the exact (still correct) path.
    #[test]
    fn mismatched_engine_falls_back_to_exact(
        positions in arb_lattice_positions(3, 24),
        roles in prop::collection::vec(0u8..4, 24),
        seed in any::<u64>(),
    ) {
        let (tx, ls) = partition(&roles, positions.len());
        let params = params_with(3.0, 2.0, 1.0, 1e4);
        let ch = SinrChannel::new(params);
        let neutral = ChannelPerturbation::neutral();

        // Wrong node count: engine over a prefix of the deployment.
        let mut stale =
            HierarchicalFarFieldEngine::build(&positions[..positions.len() - 1], &params);
        assert_hierarchical_equiv(&ch, &positions, &tx, &ls, &mut stale, &neutral, seed);

        // Wrong parameters: engine built under a different power.
        let other = params_with(3.0, 2.0, 1.0, 2e4);
        let mut wrong = HierarchicalFarFieldEngine::build(&positions, &other);
        assert_hierarchical_equiv(&ch, &positions, &tx, &ls, &mut wrong, &neutral, seed);

        // No engine at all.
        let mut none = None;
        assert_hierarchical_equiv(&ch, &positions, &tx, &ls, &mut none, &neutral, seed);
    }
}

#[test]
fn radio_channels_take_the_default_fallback() {
    let positions = [
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(2.0, 0.0),
    ];
    let radio = RadioChannel::new();
    assert!(radio.build_hierarchical_engine(&positions).is_none());

    // Handing the geometry-free model a foreign engine must not change its
    // semantics (the default trait impl ignores it).
    let params = params_with(3.0, 2.0, 1.0, 1e4);
    let mut foreign = HierarchicalFarFieldEngine::build(&positions, &params);
    let rx = radio.resolve_hierarchical(
        &positions,
        &[0],
        &[1, 2],
        foreign.as_mut(),
        &SerialExecutor,
        &ChannelPerturbation::neutral(),
        &mut SmallRng::seed_from_u64(3),
    );
    assert_eq!(
        rx,
        vec![
            Reception::Message { from: 0 },
            Reception::Message { from: 0 }
        ]
    );
}

/// On a large spread deployment the tree traversal must both *accept
/// coarse aggregates* (otherwise it degenerates to the flat engine) and
/// *settle decisions without the exact scan* (otherwise the perf claims
/// are vacuous). Exactness is separately guaranteed by the oracles above;
/// this pins the pruning plus the counter reconciliation invariant.
#[test]
fn pruned_path_settles_decisions_on_spread_deployments() {
    let params = params_with(3.0, 2.0, 1.0, 16.0);
    // 32 × 32 lattice with 3-unit spacing: plenty of genuinely far tiles.
    let positions: Vec<Point> = (0..1024)
        .map(|i| Point::new((i % 32) as f64 * 3.0, (i / 32) as f64 * 3.0))
        .collect();
    let ch = SinrChannel::new(params);
    let mut engine = HierarchicalFarFieldEngine::build_with_tiling(&positions, &params, 16);
    assert!(
        engine.as_ref().is_some_and(|e| e.tree().num_levels() >= 5),
        "16 tiles per side should yield a 5-level pyramid"
    );
    let tx: Vec<usize> = (0..1024).step_by(5).collect();
    let ls: Vec<usize> = (0..1024).filter(|i| i % 5 != 0).collect();
    let mut rng = SmallRng::seed_from_u64(11);
    let exact = ch.resolve(&positions, &tx, &ls, &mut rng);
    let fast = ch.resolve_hierarchical(
        &positions,
        &tx,
        &ls,
        engine.as_mut(),
        &SerialExecutor,
        &ChannelPerturbation::neutral(),
        &mut SmallRng::seed_from_u64(11),
    );
    assert_eq!(exact, fast);
    let stats = engine.unwrap().stats();
    let settled = stats.fast_decisions() + stats.noise_floor_silences;
    assert!(
        settled > stats.exact_fallbacks(),
        "pruning should settle most listeners on a spread lattice: {stats:?}"
    );
    // Reconciliation invariant (acceptance criterion): every listener
    // decision lands in exactly one rung bucket.
    assert_eq!(
        stats.listeners_resolved(),
        ls.len() as u64,
        "one decision per listener: {stats:?}"
    );
    assert_eq!(
        stats.fast_decisions() + stats.noise_floor_silences + stats.exact_fallbacks(),
        stats.listeners_resolved(),
        "rung counters must reconcile with listeners resolved: {stats:?}"
    );
}
