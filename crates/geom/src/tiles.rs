//! Fixed square tiling of a point set, with per-tile *content* bounding
//! boxes and conservative tile-pair distance bounds.
//!
//! [`TileIndex`] is the spatial substrate of the far-field interference
//! engine in `fading-channel`: it partitions a deployment's bounding box
//! into a `cols × rows` grid of tiles, assigns every point to exactly one
//! tile, and — crucially — records each tile's **content bbox**, the tight
//! axis-aligned box around the points actually assigned to it.
//!
//! Distance bounds between tiles are computed from the content bboxes, not
//! the nominal grid rectangles. This makes the bounds *unconditionally
//! correct*: a point provably lies inside its tile's content bbox (it was
//! expanded over the members), whereas floating-point rounding in the grid
//! assignment could in principle park a boundary point an ulp outside its
//! nominal cell. Any subset of a tile's members therefore satisfies
//!
//! ```text
//! d_min(t, s)² ≤ d(u, v)² ≤ d_max(t, s)²   for all u ∈ s, v ∈ t,
//! ```
//!
//! up to ordinary floating-point rounding of the bound expressions
//! themselves (a few ulps — consumers that need hard guarantees widen by a
//! relative slack, see the far-field engine).
//!
//! The index is static: it describes where points *are*, not which are
//! active. Dynamic per-tile occupancy lives with the consumer.
//!
//! # Example
//!
//! ```
//! use fading_geom::{Point, TileIndex};
//!
//! let pts: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
//!     .collect();
//! let tiles = TileIndex::build(&pts, 5).unwrap();
//! assert_eq!(tiles.num_tiles(), 25);
//! let t = tiles.tile_of(0);
//! let s = tiles.tile_of(99);
//! let (lo, hi) = tiles.distance_sq_bounds(t, s).unwrap();
//! let d = pts[0].distance_sq(pts[99]);
//! assert!(lo <= d && d <= hi);
//! ```

use crate::{Bbox, Point};

/// A fixed `cols × rows` square tiling of a point set's bounding box.
///
/// Tiles are identified by `tile_id = row * cols + col`. See the
/// [module docs](self) for the content-bbox distance-bound contract.
#[derive(Debug, Clone)]
pub struct TileIndex {
    cols: usize,
    rows: usize,
    /// Tile id of each point (index = point index).
    tile_of: Vec<u32>,
    /// Static member count per tile.
    counts: Vec<u32>,
    /// Tight bbox over each tile's members; meaningless when `counts` is 0.
    content: Vec<Bbox>,
}

impl TileIndex {
    /// Builds a `tiles_per_side × tiles_per_side` tiling over the bounding
    /// box of `points`. Returns `None` when `points` is empty,
    /// `tiles_per_side` is zero, or the point set would not fit `u32` ids.
    #[must_use]
    pub fn build(points: &[Point], tiles_per_side: usize) -> Option<Self> {
        if points.is_empty() || tiles_per_side == 0 || points.len() > u32::MAX as usize {
            return None;
        }
        let bbox = Bbox::containing(points.iter().copied())?;
        let cols = tiles_per_side;
        let rows = tiles_per_side;
        let cell_w = bbox.width() / cols as f64;
        let cell_h = bbox.height() / rows as f64;
        let axis = |coord: f64, min: f64, cell: f64, cells: usize| -> usize {
            if cells <= 1 || cell <= 0.0 {
                return 0;
            }
            // The clamp also swallows the NaN/∞ a degenerate division could
            // produce for points on the max boundary.
            let i = ((coord - min) / cell).floor();
            if i.is_finite() && i > 0.0 {
                (i as usize).min(cells - 1)
            } else {
                0
            }
        };

        let num_tiles = cols * rows;
        let mut tile_of = Vec::with_capacity(points.len());
        let mut counts = vec![0u32; num_tiles];
        let mut content = vec![Bbox::new(Point::ORIGIN, Point::ORIGIN); num_tiles];
        for &p in points {
            let c = axis(p.x, bbox.min().x, cell_w, cols);
            let r = axis(p.y, bbox.min().y, cell_h, rows);
            let t = r * cols + c;
            tile_of.push(t as u32);
            if counts[t] == 0 {
                content[t] = Bbox::new(p, p);
            } else {
                content[t].expand(p);
            }
            counts[t] += 1;
        }
        Some(TileIndex {
            cols,
            rows,
            tile_of,
            counts,
            content,
        })
    }

    /// Builds a tiling sized so that the *average* occupied tile holds
    /// about `target_occupancy` points, clamping the side length to
    /// `[1, max_tiles_per_side]`. Returns `None` under the same conditions
    /// as [`TileIndex::build`].
    #[must_use]
    pub fn with_target_occupancy(
        points: &[Point],
        target_occupancy: usize,
        max_tiles_per_side: usize,
    ) -> Option<Self> {
        if target_occupancy == 0 || max_tiles_per_side == 0 {
            return None;
        }
        let side = (points.len() as f64 / target_occupancy as f64)
            .sqrt()
            .round() as usize;
        Self::build(points, side.clamp(1, max_tiles_per_side))
    }

    /// Number of points indexed.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.tile_of.len()
    }

    /// Total number of tiles (`cols × rows`, including empty ones).
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Tiles per row.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tiles per column.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The tile containing point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn tile_of(&self, i: usize) -> usize {
        self.tile_of[i] as usize
    }

    /// Number of points assigned to tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    #[must_use]
    pub fn count(&self, t: usize) -> usize {
        self.counts[t] as usize
    }

    /// The tight bounding box of tile `t`'s members, or `None` when the
    /// tile is empty.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn content_bbox(&self, t: usize) -> Option<Bbox> {
        (self.counts[t] > 0).then(|| self.content[t])
    }

    /// Chebyshev (grid) distance between tiles `t` and `s`: the number of
    /// tile rings separating them (0 = same tile, 1 = touching neighbors).
    #[inline]
    #[must_use]
    pub fn chebyshev(&self, t: usize, s: usize) -> usize {
        let (tc, tr) = (t % self.cols, t / self.cols);
        let (sc, sr) = (s % self.cols, s / self.cols);
        tc.abs_diff(sc).max(tr.abs_diff(sr))
    }

    /// Conservative `(min, max)` **squared** distance between any member of
    /// tile `t` and any member of tile `s`, from their content bboxes.
    /// `None` when either tile is empty. `t == s` yields `(0, diag²)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `s` is out of range.
    #[must_use]
    pub fn distance_sq_bounds(&self, t: usize, s: usize) -> Option<(f64, f64)> {
        if self.counts[t] == 0 || self.counts[s] == 0 {
            return None;
        }
        let a = &self.content[t];
        let b = &self.content[s];
        // Per-axis separation (0 when the spans overlap) and reach (largest
        // coordinate difference attainable between the two spans).
        let gap = |a_min: f64, a_max: f64, b_min: f64, b_max: f64| -> f64 {
            (b_min - a_max).max(a_min - b_max).max(0.0)
        };
        let reach = |a_min: f64, a_max: f64, b_min: f64, b_max: f64| -> f64 {
            (b_max - a_min).max(a_max - b_min)
        };
        let gx = gap(a.min().x, a.max().x, b.min().x, b.max().x);
        let gy = gap(a.min().y, a.max().y, b.min().y, b.max().y);
        let rx = reach(a.min().x, a.max().x, b.min().x, b.max().x);
        let ry = reach(a.min().y, a.max().y, b.min().y, b.max().y);
        Some((gx * gx + gy * gy, rx * rx + ry * ry))
    }

    /// Iterates the tile ids within Chebyshev distance `ring` of tile `t`
    /// (including `t` itself), in row-major order.
    pub fn neighborhood(&self, t: usize, ring: usize) -> impl Iterator<Item = usize> + '_ {
        let (tc, tr) = (t % self.cols, t / self.cols);
        let c0 = tc.saturating_sub(ring);
        let c1 = (tc + ring).min(self.cols - 1);
        let r0 = tr.saturating_sub(ring);
        let r1 = (tr + ring).min(self.rows - 1);
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| r * self.cols + c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n_side: usize, spacing: f64) -> Vec<Point> {
        (0..n_side * n_side)
            .map(|i| Point::new((i % n_side) as f64 * spacing, (i / n_side) as f64 * spacing))
            .collect()
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert!(TileIndex::build(&[], 4).is_none());
        assert!(TileIndex::build(&[Point::ORIGIN], 0).is_none());
        assert!(TileIndex::with_target_occupancy(&[Point::ORIGIN], 0, 8).is_none());
        assert!(TileIndex::with_target_occupancy(&[Point::ORIGIN], 8, 0).is_none());
    }

    #[test]
    fn every_point_lands_in_exactly_one_tile_with_consistent_counts() {
        let pts = grid_points(12, 1.0);
        let tiles = TileIndex::build(&pts, 4).unwrap();
        assert_eq!(tiles.num_points(), pts.len());
        let mut seen = vec![0usize; tiles.num_tiles()];
        for i in 0..pts.len() {
            seen[tiles.tile_of(i)] += 1;
        }
        for (t, &s) in seen.iter().enumerate() {
            assert_eq!(s, tiles.count(t), "tile {t}");
        }
        assert_eq!(seen.iter().sum::<usize>(), pts.len());
    }

    #[test]
    fn content_bboxes_contain_their_members() {
        let pts = grid_points(9, 0.7);
        let tiles = TileIndex::build(&pts, 3).unwrap();
        for (i, &p) in pts.iter().enumerate() {
            let t = tiles.tile_of(i);
            let bbox = tiles.content_bbox(t).expect("member tile is nonempty");
            assert!(bbox.contains(p), "point {i} outside its tile bbox");
        }
        for t in 0..tiles.num_tiles() {
            assert_eq!(tiles.content_bbox(t).is_some(), tiles.count(t) > 0);
        }
    }

    #[test]
    fn distance_bounds_bracket_all_member_pairs() {
        let pts = grid_points(10, 1.3);
        let tiles = TileIndex::build(&pts, 5).unwrap();
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let (t, s) = (tiles.tile_of(i), tiles.tile_of(j));
                let (lo, hi) = tiles.distance_sq_bounds(t, s).unwrap();
                let d = pts[i].distance_sq(pts[j]);
                assert!(
                    lo <= d && d <= hi,
                    "pair ({i},{j}) d²={d} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn empty_tile_has_no_bounds() {
        // Two far clusters leave middle tiles empty.
        let mut pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.1)];
        pts.push(Point::new(30.0, 30.0));
        let tiles = TileIndex::build(&pts, 6).unwrap();
        let empty = (0..tiles.num_tiles())
            .find(|&t| tiles.count(t) == 0)
            .expect("some tile must be empty");
        let occupied = tiles.tile_of(0);
        assert!(tiles.distance_sq_bounds(empty, occupied).is_none());
        assert!(tiles.distance_sq_bounds(occupied, empty).is_none());
    }

    #[test]
    fn chebyshev_matches_grid_offsets() {
        let pts = grid_points(8, 1.0);
        let tiles = TileIndex::build(&pts, 4).unwrap();
        assert_eq!(tiles.chebyshev(0, 0), 0);
        assert_eq!(tiles.chebyshev(0, 1), 1);
        assert_eq!(tiles.chebyshev(0, 5), 1); // diagonal neighbor
        assert_eq!(tiles.chebyshev(0, 15), 3); // opposite corner of 4×4
    }

    #[test]
    fn neighborhood_is_the_chebyshev_ball() {
        let pts = grid_points(10, 1.0);
        let tiles = TileIndex::build(&pts, 5).unwrap();
        for t in 0..tiles.num_tiles() {
            let near: Vec<usize> = tiles.neighborhood(t, 1).collect();
            for s in 0..tiles.num_tiles() {
                assert_eq!(near.contains(&s), tiles.chebyshev(t, s) <= 1, "t={t} s={s}");
            }
        }
        // Interior tile: full 3×3 ball.
        assert_eq!(tiles.neighborhood(12, 1).count(), 9);
        // Corner tile: clipped to 2×2.
        assert_eq!(tiles.neighborhood(0, 1).count(), 4);
    }

    #[test]
    fn coincident_points_collapse_to_one_tile() {
        let pts = vec![Point::new(2.0, 2.0); 5];
        let tiles = TileIndex::build(&pts, 4).unwrap();
        let t = tiles.tile_of(0);
        for i in 1..5 {
            assert_eq!(tiles.tile_of(i), t);
        }
        assert_eq!(tiles.count(t), 5);
        let (lo, hi) = tiles.distance_sq_bounds(t, t).unwrap();
        assert_eq!((lo, hi), (0.0, 0.0));
    }

    #[test]
    fn target_occupancy_sizes_the_grid() {
        let pts = grid_points(32, 1.0); // 1024 points
        let tiles = TileIndex::with_target_occupancy(&pts, 16, 36).unwrap();
        // sqrt(1024/16) = 8 tiles per side.
        assert_eq!(tiles.cols(), 8);
        assert_eq!(tiles.rows(), 8);
        // The clamp binds for tiny targets.
        let clamped = TileIndex::with_target_occupancy(&pts, 1, 4).unwrap();
        assert_eq!(clamped.cols(), 4);
    }

    #[test]
    fn max_boundary_points_stay_in_range() {
        // Points exactly on the bbox max edge must clamp into the last tile.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ];
        let tiles = TileIndex::build(&pts, 7).unwrap();
        for i in 0..pts.len() {
            assert!(tiles.tile_of(i) < tiles.num_tiles());
        }
        assert_eq!(tiles.tile_of(1), tiles.num_tiles() - 1);
    }
}
