//! A uniform-grid spatial index.

use crate::{Bbox, Point};

/// A uniform-grid spatial index over a fixed set of points.
///
/// The index buckets points into square cells of a fixed size and answers
/// range, annulus, and nearest-neighbor queries by scanning only nearby
/// cells. For the deployments used in SINR simulation (up to tens of
/// thousands of points, reasonably spread) queries are close to `O(1)`
/// amortized; the worst case degenerates gracefully to a full scan.
///
/// The index stores point *indices* into the slice it was built from, so the
/// caller keeps ownership of the coordinates.
///
/// # Example
///
/// ```
/// use fading_geom::{GridIndex, Point};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(10.0, 10.0),
/// ];
/// let index = GridIndex::build(&pts);
/// assert_eq!(index.nearest(Point::new(0.2, 0.0), None), Some(0));
/// assert_eq!(index.nearest(Point::new(0.2, 0.0), Some(0)), Some(1));
///
/// let mut close = index.within(Point::new(0.0, 0.0), 2.0);
/// close.sort_unstable();
/// assert_eq!(close, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    bbox: Bbox,
    cell: f64,
    cols: usize,
    rows: usize,
    /// `buckets[row * cols + col]` lists indices of points in that cell.
    buckets: Vec<Vec<u32>>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index over `points` with an automatically chosen cell size
    /// (targeting an average of about one point per cell).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite.
    #[must_use]
    pub fn build(points: &[Point]) -> Self {
        let bbox = Bbox::containing(points.iter().copied())
            .unwrap_or_else(|| Bbox::new(Point::ORIGIN, Point::ORIGIN));
        let span = bbox.width().max(bbox.height()).max(1e-12);
        // Aim for ~1 point per cell: sqrt(n) cells per side.
        let side = (points.len() as f64).sqrt().ceil().max(1.0);
        let cell = span / side;
        Self::build_with_cell(points, cell)
    }

    /// Builds an index with an explicit cell size.
    ///
    /// Useful when the query radius is known in advance: choosing
    /// `cell ≈ radius` makes range queries scan at most 9 cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite, or if any
    /// coordinate is non-finite.
    #[must_use]
    pub fn build_with_cell(points: &[Point], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell size must be positive and finite"
        );
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} has a non-finite coordinate");
        }
        let bbox = Bbox::containing(points.iter().copied())
            .unwrap_or_else(|| Bbox::new(Point::ORIGIN, Point::ORIGIN));
        let cols = ((bbox.width() / cell).floor() as usize + 1).max(1);
        let rows = ((bbox.height() / cell).floor() as usize + 1).max(1);
        let mut buckets = vec![Vec::new(); cols * rows];
        let mut index = GridIndex {
            bbox,
            cell,
            cols,
            rows,
            buckets: Vec::new(),
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            let (c, r) = index.cell_of(*p);
            buckets[r * cols + c].push(i as u32);
        }
        index.buckets = buckets;
        index
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the index contains no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The bounding box of the indexed points.
    #[must_use]
    pub fn bbox(&self) -> Bbox {
        self.bbox
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.bbox.min().x) / self.cell).floor() as isize;
        let r = ((p.y - self.bbox.min().y) / self.cell).floor() as isize;
        (
            c.clamp(0, self.cols as isize - 1) as usize,
            r.clamp(0, self.rows as isize - 1) as usize,
        )
    }

    /// Indices of all points within Euclidean distance `radius` of `center`
    /// (boundary inclusive). The query point itself is *not* excluded: if an
    /// indexed point coincides with `center` it is reported.
    #[must_use]
    pub fn within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |i| out.push(i));
        out
    }

    /// Calls `f(i)` for every indexed point `i` within `radius` of `center`.
    ///
    /// This is the allocation-free workhorse behind [`GridIndex::within`].
    pub fn for_each_within<F: FnMut(usize)>(&self, center: Point, radius: f64, mut f: F) {
        if self.points.is_empty() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let (c0, r0) = self.cell_of(Point::new(center.x - radius, center.y - radius));
        let (c1, r1) = self.cell_of(Point::new(center.x + radius, center.y + radius));
        for row in r0..=r1 {
            for col in c0..=c1 {
                for &i in &self.buckets[row * self.cols + col] {
                    let i = i as usize;
                    if self.points[i].distance_sq(center) <= r_sq {
                        f(i);
                    }
                }
            }
        }
    }

    /// Number of indexed points `q` with `r_in < distance(center, q) <= r_out`.
    ///
    /// This half-open convention matches the paper's exponential annuli
    /// `A^i_t(u) = B(u, 2^{t+1} 2^i) \ B(u, 2^t 2^i)`.
    #[must_use]
    pub fn count_in_annulus(&self, center: Point, r_in: f64, r_out: f64) -> usize {
        let mut count = 0;
        let r_in_sq = r_in * r_in;
        self.for_each_within(center, r_out, |i| {
            if self.points[i].distance_sq(center) > r_in_sq {
                count += 1;
            }
        });
        count
    }

    /// Index of the point nearest to `query`, optionally excluding one index
    /// (typically the query point itself when it is part of the indexed set).
    ///
    /// Returns `None` if the index is empty or contains only the excluded
    /// point. Ties are broken towards the smaller index.
    #[must_use]
    pub fn nearest(&self, query: Point, exclude: Option<usize>) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let (qc, qr) = self.cell_of(query);
        let mut best: Option<(f64, usize)> = None;
        // Expanding ring search over cells.
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once we have a candidate, we can stop after scanning every cell
            // that could contain something closer: cells at Chebyshev ring
            // distance `ring` are at least `(ring - 1) * cell` away.
            if let Some((best_d_sq, _)) = best {
                let ring_min_dist = (ring as f64 - 1.0).max(0.0) * self.cell;
                if ring_min_dist * ring_min_dist > best_d_sq {
                    break;
                }
            }
            let mut scanned_any = false;
            self.for_each_cell_on_ring(qc, qr, ring, |bucket| {
                scanned_any = true;
                for &i in bucket {
                    let i = i as usize;
                    if Some(i) == exclude {
                        continue;
                    }
                    let d_sq = self.points[i].distance_sq(query);
                    let better = match best {
                        None => true,
                        Some((bd, bi)) => d_sq < bd || (d_sq == bd && i < bi),
                    };
                    if better {
                        best = Some((d_sq, i));
                    }
                }
            });
            if !scanned_any && ring > 0 && best.is_some() {
                break;
            }
        }
        best.map(|(_, i)| i)
    }

    fn for_each_cell_on_ring<'a, F: FnMut(&'a [u32])>(
        &'a self,
        qc: usize,
        qr: usize,
        ring: usize,
        mut f: F,
    ) {
        let qc = qc as isize;
        let qr = qr as isize;
        let ring = ring as isize;
        let visit = |c: isize, r: isize, f: &mut F| {
            if c >= 0 && r >= 0 && (c as usize) < self.cols && (r as usize) < self.rows {
                f(&self.buckets[r as usize * self.cols + c as usize]);
            }
        };
        if ring == 0 {
            visit(qc, qr, &mut f);
            return;
        }
        for c in (qc - ring)..=(qc + ring) {
            visit(c, qr - ring, &mut f);
            visit(c, qr + ring, &mut f);
        }
        for r in (qr - ring + 1)..=(qr + ring - 1) {
            visit(qc - ring, r, &mut f);
            visit(qc + ring, r, &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_nearest(points: &[Point], query: Point, exclude: Option<usize>) -> Option<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != exclude)
            .min_by(|(i, a), (j, b)| {
                a.distance_sq(query)
                    .partial_cmp(&b.distance_sq(query))
                    .unwrap()
                    .then(i.cmp(j))
            })
            .map(|(i, _)| i)
    }

    fn brute_within(points: &[Point], center: Point, radius: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(center) <= radius * radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(Point::ORIGIN, None), None);
        assert!(idx.within(Point::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::build(&[Point::new(5.0, 5.0)]);
        assert_eq!(idx.nearest(Point::ORIGIN, None), Some(0));
        assert_eq!(idx.nearest(Point::ORIGIN, Some(0)), None);
    }

    #[test]
    fn within_boundary_inclusive() {
        let pts = [Point::ORIGIN, Point::new(2.0, 0.0)];
        let idx = GridIndex::build(&pts);
        let hits = idx.within(Point::ORIGIN, 2.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn annulus_excludes_inner_boundary() {
        // r_in < d <= r_out
        let pts = [
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let idx = GridIndex::build(&pts);
        // annulus (1, 3]: contains points at distance 2 and 3 but not 0, 1.
        assert_eq!(idx.count_in_annulus(Point::ORIGIN, 1.0, 3.0), 2);
    }

    #[test]
    fn nearest_matches_brute_force_on_grid_cluster() {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(f64::from(i) * 1.3, f64::from(j) * 0.7));
            }
        }
        let idx = GridIndex::build(&pts);
        for i in 0..pts.len() {
            let got = idx.nearest(pts[i], Some(i));
            let want = brute_nearest(&pts, pts[i], Some(i));
            assert_eq!(
                got.map(|g| pts[g].distance(pts[i])),
                want.map(|w| pts[w].distance(pts[i])),
                "node {i}"
            );
        }
    }

    #[test]
    fn within_matches_brute_force() {
        let mut pts = Vec::new();
        // A deterministic pseudo-random cloud.
        let mut state: u64 = 0x1234_5678;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 33) % 1000) as f64 / 10.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 33) % 1000) as f64 / 10.0;
            pts.push(Point::new(x, y));
        }
        let idx = GridIndex::build(&pts);
        for &radius in &[0.0, 1.0, 7.5, 40.0, 500.0] {
            for &center in &[Point::ORIGIN, Point::new(50.0, 50.0), Point::new(99.0, 1.0)] {
                let mut got = idx.within(center, radius);
                got.sort_unstable();
                let want = brute_within(&pts, center, radius);
                assert_eq!(got, want, "center {center} radius {radius}");
            }
        }
    }

    #[test]
    fn explicit_cell_size_agrees_with_auto() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new(f64::from(i % 7) * 3.0, f64::from(i / 7) * 2.0))
            .collect();
        let a = GridIndex::build(&pts);
        let b = GridIndex::build_with_cell(&pts, 0.5);
        for i in 0..pts.len() {
            assert_eq!(
                a.nearest(pts[i], Some(i)).map(|k| pts[k].distance(pts[i])),
                b.nearest(pts[i], Some(i)).map(|k| pts[k].distance(pts[i]))
            );
        }
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::build_with_cell(&[Point::ORIGIN], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_point_panics() {
        let _ = GridIndex::build(&[Point::new(f64::NAN, 0.0)]);
    }

    #[test]
    fn identical_points_all_reported() {
        let pts = vec![Point::new(1.0, 1.0); 5];
        let idx = GridIndex::build(&pts);
        assert_eq!(idx.within(Point::new(1.0, 1.0), 0.0).len(), 5);
        // Nearest with exclusion still finds a coincident twin at distance 0.
        assert!(idx.nearest(pts[0], Some(0)).is_some());
    }

    #[test]
    fn collinear_degenerate_bbox() {
        // All points on a horizontal line: bbox has zero height.
        let pts: Vec<Point> = (0..20).map(|i| Point::new(f64::from(i), 3.0)).collect();
        let idx = GridIndex::build(&pts);
        for i in 0..pts.len() {
            let n = idx.nearest(pts[i], Some(i)).unwrap();
            assert!((pts[n].distance(pts[i]) - 1.0).abs() < 1e-12);
        }
    }
}
