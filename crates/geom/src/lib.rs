//! # fading-geom
//!
//! Two-dimensional geometry substrate for simulating wireless networks under
//! the SINR (fading) model, as used by *Contention Resolution on a Fading
//! Channel* (Fineman, Gilbert, Kuhn, Newport — PODC 2016).
//!
//! The crate provides:
//!
//! * [`Point`] — a point in the 2-D Euclidean plane, with distance helpers.
//! * [`PointsSoA`] — a structure-of-arrays mirror of a `Vec<Point>` (separate
//!   contiguous `x[]`/`y[]` slices) feeding the channel layer's batched
//!   distance/gain kernels.
//! * [`Bbox`] — axis-aligned bounding boxes.
//! * [`GridIndex`] — a uniform-grid spatial index supporting nearest-neighbor
//!   and range queries over thousands of points in (amortized) constant time
//!   per query for well-distributed inputs.
//! * [`TileIndex`] / [`TileTree`] — fixed tilings (flat, and multi-resolution
//!   with 2×2-merged aggregate levels) with certified tile-pair distance
//!   brackets, the substrate of the far-field interference engines.
//! * [`Deployment`] — an immutable set of node positions together with cached
//!   link structure (nearest neighbors, shortest/longest links, the paper's
//!   link-length ratio `R`).
//! * [`generators`] — seeded, reproducible deployment generators covering the
//!   workloads exercised by the paper's analysis (uniform, clustered, lattice,
//!   exponential chain with controlled `R`, per-link-class pair placements).
//!
//! # Example
//!
//! ```
//! use fading_geom::{Deployment, Point};
//!
//! let deployment = Deployment::uniform_square(100, 50.0, 42);
//! assert_eq!(deployment.len(), 100);
//! // The paper's R: ratio of the longest to the shortest link.
//! assert!(deployment.link_ratio() >= 1.0);
//! // Nearest-neighbor distances drive the paper's link classes.
//! let nn = deployment.nearest_neighbor(0).unwrap();
//! assert!(deployment.point(0).distance(deployment.point(nn)) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod bbox;
mod deployment;
mod error;
pub mod generators;
mod grid;
mod hull;
mod io;
mod point;
mod soa;
mod tiles;
mod tiletree;

pub use bbox::Bbox;
pub use deployment::{Deployment, DeploymentBuilder};
pub use error::GeomError;
pub use grid::GridIndex;
pub use hull::{convex_hull, diameter};
pub use point::Point;
pub use soa::{gather_points, PointsSoA};
pub use tiles::TileIndex;
pub use tiletree::TileTree;

/// Numeric tolerance used when comparing squared distances and other derived
/// floating-point quantities within this crate.
pub const EPSILON: f64 = 1e-9;
