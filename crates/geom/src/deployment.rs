//! Node deployments: point sets with cached link structure.

use serde::{Deserialize, Serialize};

use crate::hull::diameter;
use crate::{GeomError, GridIndex, Point};

/// An immutable set of node positions with cached link structure.
///
/// In the paper's terminology a *link* is any of the `n·(n−1)/2` node pairs;
/// the deployment caches the shortest link, the longest link (the point-set
/// diameter, computed exactly via rotating calipers), their ratio `R`
/// ([`Deployment::link_ratio`]), and every node's nearest neighbor.
///
/// Construct deployments either through the seeded generators re-exported as
/// inherent constructors (e.g. [`Deployment::uniform_square`]) or from raw
/// points via [`Deployment::from_points`] / [`DeploymentBuilder`].
///
/// # Example
///
/// ```
/// use fading_geom::{Deployment, Point};
///
/// let d = Deployment::from_points(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(5.0, 0.0),
/// ])?;
/// assert_eq!(d.min_link(), 1.0);
/// assert_eq!(d.max_link(), 5.0);
/// assert_eq!(d.link_ratio(), 5.0);
/// assert_eq!(d.nearest_neighbor(2), Some(1));
/// # Ok::<(), fading_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    points: Vec<Point>,
    nn_index: Vec<u32>,
    nn_distance: Vec<f64>,
    min_link: f64,
    max_link: f64,
}

impl Deployment {
    /// Builds a deployment from raw points, validating them and computing the
    /// cached link structure.
    ///
    /// # Errors
    ///
    /// * [`GeomError::TooFewNodes`] if fewer than two points are given.
    /// * [`GeomError::NonFinitePoint`] if any coordinate is NaN or infinite.
    /// * [`GeomError::CoincidentNodes`] if two points coincide (the shortest
    ///   link would be zero and `R` undefined).
    pub fn from_points(points: Vec<Point>) -> Result<Self, GeomError> {
        if points.len() < 2 {
            return Err(GeomError::TooFewNodes { got: points.len() });
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(GeomError::NonFinitePoint { index: i });
            }
        }
        let index = GridIndex::build(&points);
        let mut nn_index = Vec::with_capacity(points.len());
        let mut nn_distance = Vec::with_capacity(points.len());
        let mut min_link = f64::INFINITY;
        for (i, &p) in points.iter().enumerate() {
            let Some(j) = index.nearest(p, Some(i)) else {
                unreachable!("n >= 2 guarantees a neighbor")
            };
            let d = p.distance(points[j]);
            if d == 0.0 {
                return Err(GeomError::CoincidentNodes {
                    first: i.min(j),
                    second: i.max(j),
                });
            }
            nn_index.push(j as u32);
            nn_distance.push(d);
            min_link = min_link.min(d);
        }
        let max_link = diameter(&points);
        Ok(Deployment {
            points,
            nn_index,
            nn_distance,
            min_link,
            max_link,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the deployment has no nodes.
    ///
    /// Note that [`Deployment::from_points`] rejects deployments with fewer
    /// than two nodes, so this is always `false` for constructed values; it
    /// exists for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// All node positions, indexed by node id.
    #[must_use]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Index of the node nearest to node `i` (over the *whole* deployment,
    /// not just active nodes — per-round active nearest neighbors are
    /// recomputed by the analysis crate).
    ///
    /// Returns `None` if `i` is out of bounds.
    #[must_use]
    pub fn nearest_neighbor(&self, i: usize) -> Option<usize> {
        self.nn_index.get(i).map(|&j| j as usize)
    }

    /// Distance from node `i` to its nearest neighbor.
    ///
    /// Returns `None` if `i` is out of bounds.
    #[must_use]
    pub fn nn_distance(&self, i: usize) -> Option<f64> {
        self.nn_distance.get(i).copied()
    }

    /// Length of the shortest link (smallest pairwise distance).
    #[must_use]
    pub fn min_link(&self) -> f64 {
        self.min_link
    }

    /// Length of the longest link (the point-set diameter).
    #[must_use]
    pub fn max_link(&self) -> f64 {
        self.max_link
    }

    /// The paper's `R`: ratio of the longest to the shortest link.
    ///
    /// The paper normalizes the shortest link to `1`, making `R` the longest
    /// link; [`Deployment::normalized`] applies that normalization.
    #[must_use]
    pub fn link_ratio(&self) -> f64 {
        self.max_link / self.min_link
    }

    /// `⌈log₂ R⌉ + 1`, the number of link classes `d_0 … d_{⌈log R⌉}` the
    /// paper's analysis partitions nodes into.
    #[must_use]
    pub fn num_link_classes(&self) -> usize {
        debug_assert!(self.link_ratio() >= 1.0 - crate::EPSILON);
        (self.link_ratio().log2().ceil().max(0.0) as usize) + 1
    }

    /// Returns a copy rescaled so that the shortest link has length exactly
    /// `1` (the paper's normalization), anchored at the original origin.
    ///
    /// ```
    /// use fading_geom::{Deployment, Point};
    /// let d = Deployment::from_points(vec![
    ///     Point::new(0.0, 0.0),
    ///     Point::new(4.0, 0.0),
    ///     Point::new(10.0, 0.0),
    /// ]).unwrap();
    /// let n = d.normalized();
    /// assert!((n.min_link() - 1.0).abs() < 1e-12);
    /// assert!((n.link_ratio() - d.link_ratio()).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn normalized(&self) -> Deployment {
        let scale = 1.0 / self.min_link;
        let points = self.points.iter().map(|&p| p * scale).collect();
        match Deployment::from_points(points) {
            Ok(d) => d,
            Err(_) => unreachable!("rescaling by a positive finite factor preserves validity"),
        }
    }

    /// Builds a fresh spatial index over the node positions.
    #[must_use]
    pub fn grid_index(&self) -> GridIndex {
        GridIndex::build(&self.points)
    }
}

/// Incremental builder for [`Deployment`].
///
/// # Example
///
/// ```
/// use fading_geom::{DeploymentBuilder, Point};
///
/// let d = DeploymentBuilder::new()
///     .point(Point::new(0.0, 0.0))
///     .point(Point::new(2.0, 0.0))
///     .points([Point::new(0.0, 2.0), Point::new(2.0, 2.0)])
///     .build()?;
/// assert_eq!(d.len(), 4);
/// # Ok::<(), fading_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeploymentBuilder {
    points: Vec<Point>,
}

impl DeploymentBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a single point.
    pub fn point(&mut self, p: Point) -> &mut Self {
        self.points.push(p);
        self
    }

    /// Adds many points.
    pub fn points<I: IntoIterator<Item = Point>>(&mut self, pts: I) -> &mut Self {
        self.points.extend(pts);
        self
    }

    /// Finalizes the deployment.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Deployment::from_points`].
    pub fn build(&self) -> Result<Deployment, GeomError> {
        Deployment::from_points(self.points.clone())
    }
}

impl FromIterator<Point> for DeploymentBuilder {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        DeploymentBuilder {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<Point> for DeploymentBuilder {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_too_few_nodes() {
        assert!(matches!(
            Deployment::from_points(vec![]),
            Err(GeomError::TooFewNodes { got: 0 })
        ));
        assert!(matches!(
            Deployment::from_points(vec![Point::ORIGIN]),
            Err(GeomError::TooFewNodes { got: 1 })
        ));
    }

    #[test]
    fn rejects_coincident_nodes() {
        let err = Deployment::from_points(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 1.0),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            GeomError::CoincidentNodes {
                first: 0,
                second: 2
            }
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let err =
            Deployment::from_points(vec![Point::ORIGIN, Point::new(f64::NAN, 0.0)]).unwrap_err();
        assert!(matches!(err, GeomError::NonFinitePoint { index: 1 }));
    }

    #[test]
    fn two_node_link_structure() {
        let d = Deployment::from_points(vec![Point::ORIGIN, Point::new(3.0, 0.0)]).unwrap();
        assert_eq!(d.min_link(), 3.0);
        assert_eq!(d.max_link(), 3.0);
        assert_eq!(d.link_ratio(), 1.0);
        assert_eq!(d.num_link_classes(), 1);
        assert_eq!(d.nearest_neighbor(0), Some(1));
        assert_eq!(d.nearest_neighbor(1), Some(0));
    }

    #[test]
    fn line_nearest_neighbors() {
        // 0---1-2 : node 0 at 0, node 1 at 10, node 2 at 12.
        let d = Deployment::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(12.0, 0.0),
        ])
        .unwrap();
        assert_eq!(d.nearest_neighbor(0), Some(1));
        assert_eq!(d.nearest_neighbor(1), Some(2));
        assert_eq!(d.nearest_neighbor(2), Some(1));
        assert_eq!(d.min_link(), 2.0);
        assert_eq!(d.max_link(), 12.0);
        assert_eq!(d.link_ratio(), 6.0);
        // ceil(log2 6) + 1 = 3 + 1 = 4
        assert_eq!(d.num_link_classes(), 4);
    }

    #[test]
    fn normalization_sets_min_link_to_one() {
        let d = Deployment::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 5.0),
            Point::new(0.0, 20.0),
        ])
        .unwrap();
        let n = d.normalized();
        assert!((n.min_link() - 1.0).abs() < 1e-12);
        assert!((n.link_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn builder_accumulates() {
        let mut b = DeploymentBuilder::new();
        b.point(Point::ORIGIN);
        b.points((1..4).map(|i| Point::new(f64::from(i), 0.0)));
        let d = b.build().unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.min_link(), 1.0);
    }

    #[test]
    fn builder_from_iterator() {
        let b: DeploymentBuilder = (0..3)
            .map(|i| Point::new(f64::from(i) * 2.0, 0.0))
            .collect();
        let d = b.build().unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn nn_distance_matches_nn_index() {
        let d = Deployment::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 7.0),
        ])
        .unwrap();
        for i in 0..3 {
            let j = d.nearest_neighbor(i).unwrap();
            assert_eq!(d.nn_distance(i).unwrap(), d.point(i).distance(d.point(j)));
        }
        assert_eq!(d.nearest_neighbor(99), None);
        assert_eq!(d.nn_distance(99), None);
    }

    #[test]
    fn min_link_is_min_nn_distance() {
        let d = Deployment::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(10.0, 10.0),
            Point::new(13.0, 10.0),
        ])
        .unwrap();
        assert_eq!(d.min_link(), 0.5);
    }
}
