//! Structure-of-arrays point storage for batched geometry kernels.
//!
//! The channel layer's hot loops (transmitter scans, gain-table builds,
//! near-ring scans) stream squared distances from one listener to many
//! stored points. Over `&[Point]` (array-of-structs) each iteration loads
//! an interleaved `(x, y)` pair; over [`PointsSoA`] the `x` and `y`
//! coordinates live in separate contiguous slices, so the autovectorizer
//! can issue wide loads and keep the `dx² + dy²` arithmetic branch-free.
//!
//! The struct is a *mirror*, not a replacement: the canonical
//! representation everywhere in the workspace remains `Vec<Point>`, and
//! [`PointsSoA::matches`] checks bit-level coherence with it (the same
//! fingerprint discipline the channel engines use for their caches).
//! Mutations ([`PointsSoA::set`], [`PointsSoA::push`]) exist so future
//! mobility models can maintain the mirror incrementally instead of
//! rebuilding it per round.

use crate::Point;

/// Structure-of-arrays mirror of a `Vec<Point>`: the same points, stored
/// as two contiguous coordinate slices.
///
/// # Example
///
/// ```
/// use fading_geom::{Point, PointsSoA};
///
/// let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
/// let soa = PointsSoA::from_points(&pts);
/// assert_eq!(soa.xs(), &[1.0, 3.0]);
/// assert_eq!(soa.ys(), &[2.0, 4.0]);
/// assert!(soa.matches(&pts));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointsSoA {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PointsSoA {
    /// An empty mirror.
    #[must_use]
    pub fn new() -> Self {
        PointsSoA::default()
    }

    /// Builds the mirror of `points`, preserving order.
    #[must_use]
    pub fn from_points(points: &[Point]) -> Self {
        PointsSoA {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the mirror holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The contiguous `x` coordinates, in point order.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The contiguous `y` coordinates, in point order.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The point at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Overwrites the point at index `i` (mobility-style update).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, p: Point) {
        self.xs[i] = p.x;
        self.ys[i] = p.y;
    }

    /// Appends a point (late-arrival churn).
    pub fn push(&mut self, p: Point) {
        self.xs.push(p.x);
        self.ys.push(p.y);
    }

    /// Drops all points, keeping the allocations.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
    }

    /// Bit-level coherence check against the canonical `&[Point]`: same
    /// length and bit-identical coordinates at every index (`to_bits`
    /// comparison, so `NaN`s and signed zeros cannot hide a divergence).
    #[must_use]
    pub fn matches(&self, points: &[Point]) -> bool {
        self.len() == points.len()
            && points.iter().enumerate().all(|(i, p)| {
                self.xs[i].to_bits() == p.x.to_bits() && self.ys[i].to_bits() == p.y.to_bits()
            })
    }

    /// Materializes the mirror back into the canonical representation.
    #[must_use]
    pub fn to_points(&self) -> Vec<Point> {
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(&x, &y)| Point::new(x, y))
            .collect()
    }

    /// Gathers the coordinates of `ids` (indices into this mirror) into
    /// the contiguous scratch slices `out_x`/`out_y`, replacing their
    /// contents. The output order is `ids` order, so downstream folds over
    /// the scratch reproduce the canonical slice-order accumulation.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather(&self, ids: &[usize], out_x: &mut Vec<f64>, out_y: &mut Vec<f64>) {
        out_x.clear();
        out_y.clear();
        out_x.extend(ids.iter().map(|&i| self.xs[i]));
        out_y.extend(ids.iter().map(|&i| self.ys[i]));
    }
}

/// Gathers the coordinates of `ids` (indices into `points`) into the
/// contiguous scratch slices `out_x`/`out_y`, replacing their contents —
/// the AoS counterpart of [`PointsSoA::gather`] for callers that only
/// hold the canonical `&[Point]`.
///
/// # Panics
///
/// Panics if any id is out of range.
pub fn gather_points(points: &[Point], ids: &[usize], out_x: &mut Vec<f64>, out_y: &mut Vec<f64>) {
    out_x.clear();
    out_y.clear();
    out_x.extend(ids.iter().map(|&i| points[i].x));
    out_y.extend(ids.iter().map(|&i| points[i].y));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_matches() {
        let pts = vec![
            Point::new(0.0, -1.0),
            Point::new(2.5, 3.25),
            Point::new(-7.0, 0.0),
        ];
        let soa = PointsSoA::from_points(&pts);
        assert_eq!(soa.len(), 3);
        assert!(!soa.is_empty());
        assert!(soa.matches(&pts));
        assert_eq!(soa.to_points(), pts);
        assert_eq!(soa.point(1), pts[1]);
    }

    #[test]
    fn mutation_keeps_coherence_when_mirrored() {
        let mut pts = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let mut soa = PointsSoA::from_points(&pts);
        pts[0] = Point::new(-3.0, 4.0);
        assert!(!soa.matches(&pts), "divergence must be detected");
        soa.set(0, pts[0]);
        assert!(soa.matches(&pts));
        pts.push(Point::new(9.0, 9.0));
        soa.push(pts[2]);
        assert!(soa.matches(&pts));
    }

    #[test]
    fn matches_detects_negative_zero_and_nan() {
        let pts = vec![Point::new(0.0, 1.0)];
        let mut soa = PointsSoA::from_points(&pts);
        soa.set(0, Point::new(-0.0, 1.0));
        assert!(!soa.matches(&pts), "-0.0 differs from 0.0 at the bit level");
        let nan = vec![Point::new(f64::NAN, 1.0)];
        let soa = PointsSoA::from_points(&nan);
        assert!(soa.matches(&nan), "identical NaN bits must match");
    }

    #[test]
    fn gather_follows_id_order() {
        let pts = vec![
            Point::new(0.0, 10.0),
            Point::new(1.0, 11.0),
            Point::new(2.0, 12.0),
        ];
        let soa = PointsSoA::from_points(&pts);
        let (mut xs, mut ys) = (vec![99.0], vec![99.0]);
        soa.gather(&[2, 0], &mut xs, &mut ys);
        assert_eq!(xs, vec![2.0, 0.0]);
        assert_eq!(ys, vec![12.0, 10.0]);
        gather_points(&pts, &[1, 1], &mut xs, &mut ys);
        assert_eq!(xs, vec![1.0, 1.0]);
        assert_eq!(ys, vec![11.0, 11.0]);
    }

    #[test]
    fn clear_keeps_capacity_semantics() {
        let mut soa = PointsSoA::from_points(&[Point::ORIGIN, Point::new(1.0, 1.0)]);
        soa.clear();
        assert!(soa.is_empty());
        assert!(soa.matches(&[]));
    }
}
