//! Error types for geometry and deployment construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating geometric structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A deployment requires at least two nodes to define any link.
    TooFewNodes {
        /// Number of nodes that were supplied.
        got: usize,
    },
    /// Two nodes were placed at (numerically) identical positions, which
    /// makes the shortest link zero and the link ratio `R` undefined.
    CoincidentNodes {
        /// Index of the first node in the coincident pair.
        first: usize,
        /// Index of the second node in the coincident pair.
        second: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFinitePoint {
        /// Index of the offending node.
        index: usize,
    },
    /// A generator parameter was out of its documented range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
    /// A CSV deployment file had a malformed line.
    ParseCsv {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::TooFewNodes { got } => {
                write!(f, "deployment needs at least 2 nodes, got {got}")
            }
            GeomError::CoincidentNodes { first, second } => {
                write!(f, "nodes {first} and {second} occupy the same position")
            }
            GeomError::NonFinitePoint { index } => {
                write!(f, "node {index} has a non-finite coordinate")
            }
            GeomError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            GeomError::ParseCsv { line, reason } => {
                write!(f, "csv line {line}: {reason}")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            GeomError::TooFewNodes { got: 1 },
            GeomError::CoincidentNodes {
                first: 0,
                second: 3,
            },
            GeomError::NonFinitePoint { index: 2 },
            GeomError::InvalidParameter {
                name: "n",
                reason: "must be positive",
            },
            GeomError::ParseCsv {
                line: 3,
                reason: "x is not a number",
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
