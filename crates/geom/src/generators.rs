//! Seeded, reproducible deployment generators.
//!
//! Each generator covers a workload family used somewhere in the paper's
//! analysis or in the reproduction experiments:
//!
//! * [`uniform_square`] / [`uniform_disk`] / [`uniform_density`] — the
//!   "typical feasible deployment" for which `R` is polynomial in `n`.
//! * [`grid_lattice`] — regular placements with optional jitter.
//! * [`clustered`] — multi-scale densities, stressing many link classes.
//! * [`exponential_chain`] / [`geometric_line`] — adversarial placements that
//!   maximize `R` with few nodes (the footnote-1 regime where
//!   `log R ≫ log n`).
//! * [`geometric_pairs`] — direct control over the link-class profile
//!   `n_0, n_1, …`, used to validate Lemma 6.
//! * [`halton`] / [`poisson_disk`] — quasi-random and blue-noise placements
//!   with controlled shortest links, isolating density effects from
//!   link-class effects.
//! * [`two_nodes`] / [`ring`] — small structured cases.
//!
//! All generators take an explicit `seed` where randomness is involved and
//! are fully deterministic for a given seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Deployment, GeomError, Point};

/// `n` points placed uniformly at random in the axis-aligned square
/// `[0, side] × [0, side]`.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n < 2` or `side <= 0`, and
/// propagates validation errors (coincident points are astronomically
/// unlikely but checked).
pub fn uniform_square(n: usize, side: f64, seed: u64) -> Result<Deployment, GeomError> {
    if n < 2 {
        return Err(GeomError::InvalidParameter {
            name: "n",
            reason: "need at least 2 nodes",
        });
    }
    if side.is_nan() || side <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "side",
            reason: "must be strictly positive",
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    Deployment::from_points(points)
}

/// `n` points uniformly at random in a disk of the given `radius` centered at
/// the origin (area-uniform, via the square-root radius trick).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n < 2` or `radius <= 0`.
pub fn uniform_disk(n: usize, radius: f64, seed: u64) -> Result<Deployment, GeomError> {
    if n < 2 {
        return Err(GeomError::InvalidParameter {
            name: "n",
            reason: "need at least 2 nodes",
        });
    }
    if radius.is_nan() || radius <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "radius",
            reason: "must be strictly positive",
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let r = radius * rng.gen::<f64>().sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            Point::from_polar(r, theta)
        })
        .collect();
    Deployment::from_points(points)
}

/// `n` points uniformly at random in a square sized so that the expected
/// density (points per unit area) equals `density`.
///
/// Keeping density fixed while growing `n` keeps the local contention profile
/// stable — the regime of experiment E1 (rounds vs. `n`).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n < 2` or `density <= 0`.
pub fn uniform_density(n: usize, density: f64, seed: u64) -> Result<Deployment, GeomError> {
    if density.is_nan() || density <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "density",
            reason: "must be strictly positive",
        });
    }
    let side = (n as f64 / density).sqrt();
    uniform_square(n, side, seed)
}

/// A `cols × rows` lattice with the given `spacing`, each point jittered
/// uniformly by up to `jitter_frac * spacing` in each coordinate.
///
/// With `jitter_frac = 0` the lattice is exact (and deterministic regardless
/// of seed).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if the lattice would have fewer
/// than 2 points, `spacing <= 0`, or `jitter_frac ∉ [0, 0.49]` (larger jitter
/// could make points coincide or swap cells).
pub fn grid_lattice(
    cols: usize,
    rows: usize,
    spacing: f64,
    jitter_frac: f64,
    seed: u64,
) -> Result<Deployment, GeomError> {
    if cols * rows < 2 {
        return Err(GeomError::InvalidParameter {
            name: "cols*rows",
            reason: "need at least 2 lattice points",
        });
    }
    if spacing.is_nan() || spacing <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "spacing",
            reason: "must be strictly positive",
        });
    }
    if !(0.0..=0.49).contains(&jitter_frac) {
        return Err(GeomError::InvalidParameter {
            name: "jitter_frac",
            reason: "must lie in [0, 0.49]",
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(cols * rows);
    let j = jitter_frac * spacing;
    for r in 0..rows {
        for c in 0..cols {
            let jx = if j > 0.0 { rng.gen_range(-j..j) } else { 0.0 };
            let jy = if j > 0.0 { rng.gen_range(-j..j) } else { 0.0 };
            points.push(Point::new(c as f64 * spacing + jx, r as f64 * spacing + jy));
        }
    }
    Deployment::from_points(points)
}

/// `clusters` Gaussian clusters of `per_cluster` points each. Cluster centers
/// are uniform in `[0, span]²`; members are normally distributed around their
/// center with standard deviation `sigma` (Box–Muller).
///
/// Produces deployments whose nearest-neighbor distances span many link
/// classes: tight intra-cluster links plus long inter-cluster links.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] on non-positive dimensions or a
/// total of fewer than 2 points.
pub fn clustered(
    clusters: usize,
    per_cluster: usize,
    sigma: f64,
    span: f64,
    seed: u64,
) -> Result<Deployment, GeomError> {
    if clusters * per_cluster < 2 {
        return Err(GeomError::InvalidParameter {
            name: "clusters*per_cluster",
            reason: "need at least 2 nodes in total",
        });
    }
    if sigma.is_nan() || sigma <= 0.0 || span.is_nan() || span <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "sigma/span",
            reason: "must be strictly positive",
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(clusters * per_cluster);
    for _ in 0..clusters {
        let center = Point::new(rng.gen_range(0.0..span), rng.gen_range(0.0..span));
        for _ in 0..per_cluster {
            let (gx, gy) = gaussian_pair(&mut rng);
            points.push(Point::new(center.x + sigma * gx, center.y + sigma * gy));
        }
    }
    Deployment::from_points(points)
}

/// A standard normal pair via Box–Muller.
fn gaussian_pair(rng: &mut SmallRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// A deterministic chain of `num_gaps + 1` collinear nodes whose consecutive
/// gaps double: `1, 2, 4, …, 2^{num_gaps-1}`.
///
/// This is the adversarial regime of the paper's footnote 1: with only
/// `n = num_gaps + 1` nodes the link ratio is `R = 2^{num_gaps} − 1`,
/// exponential in `n`, and every nonempty link class is occupied.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `num_gaps == 0` or if
/// `num_gaps > 1000` (coordinates would overflow `f64` precision usefully).
pub fn exponential_chain(num_gaps: usize) -> Result<Deployment, GeomError> {
    if num_gaps == 0 {
        return Err(GeomError::InvalidParameter {
            name: "num_gaps",
            reason: "need at least 1 gap",
        });
    }
    if num_gaps > 1000 {
        return Err(GeomError::InvalidParameter {
            name: "num_gaps",
            reason: "must be at most 1000",
        });
    }
    let mut points = Vec::with_capacity(num_gaps + 1);
    let mut x = 0.0;
    points.push(Point::new(0.0, 0.0));
    for k in 0..num_gaps {
        x += 2f64.powi(k as i32);
        points.push(Point::new(x, 0.0));
    }
    Deployment::from_points(points)
}

/// `n` collinear nodes whose consecutive gaps grow geometrically so that the
/// deployment's link ratio is (approximately) the requested `ratio`.
///
/// The growth factor `q` solving `1 + q + … + q^{n-2} = ratio` is found by
/// bisection. This gives independent control of `n` and `R`, the knob needed
/// by experiment E2 (rounds vs. `R` at fixed `n`).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n < 2` or
/// `ratio < n - 1` (with `n` nodes and unit minimum gap the diameter is at
/// least `n − 1`).
///
/// # Example
///
/// ```
/// use fading_geom::generators::geometric_line;
/// let d = geometric_line(16, 1024.0)?;
/// assert_eq!(d.len(), 16);
/// assert!((d.link_ratio() - 1024.0).abs() / 1024.0 < 1e-6);
/// # Ok::<(), fading_geom::GeomError>(())
/// ```
pub fn geometric_line(n: usize, ratio: f64) -> Result<Deployment, GeomError> {
    if n < 2 {
        return Err(GeomError::InvalidParameter {
            name: "n",
            reason: "need at least 2 nodes",
        });
    }
    if ratio.is_nan() || ratio < (n - 1) as f64 {
        return Err(GeomError::InvalidParameter {
            name: "ratio",
            reason: "must be at least n - 1 for unit minimum gap",
        });
    }
    let gaps = n - 1;
    // Solve sum_{k=0}^{gaps-1} q^k = ratio for q >= 1 by bisection.
    let target = ratio;
    let geom_sum = |q: f64| -> f64 {
        if (q - 1.0).abs() < 1e-12 {
            gaps as f64
        } else {
            (q.powi(gaps as i32) - 1.0) / (q - 1.0)
        }
    };
    let mut lo = 1.0;
    let mut hi = target.max(2.0); // geom_sum(hi) >= hi^{gaps-1} >= target for gaps >= 2
    if gaps == 1 {
        // Single gap: diameter equals the gap, so R = 1 regardless; only
        // ratio == 1 is representable.
        let d = Deployment::from_points(vec![Point::ORIGIN, Point::new(1.0, 0.0)])?;
        return Ok(d);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if geom_sum(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let q = 0.5 * (lo + hi);
    let mut points = Vec::with_capacity(n);
    let mut x = 0.0;
    points.push(Point::new(0.0, 0.0));
    let mut gap = 1.0;
    for _ in 0..gaps {
        x += gap;
        points.push(Point::new(x, 0.0));
        gap *= q;
    }
    Deployment::from_points(points)
}

/// Direct control over the paper's link-class profile: for each entry
/// `class_sizes[i] = k`, places `k` *pairs* of nodes separated by
/// `1.5 · 2^i` (inside class `d_i = [2^i, 2^{i+1})`).
///
/// Pairs are laid out on a global super-grid spaced far enough apart
/// (`8 × 2^{i_max+1}`) that each node's nearest neighbor is always its own
/// partner, so node counts per class are exactly `2 · class_sizes[i]`.
/// Pair orientations are randomized with `seed`.
///
/// Used by experiment E7 to construct profiles with `n_{<i} ≤ δ · n_i` and
/// validate Lemma 6 ("at least half of `V_i` is good").
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if every class is empty or more
/// than 40 classes are requested (coordinates would lose precision).
pub fn geometric_pairs(class_sizes: &[usize], seed: u64) -> Result<Deployment, GeomError> {
    let total_pairs: usize = class_sizes.iter().sum();
    if total_pairs == 0 {
        return Err(GeomError::InvalidParameter {
            name: "class_sizes",
            reason: "at least one class must be nonempty",
        });
    }
    if class_sizes.len() > 40 {
        return Err(GeomError::InvalidParameter {
            name: "class_sizes",
            reason: "at most 40 link classes supported",
        });
    }
    let i_max = class_sizes.len() - 1;
    let super_spacing = 8.0 * 2f64.powi(i_max as i32 + 1);
    let grid_side = (total_pairs as f64).sqrt().ceil() as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(2 * total_pairs);
    let mut slot = 0usize;
    for (i, &k) in class_sizes.iter().enumerate() {
        let sep = 1.5 * 2f64.powi(i as i32);
        for _ in 0..k {
            let gx = (slot % grid_side) as f64 * super_spacing;
            let gy = (slot / grid_side) as f64 * super_spacing;
            slot += 1;
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let anchor = Point::new(gx, gy);
            points.push(anchor);
            points.push(anchor + Point::from_polar(sep, theta));
        }
    }
    Deployment::from_points(points)
}

/// Exactly two nodes at distance `d` (the paper's §4 two-player setting).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `d <= 0` or non-finite.
pub fn two_nodes(d: f64) -> Result<Deployment, GeomError> {
    if !d.is_finite() || d <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "d",
            reason: "must be strictly positive and finite",
        });
    }
    Deployment::from_points(vec![Point::ORIGIN, Point::new(d, 0.0)])
}

/// `n` nodes evenly spaced on a circle of the given `radius`.
///
/// Every node's nearest-neighbor distance is identical, so all nodes share a
/// single link class — a maximally symmetric hard case.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n < 2` or `radius <= 0`.
pub fn ring(n: usize, radius: f64) -> Result<Deployment, GeomError> {
    if n < 2 {
        return Err(GeomError::InvalidParameter {
            name: "n",
            reason: "need at least 2 nodes",
        });
    }
    if radius.is_nan() || radius <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "radius",
            reason: "must be strictly positive",
        });
    }
    let points = (0..n)
        .map(|k| Point::from_polar(radius, std::f64::consts::TAU * k as f64 / n as f64))
        .collect();
    Deployment::from_points(points)
}

impl Deployment {
    /// Convenience constructor: uniform placement in a `side × side` square.
    /// See [`uniform_square`].
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (`n < 2`, `side <= 0`) or in the
    /// astronomically unlikely event of coincident random points. Use
    /// [`uniform_square`] for a fallible version.
    #[must_use]
    #[allow(clippy::expect_used)] // panic is this constructor's documented contract
    pub fn uniform_square(n: usize, side: f64, seed: u64) -> Deployment {
        uniform_square(n, side, seed).expect("valid uniform_square parameters")
    }

    /// Convenience constructor: uniform placement at fixed density.
    /// See [`uniform_density`].
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters. Use [`uniform_density`] for a fallible
    /// version.
    #[must_use]
    #[allow(clippy::expect_used)] // panic is this constructor's documented contract
    pub fn uniform_density(n: usize, density: f64, seed: u64) -> Deployment {
        uniform_density(n, density, seed).expect("valid uniform_density parameters")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_square_is_deterministic_per_seed() {
        let a = uniform_square(50, 10.0, 7).unwrap();
        let b = uniform_square(50, 10.0, 7).unwrap();
        let c = uniform_square(50, 10.0, 8).unwrap();
        assert_eq!(a.points(), b.points());
        assert_ne!(a.points(), c.points());
    }

    #[test]
    fn uniform_square_within_bounds() {
        let d = uniform_square(200, 25.0, 3).unwrap();
        for p in d.points() {
            assert!((0.0..25.0).contains(&p.x));
            assert!((0.0..25.0).contains(&p.y));
        }
    }

    #[test]
    fn uniform_disk_within_radius() {
        let d = uniform_disk(200, 5.0, 11).unwrap();
        for p in d.points() {
            assert!(p.norm() <= 5.0 + 1e-12);
        }
    }

    #[test]
    fn uniform_density_scales_side() {
        let d = uniform_density(100, 1.0, 5).unwrap();
        for p in d.points() {
            assert!(p.x < 10.0 && p.y < 10.0);
        }
    }

    #[test]
    fn lattice_exact_when_unjittered() {
        let d = grid_lattice(3, 2, 2.0, 0.0, 99).unwrap();
        assert_eq!(d.len(), 6);
        assert_eq!(d.min_link(), 2.0);
        assert_eq!(d.point(4), Point::new(2.0, 2.0));
    }

    #[test]
    fn lattice_jitter_bounds() {
        let d = grid_lattice(10, 10, 1.0, 0.25, 1).unwrap();
        for (i, p) in d.points().iter().enumerate() {
            let c = (i % 10) as f64;
            let r = (i / 10) as f64;
            assert!((p.x - c).abs() <= 0.25 + 1e-12);
            assert!((p.y - r).abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn lattice_rejects_large_jitter() {
        assert!(grid_lattice(2, 2, 1.0, 0.6, 0).is_err());
    }

    #[test]
    fn clustered_has_expected_count() {
        let d = clustered(4, 25, 0.5, 100.0, 13).unwrap();
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn exponential_chain_ratio() {
        // gaps 1,2,4: diameter 7, min link 1 => R = 7
        let d = exponential_chain(3).unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.min_link(), 1.0);
        assert_eq!(d.link_ratio(), 7.0);
    }

    #[test]
    fn exponential_chain_rejects_zero() {
        assert!(exponential_chain(0).is_err());
    }

    #[test]
    fn geometric_line_hits_target_ratio() {
        for &(n, ratio) in &[(8usize, 64.0f64), (16, 4096.0), (32, 1e6), (10, 9.0)] {
            let d = geometric_line(n, ratio).unwrap();
            assert_eq!(d.len(), n);
            let rel = (d.link_ratio() - ratio).abs() / ratio;
            assert!(rel < 1e-6, "n={n} ratio={ratio} got={}", d.link_ratio());
        }
    }

    #[test]
    fn geometric_line_rejects_unreachable_ratio() {
        assert!(geometric_line(10, 5.0).is_err());
    }

    #[test]
    fn geometric_pairs_class_profile() {
        // 3 pairs in class 0, 2 pairs in class 2.
        let d = geometric_pairs(&[3, 0, 2], 5).unwrap();
        assert_eq!(d.len(), 10);
        // Each node's nearest neighbor must be its pair partner.
        for pair in 0..5 {
            let a = 2 * pair;
            let b = 2 * pair + 1;
            assert_eq!(d.nearest_neighbor(a), Some(b), "pair {pair}");
            assert_eq!(d.nearest_neighbor(b), Some(a), "pair {pair}");
        }
        // Class membership: nn distance in [2^i, 2^{i+1}).
        let mut class0 = 0;
        let mut class2 = 0;
        for i in 0..d.len() {
            let nn = d.nn_distance(i).unwrap();
            if (1.0..2.0).contains(&nn) {
                class0 += 1;
            } else if (4.0..8.0).contains(&nn) {
                class2 += 1;
            } else {
                panic!("node {i} has nn distance {nn} outside expected classes");
            }
        }
        assert_eq!(class0, 6);
        assert_eq!(class2, 4);
    }

    #[test]
    fn two_nodes_distance() {
        let d = two_nodes(3.5).unwrap();
        assert_eq!(d.min_link(), 3.5);
        assert!(two_nodes(0.0).is_err());
        assert!(two_nodes(-1.0).is_err());
    }

    #[test]
    fn ring_single_link_class() {
        let d = ring(12, 10.0).unwrap();
        assert_eq!(d.len(), 12);
        let first = d.nn_distance(0).unwrap();
        for i in 1..12 {
            assert!((d.nn_distance(i).unwrap() - first).abs() < 1e-9);
        }
    }

    #[test]
    fn convenience_constructors_match_free_functions() {
        let a = Deployment::uniform_square(30, 9.0, 17);
        let b = uniform_square(30, 9.0, 17).unwrap();
        assert_eq!(a.points(), b.points());
    }
}

/// `n` points of a Halton (2, 3) low-discrepancy sequence scaled to
/// `[0, side]²`, optionally jittered by up to `jitter` in each coordinate.
///
/// Quasi-random placements have near-uniform local density without the
/// clumping (and the resulting tiny shortest links) of i.i.d. uniform
/// sampling, so `R` stays `Θ(√n)` — useful for isolating density effects
/// from link-class effects in the experiments.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n < 2`, `side <= 0`, or
/// `jitter < 0`.
pub fn halton(n: usize, side: f64, jitter: f64, seed: u64) -> Result<Deployment, GeomError> {
    if n < 2 {
        return Err(GeomError::InvalidParameter {
            name: "n",
            reason: "need at least 2 nodes",
        });
    }
    if side.is_nan() || side <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "side",
            reason: "must be strictly positive",
        });
    }
    if jitter.is_nan() || jitter < 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "jitter",
            reason: "must be non-negative",
        });
    }
    fn radical_inverse(mut index: u64, base: u64) -> f64 {
        let mut result = 0.0;
        let mut fraction = 1.0 / base as f64;
        while index > 0 {
            result += (index % base) as f64 * fraction;
            index /= base;
            fraction /= base as f64;
        }
        result
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let points = (1..=n as u64)
        .map(|i| {
            let jx = if jitter > 0.0 {
                rng.gen_range(-jitter..jitter)
            } else {
                0.0
            };
            let jy = if jitter > 0.0 {
                rng.gen_range(-jitter..jitter)
            } else {
                0.0
            };
            Point::new(
                radical_inverse(i, 2) * side + jx,
                radical_inverse(i, 3) * side + jy,
            )
        })
        .collect();
    Deployment::from_points(points)
}

/// Poisson-disk sampling (Bridson's algorithm): points in `[0, side]²` with
/// pairwise distance at least `min_dist`, filled to (near) saturation.
///
/// The returned deployment has, by construction, `min_link >= min_dist` and
/// a blue-noise density profile — the "maximally even" random deployment,
/// in which every node sits in the same link class.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `side <= 0` or
/// `min_dist <= 0`, or if fewer than 2 points fit.
pub fn poisson_disk(side: f64, min_dist: f64, seed: u64) -> Result<Deployment, GeomError> {
    if side.is_nan() || side <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "side",
            reason: "must be strictly positive",
        });
    }
    if min_dist.is_nan() || min_dist <= 0.0 {
        return Err(GeomError::InvalidParameter {
            name: "min_dist",
            reason: "must be strictly positive",
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let cell = min_dist / std::f64::consts::SQRT_2;
    let grid_side = (side / cell).ceil() as usize + 1;
    let mut grid: Vec<Option<usize>> = vec![None; grid_side * grid_side];
    let mut points: Vec<Point> = Vec::new();
    let mut active: Vec<usize> = Vec::new();

    let cell_of = |p: Point| -> (usize, usize) {
        (
            ((p.x / cell) as usize).min(grid_side - 1),
            ((p.y / cell) as usize).min(grid_side - 1),
        )
    };
    let insert = |p: Point,
                  points: &mut Vec<Point>,
                  grid: &mut Vec<Option<usize>>,
                  active: &mut Vec<usize>| {
        let idx = points.len();
        points.push(p);
        let (c, r) = cell_of(p);
        grid[r * grid_side + c] = Some(idx);
        active.push(idx);
    };
    let fits = |p: Point, points: &[Point], grid: &[Option<usize>]| -> bool {
        if !(0.0..=side).contains(&p.x) || !(0.0..=side).contains(&p.y) {
            return false;
        }
        let (c, r) = cell_of(p);
        let c0 = c.saturating_sub(2);
        let r0 = r.saturating_sub(2);
        let c1 = (c + 2).min(grid_side - 1);
        let r1 = (r + 2).min(grid_side - 1);
        for rr in r0..=r1 {
            for cc in c0..=c1 {
                if let Some(q) = grid[rr * grid_side + cc] {
                    if points[q].distance(p) < min_dist {
                        return false;
                    }
                }
            }
        }
        true
    };

    let first = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
    insert(first, &mut points, &mut grid, &mut active);
    const ATTEMPTS: usize = 30;
    while let Some(&anchor_idx) = active.last() {
        let anchor = points[anchor_idx];
        let mut placed = false;
        for _ in 0..ATTEMPTS {
            let radius = rng.gen_range(min_dist..2.0 * min_dist);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let candidate = anchor + Point::from_polar(radius, angle);
            if fits(candidate, &points, &grid) {
                insert(candidate, &mut points, &mut grid, &mut active);
                placed = true;
                break;
            }
        }
        if !placed {
            active.pop();
        }
    }
    Deployment::from_points(points)
}

#[cfg(test)]
mod quasi_random_tests {
    use super::*;

    #[test]
    fn halton_is_deterministic_and_in_bounds() {
        let a = halton(100, 20.0, 0.0, 0).unwrap();
        let b = halton(100, 20.0, 0.0, 99).unwrap(); // no jitter: seed ignored
        assert_eq!(a.points(), b.points());
        for p in a.points() {
            assert!((0.0..=20.0).contains(&p.x));
            assert!((0.0..=20.0).contains(&p.y));
        }
    }

    #[test]
    fn halton_is_more_even_than_uniform() {
        // The shortest link of a Halton set is much larger than that of an
        // i.i.d. uniform set of the same size and area.
        let h = halton(256, 32.0, 0.0, 0).unwrap();
        let u = uniform_square(256, 32.0, 0).unwrap();
        assert!(
            h.min_link() > 2.0 * u.min_link(),
            "halton {} vs uniform {}",
            h.min_link(),
            u.min_link()
        );
    }

    #[test]
    fn halton_jitter_perturbs() {
        let a = halton(50, 10.0, 0.0, 3).unwrap();
        let b = halton(50, 10.0, 0.2, 3).unwrap();
        assert_ne!(a.points(), b.points());
    }

    #[test]
    fn poisson_disk_respects_min_distance() {
        let d = poisson_disk(30.0, 2.0, 7).unwrap();
        assert!(d.len() > 50, "too few samples: {}", d.len());
        assert!(
            d.min_link() >= 2.0 - 1e-9,
            "min link {} below the disk radius",
            d.min_link()
        );
        // Saturation: density close to the theoretical packing range.
        let per_area = d.len() as f64 / (30.0 * 30.0);
        assert!(per_area > 0.1, "density {per_area} too low for saturation");
    }

    #[test]
    fn poisson_disk_single_link_class() {
        // min gap >= min_dist and saturation keeps nn distances < 2*min_dist:
        // every node lands in one link class.
        let d = poisson_disk(40.0, 1.5, 1).unwrap();
        for i in 0..d.len() {
            let nn = d.nn_distance(i).unwrap();
            assert!(
                (1.5..4.5).contains(&nn),
                "node {i} nn distance {nn} out of the blue-noise band"
            );
        }
    }

    #[test]
    fn poisson_disk_is_deterministic() {
        let a = poisson_disk(15.0, 1.0, 5).unwrap();
        let b = poisson_disk(15.0, 1.0, 5).unwrap();
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn generators_validate_parameters() {
        assert!(halton(1, 10.0, 0.0, 0).is_err());
        assert!(halton(10, 0.0, 0.0, 0).is_err());
        assert!(halton(10, 1.0, -0.1, 0).is_err());
        assert!(poisson_disk(0.0, 1.0, 0).is_err());
        assert!(poisson_disk(10.0, 0.0, 0).is_err());
    }
}
