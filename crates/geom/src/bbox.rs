//! Axis-aligned bounding boxes.

use serde::{Deserialize, Serialize};

use crate::Point;

/// An axis-aligned bounding box in the plane.
///
/// Used by [`GridIndex`](crate::GridIndex) for bucketing and by deployment
/// generators to describe their support region.
///
/// # Example
///
/// ```
/// use fading_geom::{Bbox, Point};
///
/// let b = Bbox::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
/// assert!(b.contains(Point::new(3.0, 4.0)));
/// assert!(!b.contains(Point::new(3.0, 6.0)));
/// assert_eq!(b.width(), 10.0);
/// assert_eq!(b.height(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bbox {
    min: Point,
    max: Point,
}

impl Bbox {
    /// Creates a bounding box from two opposite corners.
    ///
    /// The corners may be given in any order; the box is normalized so that
    /// `min() <= max()` component-wise.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Bbox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest box containing every point in `points`.
    ///
    /// Returns `None` for an empty iterator.
    ///
    /// ```
    /// use fading_geom::{Bbox, Point};
    /// let pts = [Point::new(1.0, 4.0), Point::new(-2.0, 0.5)];
    /// let b = Bbox::containing(pts.iter().copied()).unwrap();
    /// assert_eq!(b.min(), Point::new(-2.0, 0.5));
    /// assert_eq!(b.max(), Point::new(1.0, 4.0));
    /// ```
    #[must_use]
    pub fn containing<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut bbox = Bbox::new(first, first);
        for p in iter {
            bbox.expand(p);
        }
        Some(bbox)
    }

    /// The corner with minimal coordinates.
    #[must_use]
    pub fn min(&self) -> Point {
        self.min
    }

    /// The corner with maximal coordinates.
    #[must_use]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Horizontal extent.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Vertical extent.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center of the box.
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Grows the box (in place) so that it contains `p`.
    pub fn expand(&mut self, p: Point) {
        self.min = Point::new(self.min.x.min(p.x), self.min.y.min(p.y));
        self.max = Point::new(self.max.x.max(p.x), self.max.y.max(p.y));
    }

    /// Returns `true` if `p` lies inside the box (boundary inclusive).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (zero if `p` is inside).
    #[must_use]
    pub fn distance_sq_to(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = Bbox::new(Point::new(5.0, -1.0), Point::new(1.0, 3.0));
        assert_eq!(b.min(), Point::new(1.0, -1.0));
        assert_eq!(b.max(), Point::new(5.0, 3.0));
    }

    #[test]
    fn containing_empty_is_none() {
        assert!(Bbox::containing(std::iter::empty()).is_none());
    }

    #[test]
    fn containing_single_point_is_degenerate() {
        let p = Point::new(2.0, 2.0);
        let b = Bbox::containing([p]).unwrap();
        assert_eq!(b.width(), 0.0);
        assert_eq!(b.height(), 0.0);
        assert!(b.contains(p));
    }

    #[test]
    fn boundary_is_inclusive() {
        let b = Bbox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(1.0, 0.5)));
    }

    #[test]
    fn expand_grows_to_contain() {
        let mut b = Bbox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        b.expand(Point::new(-2.0, 5.0));
        assert!(b.contains(Point::new(-2.0, 5.0)));
        assert!(b.contains(Point::new(0.5, 0.5)));
    }

    #[test]
    fn distance_sq_inside_is_zero() {
        let b = Bbox::new(Point::ORIGIN, Point::new(4.0, 4.0));
        assert_eq!(b.distance_sq_to(Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn distance_sq_outside_corner() {
        let b = Bbox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        // (4, 5) is 3 right of and 4 above the top-right corner.
        assert!((b.distance_sq_to(Point::new(4.0, 5.0)) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn center_is_midpoint() {
        let b = Bbox::new(Point::ORIGIN, Point::new(4.0, 2.0));
        assert_eq!(b.center(), Point::new(2.0, 1.0));
    }
}
