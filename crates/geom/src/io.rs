//! Plain-text (CSV) deployment interchange.
//!
//! Real evaluations often start from surveyed node positions. This module
//! reads and writes deployments as two-column `x,y` CSV — no serialization
//! framework needed, and the format round-trips losslessly through the
//! shortest `f64` representation.

use crate::{Deployment, GeomError, Point};

impl Deployment {
    /// Serializes the node positions as `x,y` CSV with a header line.
    ///
    /// # Example
    ///
    /// ```
    /// use fading_geom::{Deployment, Point};
    /// let d = Deployment::from_points(vec![
    ///     Point::new(0.0, 0.5),
    ///     Point::new(2.0, 0.0),
    /// ]).unwrap();
    /// assert_eq!(d.to_csv(), "x,y\n0,0.5\n2,0\n");
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y\n");
        for p in self.points() {
            out.push_str(&format!("{},{}\n", p.x, p.y));
        }
        out
    }

    /// Parses a deployment from `x,y` CSV.
    ///
    /// Accepts an optional `x,y` header, blank lines, and `#` comment
    /// lines; coordinates are parsed as `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ParseCsv`] on a malformed line and propagates
    /// the validation errors of [`Deployment::from_points`] (too few
    /// points, non-finite coordinates, coincident nodes).
    ///
    /// # Example
    ///
    /// ```
    /// use fading_geom::Deployment;
    /// let d = Deployment::from_csv("x,y\n0,0\n# relay\n3,4\n")?;
    /// assert_eq!(d.len(), 2);
    /// assert_eq!(d.min_link(), 5.0);
    /// # Ok::<(), fading_geom::GeomError>(())
    /// ```
    pub fn from_csv(text: &str) -> Result<Deployment, GeomError> {
        let mut points = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if lineno == 0 && line.eq_ignore_ascii_case("x,y") {
                continue;
            }
            let mut cells = line.split(',');
            let (Some(xs), Some(ys), None) = (cells.next(), cells.next(), cells.next()) else {
                return Err(GeomError::ParseCsv {
                    line: lineno + 1,
                    reason: "expected exactly two comma-separated columns",
                });
            };
            let x: f64 = xs.trim().parse().map_err(|_| GeomError::ParseCsv {
                line: lineno + 1,
                reason: "x is not a number",
            })?;
            let y: f64 = ys.trim().parse().map_err(|_| GeomError::ParseCsv {
                line: lineno + 1,
                reason: "y is not a number",
            })?;
            points.push(Point::new(x, y));
        }
        Deployment::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_positions() {
        let d = crate::generators::uniform_square(40, 17.0, 9).unwrap();
        let csv = d.to_csv();
        let back = Deployment::from_csv(&csv).unwrap();
        assert_eq!(d.points(), back.points());
        assert_eq!(d.min_link(), back.min_link());
        assert_eq!(d.max_link(), back.max_link());
    }

    #[test]
    fn parses_comments_blanks_and_header() {
        let d = Deployment::from_csv("x,y\n\n# a comment\n 0 , 0 \n1,1\n").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn header_is_optional() {
        let d = Deployment::from_csv("0,0\n1,1\n").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn reports_malformed_lines_with_numbers() {
        let err = Deployment::from_csv("x,y\n0,0\nnot-a-point\n").unwrap_err();
        match err {
            GeomError::ParseCsv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
        let err = Deployment::from_csv("0,0\n1,banana\n").unwrap_err();
        assert!(matches!(err, GeomError::ParseCsv { line: 2, .. }));
        let err = Deployment::from_csv("0,0\n1,2,3\n").unwrap_err();
        assert!(matches!(err, GeomError::ParseCsv { line: 2, .. }));
    }

    #[test]
    fn propagates_deployment_validation() {
        // A single point is too few.
        assert!(matches!(
            Deployment::from_csv("5,5\n"),
            Err(GeomError::TooFewNodes { got: 1 })
        ));
        // Coincident points are rejected.
        assert!(matches!(
            Deployment::from_csv("1,1\n1,1\n"),
            Err(GeomError::CoincidentNodes { .. })
        ));
    }

    #[test]
    fn scientific_notation_parses() {
        let d = Deployment::from_csv("0,0\n1e3,2.5e-1\n").unwrap();
        assert_eq!(d.point(1), Point::new(1000.0, 0.25));
    }
}
