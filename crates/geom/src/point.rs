//! Points in the 2-D Euclidean plane.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point (or vector) in the 2-D Euclidean plane.
///
/// All SINR-model geometry in this workspace happens in the plane, following
/// the model section of the paper ("deployed in the two-dimensional Euclidean
/// plane").
///
/// # Example
///
/// ```
/// use fading_geom::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!((a + b) / 2.0, Point::new(1.5, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    ///
    /// ```
    /// use fading_geom::Point;
    /// let p = Point::new(1.0, -2.5);
    /// assert_eq!(p.x, 1.0);
    /// assert_eq!(p.y, -2.5);
    /// ```
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Creates a point from polar coordinates `(radius, angle)` around the
    /// origin, with `angle` in radians.
    ///
    /// ```
    /// use fading_geom::Point;
    /// let p = Point::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((p.x).abs() < 1e-12);
    /// assert!((p.y - 2.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn from_polar(radius: f64, angle: f64) -> Self {
        Point {
            x: radius * angle.cos(),
            y: radius * angle.sin(),
        }
    }

    /// Euclidean distance to `other`.
    ///
    /// ```
    /// use fading_geom::Point;
    /// assert_eq!(Point::new(0.0, 0.0).distance(Point::new(0.0, 2.0)), 2.0);
    /// ```
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::distance`] when only comparisons are needed;
    /// it avoids the square root.
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm (distance to the origin).
    #[must_use]
    pub fn norm(self) -> f64 {
        self.distance(Point::ORIGIN)
    }

    /// Dot product with `other`, treating both points as vectors.
    #[must_use]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Returns the midpoint of the segment from `self` to `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }

    /// Returns `true` if both coordinates are finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Add for Point {
    type Output = Point;

    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;

    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;

    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(7.25, -0.5);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn pythagorean_triple() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert!((a.distance_sq(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn from_polar_radius_is_norm() {
        for k in 0..16 {
            let angle = f64::from(k) * std::f64::consts::PI / 8.0;
            let p = Point::from_polar(3.5, angle);
            assert!((p.norm() - 3.5).abs() < 1e-12, "angle {angle}");
        }
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a + b, Point::new(4.0, -2.0));
        assert_eq!(a - b, Point::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -2.0));
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        let m = a.midpoint(b);
        assert!((m.distance(a) - m.distance(b)).abs() < 1e-12);
    }

    #[test]
    fn tuple_conversions_round_trip() {
        let p = Point::new(0.25, 9.0);
        let t: (f64, f64) = p.into();
        assert_eq!(Point::from(t), p);
    }

    #[test]
    fn finite_detects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn dot_product() {
        assert_eq!(Point::new(1.0, 2.0).dot(Point::new(3.0, 4.0)), 11.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1, 2.5)");
    }
}
