//! Multi-resolution tile hierarchy over a point set, with certified
//! per-node distance brackets.
//!
//! [`TileTree`] stacks geometrically coarser aggregation levels on top of a
//! fine [`TileIndex`]: level 0 mirrors the fine grid's tiles, and each
//! higher level merges 2×2 blocks of the previous one until a single root
//! node covers the whole deployment. Every node records the **content
//! bbox** of the points beneath it (the union of its non-empty children's
//! content bboxes) and their count, so the same gap/reach argument that
//! certifies [`TileIndex::distance_sq_bounds`] applies at every level:
//!
//! ```text
//! d_min(t, node)² ≤ d(u, v)² ≤ d_max(t, node)²
//!     for all u under node, v ∈ fine tile t,
//! ```
//!
//! up to ordinary floating-point rounding of the bound expressions (a few
//! ulps — consumers that need hard guarantees widen by a relative slack,
//! see the hierarchical far-field engine in `fading-channel`).
//!
//! The tree is the spatial substrate of that engine: near a listener it
//! descends to fine tiles (scanned exactly), far away it stops at the
//! coarsest node whose content bbox is small relative to its distance, so
//! one traversal touches O(log n) nodes instead of O(T) tile pairs — and,
//! unlike the flat engine's T×T pair tables, needs no quadratic precompute.
//!
//! Like [`TileIndex`], the tree is static: it describes where points *are*.
//! Dynamic per-node masses (this round's transmitters) live with the
//! consumer.

use crate::{Bbox, TileIndex};

/// One aggregation level: a `cols × rows` grid of nodes, each the merge of
/// a 2×2 block of the level below (level 0 mirrors the fine tiles).
#[derive(Debug, Clone)]
struct TreeLevel {
    cols: usize,
    rows: usize,
    /// Points under each node (index = `row * cols + col`).
    counts: Vec<u32>,
    /// Content bbox over each node's points; meaningless when count is 0.
    content: Vec<Bbox>,
}

/// A multi-resolution tile hierarchy: a fine [`TileIndex`] plus a pyramid
/// of 2×2-merged aggregate levels up to a single root.
///
/// Nodes are addressed as `(level, index)` with `level ∈ 0..num_levels()`;
/// level 0 is the fine grid (same indices as [`TileTree::fine`]), the last
/// level is the 1×1 root. See the [module docs](self) for the distance
/// bracket contract.
#[derive(Debug, Clone)]
pub struct TileTree {
    fine: TileIndex,
    levels: Vec<TreeLevel>,
}

/// Conservative `(min, max)` squared distance between two content bboxes
/// (the gap/reach argument of [`TileIndex::distance_sq_bounds`]).
fn bbox_distance_sq_bounds(a: &Bbox, b: &Bbox) -> (f64, f64) {
    let gap = |a_min: f64, a_max: f64, b_min: f64, b_max: f64| -> f64 {
        (b_min - a_max).max(a_min - b_max).max(0.0)
    };
    let reach = |a_min: f64, a_max: f64, b_min: f64, b_max: f64| -> f64 {
        (b_max - a_min).max(a_max - b_min)
    };
    let gx = gap(a.min().x, a.max().x, b.min().x, b.max().x);
    let gy = gap(a.min().y, a.max().y, b.min().y, b.max().y);
    let rx = reach(a.min().x, a.max().x, b.min().x, b.max().x);
    let ry = reach(a.min().y, a.max().y, b.min().y, b.max().y);
    (gx * gx + gy * gy, rx * rx + ry * ry)
}

impl TileTree {
    /// Builds a tree whose fine level is a `tiles_per_side × tiles_per_side`
    /// tiling (see [`TileIndex::build`] for the `None` conditions).
    #[must_use]
    pub fn build(points: &[crate::Point], tiles_per_side: usize) -> Option<Self> {
        TileIndex::build(points, tiles_per_side).map(Self::from_fine)
    }

    /// Builds a tree whose fine level targets `target_occupancy` points per
    /// tile, clamped to `max_tiles_per_side` (see
    /// [`TileIndex::with_target_occupancy`]).
    #[must_use]
    pub fn with_target_occupancy(
        points: &[crate::Point],
        target_occupancy: usize,
        max_tiles_per_side: usize,
    ) -> Option<Self> {
        TileIndex::with_target_occupancy(points, target_occupancy, max_tiles_per_side)
            .map(Self::from_fine)
    }

    /// Builds the aggregate pyramid over an existing fine index.
    #[must_use]
    pub fn from_fine(fine: TileIndex) -> Self {
        let base = TreeLevel {
            cols: fine.cols(),
            rows: fine.rows(),
            counts: (0..fine.num_tiles()).map(|t| fine.count(t) as u32).collect(),
            content: (0..fine.num_tiles())
                .map(|t| fine.content_bbox(t).unwrap_or(Bbox::new(crate::Point::ORIGIN, crate::Point::ORIGIN)))
                .collect(),
        };
        let mut levels = vec![base];
        while let Some(prev) = levels.last().filter(|l| l.cols * l.rows > 1) {
            let cols = prev.cols.div_ceil(2);
            let rows = prev.rows.div_ceil(2);
            let mut counts = vec![0u32; cols * rows];
            let mut content =
                vec![Bbox::new(crate::Point::ORIGIN, crate::Point::ORIGIN); cols * rows];
            for r in 0..prev.rows {
                for c in 0..prev.cols {
                    let child = r * prev.cols + c;
                    if prev.counts[child] == 0 {
                        continue;
                    }
                    let parent = (r / 2) * cols + (c / 2);
                    let b = prev.content[child];
                    if counts[parent] == 0 {
                        content[parent] = b;
                    } else {
                        content[parent].expand(b.min());
                        content[parent].expand(b.max());
                    }
                    counts[parent] += prev.counts[child];
                }
            }
            levels.push(TreeLevel {
                cols,
                rows,
                counts,
                content,
            });
        }
        TileTree { fine, levels }
    }

    /// The fine tile index (level 0 of the tree).
    #[must_use]
    pub fn fine(&self) -> &TileIndex {
        &self.fine
    }

    /// Number of levels, root included (≥ 1; exactly 1 for a 1×1 fine grid).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Nodes per row at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn level_cols(&self, level: usize) -> usize {
        self.levels[level].cols
    }

    /// Nodes per column at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn level_rows(&self, level: usize) -> usize {
        self.levels[level].rows
    }

    /// Total nodes at `level` (`cols × rows`, including empty ones).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn num_nodes(&self, level: usize) -> usize {
        self.levels[level].cols * self.levels[level].rows
    }

    /// The root's address: `(num_levels() - 1, 0)`, the one node covering
    /// every point.
    #[must_use]
    pub fn root(&self) -> (usize, usize) {
        (self.levels.len() - 1, 0)
    }

    /// Points under node `(level, idx)`.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `idx` is out of range.
    #[inline]
    #[must_use]
    pub fn node_count(&self, level: usize, idx: usize) -> usize {
        self.levels[level].counts[idx] as usize
    }

    /// The content bbox of node `(level, idx)`, or `None` when no point
    /// lies under it.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `idx` is out of range.
    #[must_use]
    pub fn node_bbox(&self, level: usize, idx: usize) -> Option<Bbox> {
        (self.levels[level].counts[idx] > 0).then(|| self.levels[level].content[idx])
    }

    /// Squared diagonal of the content bbox of node `(level, idx)` — the
    /// opening-criterion size measure — or `None` when the node is empty.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `idx` is out of range.
    #[must_use]
    pub fn node_diag_sq(&self, level: usize, idx: usize) -> Option<f64> {
        self.node_bbox(level, idx).map(|b| {
            let w = b.width();
            let h = b.height();
            w * w + h * h
        })
    }

    /// The children of node `(level, idx)` at `level - 1` (1, 2, or 4 of
    /// them at grid edges), in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or out of range, or `idx` is out of range.
    pub fn children(&self, level: usize, idx: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(level >= 1, "level 0 (fine tiles) has no children");
        let parent = &self.levels[level];
        let child = &self.levels[level - 1];
        let (c, r) = (idx % parent.cols, idx / parent.cols);
        assert!(r < parent.rows, "node {idx} out of range at level {level}");
        let c1 = (2 * c + 2).min(child.cols);
        let r1 = (2 * r + 2).min(child.rows);
        let cols = child.cols;
        (2 * r..r1).flat_map(move |rr| (2 * c..c1).map(move |cc| rr * cols + cc))
    }

    /// The fine-tile column and row ranges covered by node `(level, idx)`:
    /// node `(c, r)` at level `L` covers fine columns
    /// `[c·2^L, min((c+1)·2^L, fine_cols))` and likewise for rows.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `idx` is out of range.
    #[must_use]
    pub fn fine_tile_range(
        &self,
        level: usize,
        idx: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let l = &self.levels[level];
        let (c, r) = (idx % l.cols, idx / l.cols);
        assert!(r < l.rows, "node {idx} out of range at level {level}");
        let scale = 1usize << level;
        let c0 = c * scale;
        let r0 = r * scale;
        (
            c0..(c0 + scale).min(self.fine.cols()),
            r0..(r0 + scale).min(self.fine.rows()),
        )
    }

    /// Conservative `(min, max)` **squared** distance between any member of
    /// fine tile `t` and any point under node `(level, idx)`, from their
    /// content bboxes. `None` when either side is empty.
    ///
    /// # Panics
    ///
    /// Panics if `t`, `level`, or `idx` is out of range.
    #[must_use]
    pub fn distance_sq_bounds_to(
        &self,
        t: usize,
        level: usize,
        idx: usize,
    ) -> Option<(f64, f64)> {
        let a = self.fine.content_bbox(t)?;
        let b = self.node_bbox(level, idx)?;
        Some(bbox_distance_sq_bounds(&a, &b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn grid_points(n_side: usize, spacing: f64) -> Vec<Point> {
        (0..n_side * n_side)
            .map(|i| Point::new((i % n_side) as f64 * spacing, (i / n_side) as f64 * spacing))
            .collect()
    }

    /// Two dense clusters with a wide gap: exercises empty interior nodes.
    fn clustered_points() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(Point::new((i % 5) as f64 * 0.3, (i / 5) as f64 * 0.3));
        }
        for i in 0..20 {
            pts.push(Point::new(
                40.0 + (i % 5) as f64 * 0.3,
                40.0 + (i / 5) as f64 * 0.3,
            ));
        }
        pts
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert!(TileTree::build(&[], 4).is_none());
        assert!(TileTree::build(&[Point::ORIGIN], 0).is_none());
        assert!(TileTree::with_target_occupancy(&[Point::ORIGIN], 0, 8).is_none());
    }

    #[test]
    fn pyramid_reaches_a_single_root() {
        let pts = grid_points(12, 1.0);
        let tree = TileTree::build(&pts, 12).unwrap();
        let (root_level, root) = tree.root();
        assert_eq!(root_level, tree.num_levels() - 1);
        assert_eq!(tree.num_nodes(root_level), 1);
        assert_eq!(tree.node_count(root_level, root), pts.len());
        // 12 → 6 → 3 → 2 → 1 tiles per side.
        assert_eq!(tree.num_levels(), 5);
        // A 1×1 fine grid is its own root.
        let tiny = TileTree::build(&pts, 1).unwrap();
        assert_eq!(tiny.num_levels(), 1);
        assert_eq!(tiny.root(), (0, 0));
    }

    #[test]
    fn every_level_conserves_the_point_count() {
        for pts in [grid_points(9, 0.7), clustered_points()] {
            let tree = TileTree::build(&pts, 8).unwrap();
            for l in 0..tree.num_levels() {
                let total: usize = (0..tree.num_nodes(l)).map(|i| tree.node_count(l, i)).sum();
                assert_eq!(total, pts.len(), "level {l} lost points");
            }
        }
    }

    #[test]
    fn children_counts_sum_to_parent() {
        let tree = TileTree::build(&clustered_points(), 8).unwrap();
        for l in 1..tree.num_levels() {
            for idx in 0..tree.num_nodes(l) {
                let sum: usize = tree.children(l, idx).map(|c| tree.node_count(l - 1, c)).sum();
                assert_eq!(sum, tree.node_count(l, idx), "node ({l}, {idx})");
            }
        }
    }

    #[test]
    fn node_bboxes_contain_every_covered_point() {
        let pts = clustered_points();
        let tree = TileTree::build(&pts, 8).unwrap();
        let fine = tree.fine();
        for l in 0..tree.num_levels() {
            for idx in 0..tree.num_nodes(l) {
                let (crange, rrange) = tree.fine_tile_range(l, idx);
                let covered: Vec<usize> = (0..pts.len())
                    .filter(|&i| {
                        let t = fine.tile_of(i);
                        let (tc, tr) = (t % fine.cols(), t / fine.cols());
                        crange.contains(&tc) && rrange.contains(&tr)
                    })
                    .collect();
                assert_eq!(covered.len(), tree.node_count(l, idx), "node ({l}, {idx})");
                if let Some(bbox) = tree.node_bbox(l, idx) {
                    for &i in &covered {
                        assert!(bbox.contains(pts[i]), "point {i} escapes node ({l}, {idx})");
                    }
                } else {
                    assert!(covered.is_empty());
                }
            }
        }
    }

    #[test]
    fn distance_bounds_bracket_all_member_pairs_at_every_level() {
        let pts = clustered_points();
        let tree = TileTree::build(&pts, 8).unwrap();
        let fine = tree.fine();
        for l in 0..tree.num_levels() {
            for idx in 0..tree.num_nodes(l) {
                let (crange, rrange) = tree.fine_tile_range(l, idx);
                for (v, pv) in pts.iter().enumerate() {
                    let t = fine.tile_of(v);
                    let Some((lo, hi)) = tree.distance_sq_bounds_to(t, l, idx) else {
                        continue;
                    };
                    for (u, pu) in pts.iter().enumerate() {
                        let s = fine.tile_of(u);
                        let (sc, sr) = (s % fine.cols(), s / fine.cols());
                        if !(crange.contains(&sc) && rrange.contains(&sr)) {
                            continue;
                        }
                        let d = pv.distance_sq(*pu);
                        assert!(
                            lo <= d && d <= hi,
                            "pair ({v}, {u}) d²={d} outside [{lo}, {hi}] of node ({l}, {idx})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn diag_sq_matches_the_content_bbox() {
        let tree = TileTree::build(&grid_points(6, 1.0), 3).unwrap();
        let (rl, root) = tree.root();
        let b = tree.node_bbox(rl, root).unwrap();
        let expect = b.width() * b.width() + b.height() * b.height();
        assert_eq!(tree.node_diag_sq(rl, root), Some(expect));
        // Coincident points: zero-size node.
        let dot = TileTree::build(&[Point::new(1.0, 1.0); 3], 4).unwrap();
        let (dl, droot) = dot.root();
        assert_eq!(dot.node_diag_sq(dl, droot), Some(0.0));
    }

    #[test]
    fn fine_level_mirrors_the_tile_index() {
        let pts = grid_points(10, 1.3);
        let tree = TileTree::build(&pts, 5).unwrap();
        let fine = tree.fine();
        assert_eq!(tree.level_cols(0), fine.cols());
        assert_eq!(tree.level_rows(0), fine.rows());
        for t in 0..fine.num_tiles() {
            assert_eq!(tree.node_count(0, t), fine.count(t));
            assert_eq!(tree.node_bbox(0, t), fine.content_bbox(t));
        }
    }
}
