//! Convex hull and exact diameter computation.
//!
//! The paper's parameter `R` is the ratio of the longest to the shortest
//! link, and the longest link of a deployment is the diameter of its point
//! set. Computing the diameter naively is `O(n^2)`; this module provides the
//! standard `O(n log n)` pipeline: Andrew's monotone-chain convex hull
//! followed by rotating calipers.

use crate::Point;

/// Twice the signed area of triangle `(o, a, b)`.
///
/// Positive when `o -> a -> b` turns counter-clockwise.
fn cross(o: Point, a: Point, b: Point) -> f64 {
    (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
}

/// Computes the convex hull of `points` using Andrew's monotone chain.
///
/// Returns hull vertices in counter-clockwise order without repeating the
/// first vertex. Collinear points on hull edges are dropped. Degenerate
/// inputs are handled: fewer than three distinct points return what exists
/// (possibly fewer than three vertices).
///
/// # Example
///
/// ```
/// use fading_geom::{convex_hull, Point};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
///     Point::new(1.0, 1.0), // interior
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull.len(), 4);
/// ```
#[must_use]
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // The last point equals the first.
    hull
}

/// Computes the exact diameter (longest pairwise distance) of `points` in
/// `O(n log n)` via convex hull + rotating calipers.
///
/// Returns `0.0` for zero or one point.
///
/// # Example
///
/// ```
/// use fading_geom::{diameter, Point};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(3.0, 4.0),
///     Point::new(1.0, 1.0),
/// ];
/// assert_eq!(diameter(&pts), 5.0);
/// ```
#[must_use]
pub fn diameter(points: &[Point]) -> f64 {
    let hull = convex_hull(points);
    let m = hull.len();
    match m {
        0 | 1 => 0.0,
        2 => hull[0].distance(hull[1]),
        _ => {
            // Rotating calipers over antipodal pairs.
            let mut best_sq: f64 = 0.0;
            let mut j = 1;
            for i in 0..m {
                let edge_from = hull[i];
                let edge_to = hull[(i + 1) % m];
                // Advance j while the triangle area keeps growing.
                loop {
                    let next = (j + 1) % m;
                    let area_now = cross(edge_from, edge_to, hull[j]).abs();
                    let area_next = cross(edge_from, edge_to, hull[next]).abs();
                    if area_next > area_now {
                        j = next;
                    } else {
                        break;
                    }
                }
                best_sq = best_sq
                    .max(edge_from.distance_sq(hull[j]))
                    .max(edge_to.distance_sq(hull[j]));
            }
            best_sq.sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_diameter(points: &[Point]) -> f64 {
        let mut best: f64 = 0.0;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                best = best.max(points[i].distance(points[j]));
            }
        }
        best
    }

    #[test]
    fn hull_of_square_with_interior() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn hull_drops_collinear_edge_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn hull_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::ORIGIN]).len(), 1);
        assert_eq!(convex_hull(&[Point::ORIGIN, Point::new(1.0, 1.0)]).len(), 2);
        // All collinear.
        let line: Vec<Point> = (0..10).map(|i| Point::new(f64::from(i), 0.0)).collect();
        let hull = convex_hull(&line);
        assert_eq!(hull.len(), 2);
    }

    #[test]
    fn diameter_matches_brute_force_on_clouds() {
        let mut state: u64 = 42;
        let mut pts = Vec::new();
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = ((state >> 33) % 10_000) as f64 / 100.0;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = ((state >> 33) % 10_000) as f64 / 100.0;
            pts.push(Point::new(x, y));
        }
        let fast = diameter(&pts);
        let slow = brute_diameter(&pts);
        assert!((fast - slow).abs() < 1e-9, "fast {fast} slow {slow}");
    }

    #[test]
    fn diameter_of_duplicated_point_is_zero() {
        let pts = vec![Point::new(3.0, 3.0); 7];
        assert_eq!(diameter(&pts), 0.0);
    }

    #[test]
    fn diameter_of_two_points() {
        assert_eq!(diameter(&[Point::ORIGIN, Point::new(0.0, 9.0)]), 9.0);
    }

    #[test]
    fn diameter_collinear() {
        let line: Vec<Point> = (0..17)
            .map(|i| Point::new(f64::from(i) * 2.0, 1.0))
            .collect();
        assert_eq!(diameter(&line), 32.0);
    }
}
