//! Property-based tests: the spatial index and hull pipeline must agree with
//! brute force on arbitrary inputs, and deployments must maintain their
//! cached invariants.

use fading_geom::{convex_hull, diameter, Deployment, GridIndex, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1_000.0..1_000.0f64, -1_000.0..1_000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), min..=max)
}

fn brute_nearest(points: &[Point], q: Point, exclude: usize) -> Option<f64> {
    points
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != exclude)
        .map(|(_, p)| p.distance(q))
        .min_by(|a, b| a.partial_cmp(b).unwrap())
}

proptest! {
    #[test]
    fn grid_nearest_matches_brute_force(points in arb_points(2, 120)) {
        let idx = GridIndex::build(&points);
        for i in 0..points.len() {
            let got = idx
                .nearest(points[i], Some(i))
                .map(|j| points[j].distance(points[i]));
            let want = brute_nearest(&points, points[i], i);
            match (got, want) {
                (Some(g), Some(w)) => prop_assert!((g - w).abs() < 1e-9, "i={i} got={g} want={w}"),
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn grid_within_matches_brute_force(
        points in arb_points(1, 120),
        center in arb_point(),
        radius in 0.0..2_000.0f64,
    ) {
        let idx = GridIndex::build(&points);
        let mut got = idx.within(center, radius);
        got.sort_unstable();
        let want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(center) <= radius * radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn annulus_count_matches_brute_force(
        points in arb_points(1, 100),
        center in arb_point(),
        (r_in, r_out) in (0.0..500.0f64, 0.0..1_500.0f64)
            .prop_map(|(a, b)| (a.min(b), a.max(b))),
    ) {
        let idx = GridIndex::build(&points);
        let got = idx.count_in_annulus(center, r_in, r_out);
        let want = points
            .iter()
            .filter(|p| {
                let d = p.distance(center);
                d > r_in && d <= r_out
            })
            .count();
        // Allow boundary off-by-epsilon differences: recompute with strict
        // tolerance and require the counts to be sandwiched.
        let lo = points
            .iter()
            .filter(|p| {
                let d = p.distance(center);
                d > r_in + 1e-9 && d <= r_out - 1e-9
            })
            .count();
        let hi = points
            .iter()
            .filter(|p| {
                let d = p.distance(center);
                d > r_in - 1e-9 && d <= r_out + 1e-9
            })
            .count();
        prop_assert!(got >= lo && got <= hi, "got={got} want≈{want} in [{lo},{hi}]");
    }

    #[test]
    fn diameter_matches_brute_force(points in arb_points(0, 80)) {
        let fast = diameter(&points);
        let mut slow: f64 = 0.0;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                slow = slow.max(points[i].distance(points[j]));
            }
        }
        prop_assert!((fast - slow).abs() <= 1e-9 * slow.max(1.0), "fast={fast} slow={slow}");
    }

    #[test]
    fn hull_contains_all_points(points in arb_points(3, 60)) {
        let hull = convex_hull(&points);
        prop_assume!(hull.len() >= 3);
        // Every input point must be inside or on the hull: check via the
        // cross-product sign against every hull edge (hull is CCW).
        for p in &points {
            for k in 0..hull.len() {
                let a = hull[k];
                let b = hull[(k + 1) % hull.len()];
                let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
                prop_assert!(cross >= -1e-6, "point {p} outside hull edge {k}");
            }
        }
    }

    #[test]
    fn deployment_invariants(points in arb_points(2, 80)) {
        match Deployment::from_points(points.clone()) {
            Ok(d) => {
                // min_link is the smallest nearest-neighbor distance.
                let min_nn = (0..d.len())
                    .map(|i| d.nn_distance(i).unwrap())
                    .fold(f64::INFINITY, f64::min);
                prop_assert!((d.min_link() - min_nn).abs() < 1e-9);
                // max_link >= every nn distance, and R >= 1.
                prop_assert!(d.max_link() + 1e-9 >= min_nn);
                prop_assert!(d.link_ratio() >= 1.0 - 1e-9);
                // Each node's recorded nearest neighbor is at the recorded distance.
                for i in 0..d.len() {
                    let j = d.nearest_neighbor(i).unwrap();
                    prop_assert!(i != j);
                    let dist = d.point(i).distance(d.point(j));
                    prop_assert!((dist - d.nn_distance(i).unwrap()).abs() < 1e-9);
                }
            }
            Err(_) => {
                // Only coincident points can fail here (the strategy
                // generates finite coordinates and >= 2 points).
                let mut coincident = false;
                'outer: for i in 0..points.len() {
                    for j in (i + 1)..points.len() {
                        if points[i].distance_sq(points[j]) == 0.0 {
                            coincident = true;
                            break 'outer;
                        }
                    }
                }
                prop_assert!(coincident);
            }
        }
    }

    #[test]
    fn normalization_preserves_ratio(points in arb_points(2, 50)) {
        if let Ok(d) = Deployment::from_points(points) {
            let n = d.normalized();
            prop_assert!((n.min_link() - 1.0).abs() < 1e-9);
            prop_assert!((n.link_ratio() - d.link_ratio()).abs() <= 1e-6 * d.link_ratio());
        }
    }
}
