//! # fading-hitting
//!
//! The lower-bound machinery of Section 4 of *Contention Resolution on a
//! Fading Channel* (Fineman, Gilbert, Kuhn, Newport — PODC 2016): the
//! `Ω(log n)` bound is proved by a chain of reductions
//!
//! ```text
//! restricted k-hitting game  ≤  two-player contention resolution
//!                            ≤  contention resolution on a fading network
//! ```
//!
//! * [`RestrictedHitting`] — the abstract game (from Newport's earlier
//!   lower-bound work, reference 20 of the paper): a referee hides a 2-element target
//!   `T ⊆ {0, …, k−1}`; each round the player proposes a set `P` and wins
//!   when `|P ∩ T| = 1`; losing proposals yield **no information**.
//!   By Lemma 13 every player that wins with probability `1 − 1/k` needs
//!   `Ω(log k)` rounds.
//! * [`HittingPlayer`] and implementations: [`HalvingPlayer`] (bit-fixing,
//!   wins *deterministically* in `⌈log₂ k⌉` rounds — the matching upper
//!   bound), [`UniformRandomPlayer`] (random halves: constant expected
//!   rounds, `Θ(log k)` for high probability), [`SingletonPlayer`] (the
//!   naive `Θ(k)` strategy).
//! * [`ProtocolPlayer`] — the Lemma 14 reduction, executable: any
//!   contention-resolution [`Protocol`](fading_sim::Protocol) is simulated
//!   on `k` virtual nodes that all "receive nothing", and its transmit sets
//!   become hitting-game proposals. The simulation is consistent with a
//!   two-node execution, so the protocol's round complexity transfers.
//! * [`TwoPlayerCr`] — two-player contention resolution as a direct game.
//!
//! # Example
//!
//! ```
//! use fading_hitting::{HalvingPlayer, RestrictedHitting};
//!
//! // The target {3, 5} differs in bit 1: the halving player wins there.
//! let mut game = RestrictedHitting::with_target(8, [3, 5]).unwrap();
//! let mut player = HalvingPlayer::new(8);
//! let won = game.play(&mut player, 10, 42);
//! assert!(won.is_some());
//! assert!(won.unwrap() <= 3); // ⌈log₂ 8⌉ rounds suffice
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod game;
pub mod measure;
mod players;
mod reduction;
mod two_player;

pub use game::{GameError, RestrictedHitting};
pub use measure::{win_distribution, WinDistribution};
pub use players::{HalvingPlayer, HittingPlayer, SingletonPlayer, UniformRandomPlayer};
pub use reduction::ProtocolPlayer;
pub use two_player::TwoPlayerCr;
