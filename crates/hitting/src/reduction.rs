//! Lemma 14's reduction, executable: a contention-resolution protocol as a
//! hitting-game player.

use rand::rngs::SmallRng;

use fading_sim::{node_rng, Action, Protocol, Reception};

use crate::players::HittingPlayer;

/// Wraps any contention-resolution [`Protocol`] as a player for the
/// restricted k-hitting game — the constructive content of the paper's
/// Lemma 14.
///
/// The player simulates `k` virtual nodes with ids `0, …, k−1`, each running
/// its own protocol instance with its own derived RNG stream. Every game
/// round:
///
/// 1. each virtual node chooses its action; the set of transmitters becomes
///    the round's **proposal**;
/// 2. every listener is fed [`Reception::Silence`] ("receives nothing").
///
/// As the paper argues, for the two hidden target nodes `{i, j}` this
/// simulation is *consistent with a real two-node execution* in every
/// losing round (either both were silent/transmitting — and two concurrent
/// transmitters jam each other — or the proposal would already have won).
/// Hence a protocol solving two-player contention resolution in `f` rounds
/// wins the hitting game in `f` rounds, and Lemma 13's `Ω(log k)` transfers.
///
/// # Example
///
/// ```
/// use fading_hitting::{ProtocolPlayer, RestrictedHitting};
/// use fading_protocols::Fkn;
///
/// let mut player = ProtocolPlayer::new(16, 7, |_| Box::new(Fkn::new()));
/// let mut game = RestrictedHitting::new(16, 3).unwrap();
/// let won = game.play(&mut player, 10_000, 7);
/// assert!(won.is_some());
/// ```
#[derive(Debug)]
pub struct ProtocolPlayer {
    nodes: Vec<Box<dyn Protocol>>,
    rngs: Vec<SmallRng>,
    /// Listener ids of the previous proposal round, awaiting their silence.
    round_listeners: Vec<usize>,
}

impl ProtocolPlayer {
    /// Builds the player: `k` virtual nodes, protocol instances from
    /// `make_protocol`, RNG streams derived from `seed` exactly as the real
    /// simulator derives them.
    pub fn new<F>(k: usize, seed: u64, mut make_protocol: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn Protocol>,
    {
        ProtocolPlayer {
            nodes: (0..k).map(&mut make_protocol).collect(),
            rngs: (0..k).map(|i| node_rng(seed, i)).collect(),
            round_listeners: Vec::new(),
        }
    }

    /// Number of virtual nodes still active in the simulation. (With only
    /// silence ever delivered, knockout-style protocols never deactivate —
    /// asserting this catches protocols that would desynchronize the
    /// reduction by acting on fabricated receptions.)
    #[must_use]
    pub fn active_nodes(&self) -> usize {
        self.nodes.iter().filter(|p| p.is_active()).count()
    }
}

impl HittingPlayer for ProtocolPlayer {
    fn k(&self) -> usize {
        self.nodes.len()
    }

    fn propose(&mut self, round: u64, _rng: &mut SmallRng) -> Vec<usize> {
        // Deliver the pending silences from the previous (losing) round.
        for &v in &self.round_listeners {
            self.nodes[v].feedback(round.saturating_sub(1), &Reception::Silence);
        }
        self.round_listeners.clear();

        let mut proposal = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !node.is_active() {
                continue;
            }
            match node.act(round, &mut self.rngs[i]) {
                Action::Transmit => proposal.push(i),
                Action::Listen => self.round_listeners.push(i),
            }
        }
        proposal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RestrictedHitting;
    use fading_protocols::{Decay, Fkn};
    use rand::SeedableRng;

    #[test]
    fn fkn_player_wins_the_game() {
        let mut wins = 0;
        for seed in 0..10 {
            let mut game = RestrictedHitting::new(32, seed).unwrap();
            let mut player = ProtocolPlayer::new(32, seed, |_| Box::new(Fkn::new()));
            if game.play(&mut player, 5_000, seed).is_some() {
                wins += 1;
            }
        }
        assert_eq!(wins, 10);
    }

    #[test]
    fn decay_player_wins_the_game() {
        let mut game = RestrictedHitting::new(16, 5).unwrap();
        let mut player = ProtocolPlayer::new(16, 5, |_| Box::new(Decay::without_knockout()));
        assert!(game.play(&mut player, 50_000, 5).is_some());
    }

    #[test]
    fn silence_keeps_all_nodes_active() {
        // The reduction feeds only silence, so knockout protocols never
        // deactivate inside the simulation.
        let mut player = ProtocolPlayer::new(8, 1, |_| Box::new(Fkn::new()));
        let mut rng = SmallRng::seed_from_u64(0);
        for round in 1..=100 {
            let _ = player.propose(round, &mut rng);
        }
        assert_eq!(player.active_nodes(), 8);
    }

    #[test]
    fn proposals_are_reproducible_per_seed() {
        let run = |seed: u64| {
            let mut player = ProtocolPlayer::new(8, seed, |_| Box::new(Fkn::new()));
            let mut rng = SmallRng::seed_from_u64(0);
            (1..=20u64)
                .map(|r| player.propose(r, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn player_reports_k() {
        let player = ProtocolPlayer::new(12, 0, |_| Box::new(Fkn::new()));
        assert_eq!(player.k(), 12);
    }
}
