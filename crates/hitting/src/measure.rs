//! Distribution measurement for hitting-game strategies.
//!
//! Lemma 13 is a statement about the *high-probability* regime: even
//! strategies with constant expected winning time need `Ω(log k)` rounds to
//! win with probability `1 − 1/k`. These helpers measure win-round
//! distributions and extract high-probability quantiles so the bound's
//! shape can be plotted.

use crate::{HittingPlayer, RestrictedHitting};

/// The measured win-round distribution of a player family against seeded
/// referees.
#[derive(Debug, Clone, PartialEq)]
pub struct WinDistribution {
    /// Sorted winning rounds of the trials that won.
    pub rounds: Vec<u64>,
    /// Trials that failed to win within the budget.
    pub failures: usize,
}

impl WinDistribution {
    /// Number of winning trials.
    #[must_use]
    pub fn wins(&self) -> usize {
        self.rounds.len()
    }

    /// Mean winning round (`None` if nothing won).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.rounds.is_empty() {
            return None;
        }
        Some(self.rounds.iter().sum::<u64>() as f64 / self.rounds.len() as f64)
    }

    /// The empirical `q`-quantile of the winning round (`q ∈ [0, 1]`),
    /// counting failures as `+∞` (so a quantile that lands in the failure
    /// mass returns `None`).
    ///
    /// This is deliberately **not** the workspace's canonical
    /// linear-interpolation percentile (`fading_sim::montecarlo::percentile`,
    /// re-exported by `fading_analysis::stats`): with failure mass at `+∞`
    /// interpolation between order statistics is meaningless, so this takes
    /// the upper empirical order statistic instead.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.rounds.len() + self.failures;
        if total == 0 {
            return None;
        }
        let idx = ((total as f64 * q).ceil() as usize).max(1) - 1;
        self.rounds.get(idx).copied()
    }

    /// Lemma 13's operating point: the rounds needed for success with
    /// probability `1 − 1/k` — the `(1 − 1/k)`-quantile.
    #[must_use]
    pub fn whp_rounds(&self, k: usize) -> Option<u64> {
        self.quantile(1.0 - 1.0 / k.max(2) as f64)
    }
}

/// Plays `trials` independent seeded games of size `k` (referee seed =
/// player seed = `seed_base + trial`) and collects the win-round
/// distribution. `make_player` builds a fresh player per trial.
///
/// # Panics
///
/// Panics when `k < 2` — the restricted hitting game needs at least two
/// candidate elements.
pub fn win_distribution<F>(
    k: usize,
    trials: usize,
    seed_base: u64,
    max_rounds: u64,
    mut make_player: F,
) -> WinDistribution
where
    F: FnMut(u64) -> Box<dyn HittingPlayer>,
{
    let mut rounds = Vec::new();
    let mut failures = 0;
    for t in 0..trials as u64 {
        let seed = seed_base + t;
        let Ok(mut game) = RestrictedHitting::new(k, seed) else {
            panic!("win_distribution requires k >= 2, got {k}")
        };
        let mut player = make_player(seed);
        match game.play(player.as_mut(), max_rounds, seed) {
            Some(r) => rounds.push(r),
            None => failures += 1,
        }
    }
    rounds.sort_unstable();
    WinDistribution { rounds, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HalvingPlayer, UniformRandomPlayer};

    #[test]
    fn distribution_accessors() {
        let d = WinDistribution {
            rounds: vec![1, 2, 3, 4],
            failures: 0,
        };
        assert_eq!(d.wins(), 4);
        assert_eq!(d.mean(), Some(2.5));
        assert_eq!(d.quantile(0.0), Some(1));
        assert_eq!(d.quantile(1.0), Some(4));
        assert_eq!(d.quantile(0.5), Some(2));
    }

    #[test]
    fn failures_push_quantiles_to_none() {
        let d = WinDistribution {
            rounds: vec![1, 2],
            failures: 2,
        };
        // The 0.9 quantile of 4 trials is index 3: inside the failure mass.
        assert_eq!(d.quantile(0.9), None);
        assert_eq!(d.quantile(0.5), Some(2));
    }

    #[test]
    fn empty_distribution() {
        let d = WinDistribution {
            rounds: vec![],
            failures: 0,
        };
        assert_eq!(d.mean(), None);
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.wins(), 0);
    }

    #[test]
    fn halving_distribution_is_bounded_by_log_k() {
        let k = 64;
        let d = win_distribution(k, 50, 0, 1000, |_| Box::new(HalvingPlayer::new(k)));
        assert_eq!(d.failures, 0);
        assert!(d.rounds.iter().all(|&r| r <= 6));
    }

    #[test]
    fn random_player_whp_grows_with_k() {
        let whp = |k: usize| {
            win_distribution(k, 2000, 0, 100_000, |_| {
                Box::new(UniformRandomPlayer::new(k))
            })
            .whp_rounds(k)
            .expect("random player always wins eventually")
        };
        let small = whp(8);
        let large = whp(512);
        assert!(
            large > small,
            "whp rounds did not grow: k=8 -> {small}, k=512 -> {large}"
        );
        // The theoretical value is log2(k): 3 vs 9. Allow slack.
        assert!((2..=6).contains(&small), "small {small}");
        assert!((6..=14).contains(&large), "large {large}");
    }

    #[test]
    #[should_panic(expected = "quantile must be")]
    fn quantile_range_is_validated() {
        let d = WinDistribution {
            rounds: vec![1],
            failures: 0,
        };
        let _ = d.quantile(1.5);
    }
}
