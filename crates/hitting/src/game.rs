//! The restricted k-hitting game.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::players::HittingPlayer;

/// Errors constructing a hitting game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GameError {
    /// The universe must have at least two elements to hide a 2-set.
    UniverseTooSmall {
        /// The supplied `k`.
        k: usize,
    },
    /// The explicit target was not a valid 2-subset of `{0, …, k−1}`.
    InvalidTarget {
        /// The supplied target pair.
        target: [usize; 2],
    },
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GameError::UniverseTooSmall { k } => {
                write!(f, "universe size {k} too small, need k >= 2")
            }
            GameError::InvalidTarget { target } => write!(
                f,
                "target {{{}, {}}} is not a 2-subset of the universe",
                target[0], target[1]
            ),
        }
    }
}

impl std::error::Error for GameError {}

/// One instance of the restricted `k`-hitting game.
///
/// The referee holds a hidden 2-element target `T ⊆ {0, …, k−1}`. Each round
/// the player proposes a set `P`; the player **wins** the first round where
/// `|P ∩ T| = 1`. A losing round conveys no information (the player is told
/// nothing, matching the paper's definition — this is what makes the game
/// hard and the `Ω(log k)` bound of Lemma 13 apply).
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct RestrictedHitting {
    k: usize,
    target: [usize; 2],
}

impl RestrictedHitting {
    /// Creates a game with a referee-chosen (seeded uniform) target.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UniverseTooSmall`] if `k < 2`.
    pub fn new(k: usize, referee_seed: u64) -> Result<Self, GameError> {
        if k < 2 {
            return Err(GameError::UniverseTooSmall { k });
        }
        let mut rng = SmallRng::seed_from_u64(referee_seed);
        let first = rng.gen_range(0..k);
        let mut second = rng.gen_range(0..k - 1);
        if second >= first {
            second += 1;
        }
        Ok(RestrictedHitting {
            k,
            target: [first.min(second), first.max(second)],
        })
    }

    /// Creates a game with an explicit target (useful for adversarial /
    /// worst-case analysis).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UniverseTooSmall`] if `k < 2`, or
    /// [`GameError::InvalidTarget`] if the pair is out of range or equal.
    pub fn with_target(k: usize, target: [usize; 2]) -> Result<Self, GameError> {
        if k < 2 {
            return Err(GameError::UniverseTooSmall { k });
        }
        if target[0] == target[1] || target[0] >= k || target[1] >= k {
            return Err(GameError::InvalidTarget { target });
        }
        Ok(RestrictedHitting {
            k,
            target: [target[0].min(target[1]), target[0].max(target[1])],
        })
    }

    /// The universe size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The hidden target (exposed for test and measurement harnesses; a
    /// player must obviously not look).
    #[must_use]
    pub fn target(&self) -> [usize; 2] {
        self.target
    }

    /// Whether a proposal wins: exactly one target element is covered.
    #[must_use]
    pub fn is_winning(&self, proposal: &[usize]) -> bool {
        let hit0 = proposal.contains(&self.target[0]);
        let hit1 = proposal.contains(&self.target[1]);
        hit0 != hit1
    }

    /// Plays the game: returns the 1-based round of the first winning
    /// proposal, or `None` if `max_rounds` pass without a win.
    ///
    /// `player_seed` seeds the player's RNG stream.
    pub fn play(
        &mut self,
        player: &mut dyn HittingPlayer,
        max_rounds: u64,
        player_seed: u64,
    ) -> Option<u64> {
        let mut rng = SmallRng::seed_from_u64(player_seed);
        for round in 1..=max_rounds {
            let proposal = player.propose(round, &mut rng);
            debug_assert!(
                proposal.iter().all(|&x| x < self.k),
                "proposal out of universe"
            );
            if self.is_winning(&proposal) {
                return Some(round);
            }
            // Losing proposals convey no information: nothing to report.
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::players::{HalvingPlayer, SingletonPlayer};

    #[test]
    fn referee_target_is_valid_and_deterministic() {
        for seed in 0..50 {
            let g = RestrictedHitting::new(10, seed).unwrap();
            let [a, b] = g.target();
            assert!(a < b && b < 10);
            let g2 = RestrictedHitting::new(10, seed).unwrap();
            assert_eq!(g.target(), g2.target());
        }
    }

    #[test]
    fn referee_targets_vary_across_seeds() {
        let distinct: std::collections::HashSet<[usize; 2]> = (0..100)
            .map(|s| RestrictedHitting::new(50, s).unwrap().target())
            .collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            RestrictedHitting::new(1, 0),
            Err(GameError::UniverseTooSmall { k: 1 })
        ));
        assert!(RestrictedHitting::with_target(4, [0, 0]).is_err());
        assert!(RestrictedHitting::with_target(4, [0, 4]).is_err());
        assert!(RestrictedHitting::with_target(4, [3, 1]).is_ok());
    }

    #[test]
    fn winning_condition_is_exactly_one() {
        let g = RestrictedHitting::with_target(8, [2, 5]).unwrap();
        assert!(!g.is_winning(&[])); // zero hits
        assert!(!g.is_winning(&[0, 1, 3])); // zero hits
        assert!(g.is_winning(&[2])); // one hit
        assert!(g.is_winning(&[5, 7])); // one hit
        assert!(!g.is_winning(&[2, 5])); // both hit
        assert!(!g.is_winning(&[0, 2, 5, 7])); // both hit
    }

    #[test]
    fn halving_player_wins_within_log_k() {
        for seed in 0..20 {
            let mut g = RestrictedHitting::new(64, seed).unwrap();
            let mut p = HalvingPlayer::new(64);
            let won = g.play(&mut p, 100, 0).expect("halving always wins");
            assert!(
                won <= 6,
                "took {won} rounds for k=64 (target {:?})",
                g.target()
            );
        }
    }

    #[test]
    fn singleton_player_wins_within_k() {
        let mut g = RestrictedHitting::with_target(16, [0, 9]).unwrap();
        let mut p = SingletonPlayer::new(16);
        let won = g.play(&mut p, 16, 0).expect("singleton wins within k");
        assert_eq!(won, 1); // proposes {0} in round 1, hits element 0
    }

    #[test]
    fn play_respects_round_budget() {
        let mut g = RestrictedHitting::with_target(16, [3, 7]).unwrap();
        // SingletonPlayer proposes {round-1 mod k}: hits 3 at round 4.
        let mut p = SingletonPlayer::new(16);
        assert_eq!(g.play(&mut p, 3, 0), None);
        let mut p = SingletonPlayer::new(16);
        assert_eq!(g.play(&mut p, 4, 0), Some(4));
    }

    #[test]
    fn error_display() {
        assert!(GameError::UniverseTooSmall { k: 1 }
            .to_string()
            .contains("k >= 2"));
        assert!(GameError::InvalidTarget { target: [1, 1] }
            .to_string()
            .contains("2-subset"));
    }
}
