//! Players for the restricted k-hitting game.

use rand::rngs::SmallRng;
use rand::Rng;

/// A strategy for the restricted k-hitting game.
///
/// A player proposes a subset of `{0, …, k−1}` each round. Crucially, the
/// game delivers **no feedback** on losing rounds, so there is no feedback
/// method: a player's behavior may depend only on the round number and its
/// own random choices. (This matches the paper's game; the generality of
/// the lower bound — no restriction to fixed probability sequences — is
/// achieved on the *contention-resolution* side of the reduction, where
/// simulated nodes do receive per-round silence.)
pub trait HittingPlayer: std::fmt::Debug {
    /// The universe size `k` this player was built for.
    fn k(&self) -> usize;

    /// Proposes a set for the given 1-based round.
    fn propose(&mut self, round: u64, rng: &mut SmallRng) -> Vec<usize>;
}

/// The deterministic bit-fixing strategy: in round `b` propose every element
/// whose `b`-th binary digit is 1.
///
/// Any two distinct elements differ in some bit among the first
/// `⌈log₂ k⌉`, so the player wins **with certainty** within `⌈log₂ k⌉`
/// rounds — the matching upper bound for Lemma 13's `Ω(log k)`.
#[derive(Debug, Clone)]
pub struct HalvingPlayer {
    k: usize,
}

impl HalvingPlayer {
    /// Creates the player for universe size `k`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        HalvingPlayer { k }
    }
}

impl HittingPlayer for HalvingPlayer {
    fn k(&self) -> usize {
        self.k
    }

    fn propose(&mut self, round: u64, _rng: &mut SmallRng) -> Vec<usize> {
        let bit = (round - 1) % usize::BITS as u64;
        (0..self.k).filter(|x| (x >> bit) & 1 == 1).collect()
    }
}

/// The random-half strategy: propose each element independently with
/// probability 1/2 each round.
///
/// A round separates the two hidden targets with probability exactly 1/2,
/// so the player wins in 2 expected rounds — but needs `log₂ k` rounds to
/// push the failure probability below `1/k`, illustrating that Lemma 13's
/// bound is about the *high-probability* regime.
#[derive(Debug, Clone)]
pub struct UniformRandomPlayer {
    k: usize,
}

impl UniformRandomPlayer {
    /// Creates the player for universe size `k`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        UniformRandomPlayer { k }
    }
}

impl HittingPlayer for UniformRandomPlayer {
    fn k(&self) -> usize {
        self.k
    }

    fn propose(&mut self, _round: u64, rng: &mut SmallRng) -> Vec<usize> {
        (0..self.k).filter(|_| rng.gen_bool(0.5)).collect()
    }
}

/// The naive strategy: propose the singleton `{(round−1) mod k}`.
///
/// Hits a target element after at most `k` rounds (in expectation `~k/4`
/// against a uniform referee): the `Θ(k)` baseline showing how much
/// structure the halving strategy exploits.
#[derive(Debug, Clone)]
pub struct SingletonPlayer {
    k: usize,
}

impl SingletonPlayer {
    /// Creates the player for universe size `k`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        SingletonPlayer { k }
    }
}

impl HittingPlayer for SingletonPlayer {
    fn k(&self) -> usize {
        self.k
    }

    fn propose(&mut self, round: u64, _rng: &mut SmallRng) -> Vec<usize> {
        vec![((round - 1) % self.k as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    #[test]
    fn halving_round_one_is_odd_elements() {
        let mut p = HalvingPlayer::new(8);
        let prop = p.propose(1, &mut rng());
        assert_eq!(prop, vec![1, 3, 5, 7]);
        let prop2 = p.propose(2, &mut rng());
        assert_eq!(prop2, vec![2, 3, 6, 7]);
    }

    #[test]
    fn halving_separates_any_pair_within_log_k() {
        let k = 32;
        for a in 0..k {
            for b in (a + 1)..k {
                let mut p = HalvingPlayer::new(k);
                let mut separated = false;
                for round in 1..=5u64 {
                    let prop = p.propose(round, &mut rng());
                    if prop.contains(&a) != prop.contains(&b) {
                        separated = true;
                        break;
                    }
                }
                assert!(separated, "pair ({a},{b}) never separated");
            }
        }
    }

    #[test]
    fn random_player_proposes_about_half() {
        let mut p = UniformRandomPlayer::new(1000);
        let mut r = rng();
        let sizes: Vec<usize> = (1..=20)
            .map(|round| p.propose(round, &mut r).len())
            .collect();
        let mean = sizes.iter().sum::<usize>() as f64 / 20.0;
        assert!((mean - 500.0).abs() < 60.0, "mean {mean}");
    }

    #[test]
    fn singleton_cycles() {
        let mut p = SingletonPlayer::new(3);
        let mut r = rng();
        assert_eq!(p.propose(1, &mut r), vec![0]);
        assert_eq!(p.propose(2, &mut r), vec![1]);
        assert_eq!(p.propose(3, &mut r), vec![2]);
        assert_eq!(p.propose(4, &mut r), vec![0]);
    }

    #[test]
    fn players_report_k() {
        assert_eq!(HalvingPlayer::new(7).k(), 7);
        assert_eq!(UniformRandomPlayer::new(7).k(), 7);
        assert_eq!(SingletonPlayer::new(7).k(), 7);
    }
}
