//! Two-player contention resolution (the middle link of §4's reduction).

use fading_sim::{node_rng, Action, Protocol, Reception};

/// The two-player contention-resolution game: two nodes run a protocol; the
/// game is won the first round in which exactly one transmits. In every
/// other round both listeners (if any) receive nothing — with only two
/// nodes "the fading behavior of the channel does not matter, as there is
/// no opportunity for spatial reuse" (§4), so no channel model is needed.
///
/// Lemma 14 lower-bounds this game by `Ω(log k)` for success probability
/// `1 − 1/k`; [`TwoPlayerCr`] lets the reproduction measure the matching
/// distributions for real protocols.
///
/// # Example
///
/// ```
/// use fading_hitting::TwoPlayerCr;
/// use fading_protocols::Fkn;
///
/// let game = TwoPlayerCr::new(|_| Box::new(Fkn::new()));
/// let rounds = game.play(42, 10_000).expect("symmetric coins break eventually");
/// assert!(rounds >= 1);
/// ```
#[derive(Debug)]
pub struct TwoPlayerCr<F> {
    make_protocol: F,
}

impl<F> TwoPlayerCr<F>
where
    F: Fn(usize) -> Box<dyn Protocol>,
{
    /// Creates the game with a per-node protocol factory (called with node
    /// ids 0 and 1 at each [`TwoPlayerCr::play`]).
    pub fn new(make_protocol: F) -> Self {
        TwoPlayerCr { make_protocol }
    }

    /// Plays one instance with the given seed: returns the 1-based round in
    /// which symmetry broke (exactly one transmitted), or `None` within
    /// `max_rounds`.
    pub fn play(&self, seed: u64, max_rounds: u64) -> Option<u64> {
        let mut nodes = [(self.make_protocol)(0), (self.make_protocol)(1)];
        let mut rngs = [node_rng(seed, 0), node_rng(seed, 1)];
        for round in 1..=max_rounds {
            let a = nodes[0].act(round, &mut rngs[0]);
            let b = nodes[1].act(round, &mut rngs[1]);
            match (a, b) {
                (Action::Transmit, Action::Listen) | (Action::Listen, Action::Transmit) => {
                    return Some(round);
                }
                (Action::Listen, Action::Listen) => {
                    nodes[0].feedback(round, &Reception::Silence);
                    nodes[1].feedback(round, &Reception::Silence);
                }
                (Action::Transmit, Action::Transmit) => {
                    // Two concurrent transmitters jam each other; neither
                    // listens, so neither learns anything.
                }
            }
        }
        None
    }

    /// Plays `trials` seeded instances and returns the per-trial winning
    /// rounds (capped trials yield `None`).
    pub fn play_many(&self, trials: usize, seed_base: u64, max_rounds: u64) -> Vec<Option<u64>> {
        (0..trials)
            .map(|i| self.play(seed_base + i as u64, max_rounds))
            .collect()
    }

    /// The operational content of Theorem 2 for a concrete algorithm: the
    /// empirical `(1 − 1/k)`-quantile of the two-player winning round —
    /// the rounds this algorithm needs to break two-player symmetry *with
    /// high probability in `k`* (the success level contention resolution
    /// demands in a `k`-node network containing the pair).
    ///
    /// Lemmas 13–14 prove this is `Ω(log k)` for **every** algorithm;
    /// measuring it for FKN shows the paper's own algorithm sits on the
    /// lower bound's curve.
    ///
    /// Returns `None` if the quantile falls into the unresolved-trials mass.
    pub fn whp_rounds(&self, k: usize, trials: usize, seed_base: u64) -> Option<u64> {
        let mut rounds: Vec<u64> = self
            .play_many(trials, seed_base, 1_000_000)
            .into_iter()
            .flatten()
            .collect();
        let failures = trials - rounds.len();
        rounds.sort_unstable();
        let q = 1.0 - 1.0 / k.max(2) as f64;
        let idx = ((trials as f64 * q).ceil() as usize).max(1) - 1;
        if idx >= rounds.len() + failures {
            return None;
        }
        rounds.get(idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_protocols::{Decay, Fkn};

    #[test]
    fn fkn_breaks_symmetry_quickly() {
        let game = TwoPlayerCr::new(|_| Box::new(Fkn::with_probability(0.25).unwrap()));
        let rounds: Vec<u64> = game
            .play_many(200, 0, 100_000)
            .into_iter()
            .map(|r| r.expect("fkn always breaks symmetry eventually"))
            .collect();
        let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
        // Per round: P(exactly one transmits) = 2·(1/4)·(3/4) = 3/8; the
        // expected winning round is 8/3 ≈ 2.67.
        assert!((mean - 8.0 / 3.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn decay_breaks_symmetry() {
        let game = TwoPlayerCr::new(|_| Box::new(Decay::without_knockout()));
        let results = game.play_many(50, 100, 100_000);
        assert!(results.iter().all(Option::is_some));
    }

    #[test]
    fn tail_decays_geometrically() {
        // P(not resolved by round r) = (5/8)^r for FKN at p = 1/4: the
        // empirical 99th percentile should be near log(0.01)/log(5/8) ≈ 10.
        let game = TwoPlayerCr::new(|_| Box::new(Fkn::with_probability(0.25).unwrap()));
        let mut rounds: Vec<u64> = game
            .play_many(1000, 7, 100_000)
            .into_iter()
            .flatten()
            .collect();
        rounds.sort_unstable();
        let p99 = rounds[989];
        assert!((5..=20).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn whp_rounds_grow_logarithmically_in_k() {
        // Theorem 2's shape, measured on the paper's own algorithm: the
        // two-player whp cost grows with log k even though the mean is
        // constant (≈ 1/(2p(1-p)) rounds).
        let game = TwoPlayerCr::new(|_| Box::new(Fkn::new()));
        let whp = |k: usize| game.whp_rounds(k, 4000, 0).expect("quantile resolved");
        let small = whp(16);
        let medium = whp(256);
        let large = whp(4096);
        assert!(small < medium && medium < large, "{small} {medium} {large}");
        // Geometric tail with per-round success 2p(1-p) ≈ 0.095 at p=0.05:
        // whp(k) ≈ ln(k)/0.0998; increments per 16x of k are equal.
        let inc1 = medium - small;
        let inc2 = large - medium;
        assert!(
            inc2 < 3 * inc1.max(5) && inc1 < 3 * inc2.max(5),
            "increments not log-linear: {inc1} vs {inc2}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let game = TwoPlayerCr::new(|_| Box::new(Fkn::new()));
        assert_eq!(game.play(5, 1000), game.play(5, 1000));
    }

    #[test]
    fn round_budget_respected() {
        // With an always-transmit protocol the game can never be won.
        #[derive(Debug)]
        struct AlwaysTx;
        impl Protocol for AlwaysTx {
            fn act(&mut self, _r: u64, _rng: &mut rand::rngs::SmallRng) -> Action {
                Action::Transmit
            }
            fn feedback(&mut self, _r: u64, _rx: &Reception) {}
            fn is_active(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "always"
            }
        }
        let game = TwoPlayerCr::new(|_| Box::new(AlwaysTx) as Box<dyn Protocol>);
        assert_eq!(game.play(0, 100), None);
    }
}
