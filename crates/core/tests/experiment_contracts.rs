//! Contracts every experiment table must satisfy regardless of scale:
//! consistent shape, parseable cells, and serializability. These guard the
//! harness itself (the numbers are asserted elsewhere, per experiment).

use fading_cr::experiments::{run_by_id, ExperimentConfig, ALL_IDS};

fn tiny_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.trials = 3;
    cfg.max_n_pow2 = 6;
    cfg
}

#[test]
fn every_table_has_consistent_row_widths() {
    let cfg = tiny_config();
    for id in ALL_IDS {
        let t = run_by_id(id, &cfg).expect("known id");
        let width = t.rows()[0].len();
        for (k, row) in t.rows().iter().enumerate() {
            assert_eq!(row.len(), width, "{id} row {k} width mismatch");
        }
    }
}

#[test]
fn every_table_round_trips_through_csv() {
    let cfg = tiny_config();
    for id in ALL_IDS {
        let t = run_by_id(id, &cfg).expect("known id");
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + one line per row.
        assert_eq!(lines.len(), t.num_rows() + 1, "{id}");
        // No cell in these tables needs quoting (keeps downstream parsing
        // trivial); titles and notes are not part of the CSV.
        assert!(!csv.contains('"'), "{id} produced quoted CSV cells");
    }
}

#[test]
fn experiments_are_deterministic_given_the_config() {
    let cfg = tiny_config();
    for id in ["e1", "e5", "e7", "e10", "e12"] {
        let a = run_by_id(id, &cfg).expect("known id");
        let b = run_by_id(id, &cfg).expect("known id");
        assert_eq!(a, b, "{id} not deterministic");
    }
}

#[test]
fn seed_changes_numbers_but_not_shape() {
    let cfg_a = tiny_config();
    let mut cfg_b = tiny_config();
    cfg_b.seed = 999;
    let a = run_by_id("e1", &cfg_a).expect("known id");
    let b = run_by_id("e1", &cfg_b).expect("known id");
    assert_eq!(a.num_rows(), b.num_rows());
    // Same n column, (generically) different measurements.
    let n_col =
        |t: &fading_cr::Table| -> Vec<String> { t.rows().iter().map(|r| r[0].clone()).collect() };
    assert_eq!(n_col(&a), n_col(&b));
    assert_ne!(a, b, "different seeds produced identical tables");
}

#[test]
fn success_columns_parse_as_probabilities() {
    let cfg = tiny_config();
    // Experiments with an explicit success column and its index.
    for (id, col) in [("e1", 2usize), ("e2", 3), ("e5", 1), ("e6", 2)] {
        let t = run_by_id(id, &cfg).expect("known id");
        for row in t.rows() {
            let s: f64 = row[col]
                .parse()
                .unwrap_or_else(|_| panic!("{id} success cell `{}`", row[col]));
            assert!((0.0..=1.0).contains(&s), "{id} success {s}");
        }
    }
}
