//! Multi-table markdown report assembly.
//!
//! The `experiments` binary prints tables as it goes; [`Report`] collects
//! them into a single markdown document with a table of contents and a
//! configuration preamble — the machine-written core of `EXPERIMENTS.md`.

use std::fmt;

use crate::Table;

/// An ordered collection of experiment tables rendered as one markdown
/// document.
///
/// # Example
///
/// ```
/// use fading_cr::{report::Report, Table};
///
/// let mut t = Table::new("E0: demo");
/// t.headers(["n", "rounds"]).row(["16", "3.1"]);
/// let doc = Report::new("my run")
///     .preamble("seed = 1")
///     .table(t)
///     .render();
/// assert!(doc.contains("# my run"));
/// assert!(doc.contains("- E0: demo"));
/// assert!(doc.contains("| 16 |"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    preamble: Vec<String>,
    tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report with a document title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Appends a preamble paragraph (configuration, provenance, caveats).
    #[must_use]
    pub fn preamble(mut self, text: impl Into<String>) -> Self {
        self.preamble.push(text.into());
        self
    }

    /// Appends a table.
    #[must_use]
    pub fn table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Number of tables collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if no tables have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Renders the full markdown document: title, preamble, a table of
    /// contents (one bullet per table title), then every table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        for p in &self.preamble {
            out.push_str(p);
            out.push_str("\n\n");
        }
        if !self.tables.is_empty() {
            out.push_str("Contents:\n\n");
            for t in &self.tables {
                out.push_str(&format!("- {}\n", t.title()));
            }
            out.push('\n');
        }
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(title: &str) -> Table {
        let mut t = Table::new(title);
        t.headers(["a"]).row(["1"]);
        t
    }

    #[test]
    fn renders_toc_in_order() {
        let doc = Report::new("run")
            .table(table("first"))
            .table(table("second"))
            .render();
        let toc_first = doc.find("- first").expect("toc entry");
        let toc_second = doc.find("- second").expect("toc entry");
        let body_first = doc.find("## first").expect("body");
        assert!(toc_first < toc_second);
        assert!(toc_second < body_first);
    }

    #[test]
    fn preamble_precedes_contents() {
        let doc = Report::new("run")
            .preamble("config: quick")
            .table(table("only"))
            .render();
        assert!(doc.find("config: quick").unwrap() < doc.find("Contents:").unwrap());
    }

    #[test]
    fn empty_report_has_no_toc() {
        let r = Report::new("empty");
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.render().contains("Contents:"));
    }

    #[test]
    fn display_matches_render() {
        let r = Report::new("run").table(table("t"));
        assert_eq!(r.to_string(), r.render());
        assert_eq!(r.len(), 1);
    }
}
