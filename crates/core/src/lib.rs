//! # fading-cr
//!
//! **Contention resolution on a fading (SINR) channel** — a complete,
//! executable reproduction of *Contention Resolution on a Fading Channel*
//! (Fineman, Gilbert, Kuhn, Newport — PODC 2016).
//!
//! The paper's result: on a single-hop SINR channel, the maximally simple
//! algorithm — every active node broadcasts with constant probability and
//! deactivates upon receiving any message — resolves contention in
//! `O(log n + log R)` rounds w.h.p. (`R` = longest/shortest link ratio),
//! beating the `Ω(log² n)` lower bound of the non-fading radio network
//! model; a matching `Ω(log n)` lower bound holds for fading networks with
//! `O(log n)` link classes.
//!
//! This crate is the workspace's front door. It re-exports:
//!
//! * the geometry substrate ([`fading_geom`]): deployments and generators;
//! * the channel models ([`fading_channel`]): exact SINR, classical radio,
//!   radio + collision detection, Rayleigh fading;
//! * the simulator ([`fading_sim`]) and all protocols
//!   ([`fading_protocols`]): the paper's [`Fkn`] algorithm and every
//!   baseline it compares against;
//! * the analysis machinery ([`fading_analysis`]): link classes, good
//!   nodes, separated subsets, the §3.3 class-bound schedule;
//! * the lower-bound games ([`fading_hitting`]).
//!
//! and adds:
//!
//! * [`Scenario`] — a validated builder tying deployment × channel ×
//!   protocol × seed together;
//! * [`theory`] — closed-form round-complexity predictions for overlaying
//!   measured data;
//! * [`experiments`] — the full harness (E1–E12) regenerating every
//!   quantitative claim of the paper as a [`Table`];
//! * [`Table`] — plain-text / CSV table rendering for experiment output;
//!   [`plot`] — dependency-free ASCII scaling plots.
//!
//! # Quickstart
//!
//! ```
//! use fading_cr::prelude::*;
//!
//! let scenario = Scenario::builder()
//!     .deployment(Deployment::uniform_square(64, 100.0, 7))
//!     .sinr(SinrParams::default_single_hop())
//!     .protocol(ProtocolKind::fkn_default())
//!     .seed(42)
//!     .build()
//!     .expect("valid scenario");
//! let result = scenario.run(10_000);
//! assert!(result.resolved());
//! println!("resolved in {} rounds", result.resolved_at().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod channel_kind;
pub mod experiments;
pub mod jobspec;
pub mod plot;
pub mod report;
mod scenario;
mod table;
pub mod theory;

pub use channel_kind::ChannelKind;
pub use jobspec::{ChannelSpec, JobSpec, JobSpecError};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioError};
pub use table::Table;

pub use fading_analysis as analysis;
pub use fading_channel as channel;
pub use fading_geom as geom;
pub use fading_hitting as hitting;
pub use fading_protocols as protocols;
pub use fading_sim as sim;

/// The names a typical user needs, importable in one line.
pub mod prelude {
    pub use crate::channel_kind::ChannelKind;
    pub use crate::scenario::{Scenario, ScenarioBuilder, ScenarioError};
    pub use crate::table::Table;
    pub use fading_analysis::{ClassBoundSchedule, GoodNodes, LinkClasses, ScheduleParams};
    pub use fading_channel::{
        ActiveInterference, Channel, ChunkExecutor, FarFieldEngine, FarFieldStats, GainCache,
        HierarchicalFarFieldEngine, RadioCdChannel, RadioChannel, RayleighSinrChannel, Reception,
        SerialExecutor, SinrChannel, SinrParams,
    };
    pub use fading_geom::{generators, Deployment, Point};
    pub use fading_hitting::{
        HalvingPlayer, HittingPlayer, ProtocolPlayer, RestrictedHitting, TwoPlayerCr,
        UniformRandomPlayer,
    };
    pub use fading_protocols::{
        Aloha, CdElection, CyclicSweep, Decay, FixedProbability, Fkn, Interleave,
        JurdzinskiStachowiak, ProtocolKind,
    };
    pub use fading_sim::{
        faults, montecarlo, Action, FaultPlan, Protocol, RunOutcome, RunResult, SimError,
        Simulation, StealPool, TraceLevel, HIERARCHICAL_AUTO_THRESHOLD,
    };
}

pub use prelude::*;
