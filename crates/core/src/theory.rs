//! Closed-form round-complexity predictions.
//!
//! These are the asymptotic bounds the paper states, instantiated with a
//! free leading constant so measured data can be overlaid on the predicted
//! *shape* (the reproduction matches shapes, not testbed constants).

/// Theorem 1: the paper's algorithm resolves contention in
/// `c·(log₂ n + log₂ R)` rounds w.h.p. on a fading channel.
///
/// # Example
///
/// ```
/// use fading_cr::theory::fkn_rounds;
/// // n = 1024, R = 16: 10 + 4 = 14 units.
/// assert_eq!(fkn_rounds(1024, 16.0, 1.0), 14.0);
/// ```
#[must_use]
pub fn fkn_rounds(n: usize, link_ratio: f64, c: f64) -> f64 {
    c * ((n.max(2) as f64).log2() + link_ratio.max(1.0).log2())
}

/// The radio-network-model bound: high-probability contention resolution
/// takes `Θ(log² n)` rounds (the "speed limit" the paper's algorithm
/// beats).
#[must_use]
pub fn radio_rounds(n: usize, c: f64) -> f64 {
    let l = (n.max(2) as f64).log2();
    c * l * l
}

/// Jurdziński–Stachowiak PODC'15: `O(log² n / log log n)` on the fading
/// channel with a known polynomial bound on `n`.
#[must_use]
pub fn js_rounds(n: usize, c: f64) -> f64 {
    let l = (n.max(4) as f64).log2();
    c * l * l / l.log2().max(1.0)
}

/// Radio network with collision detection: `Θ(log n)`.
#[must_use]
pub fn cd_rounds(n: usize, c: f64) -> f64 {
    c * (n.max(2) as f64).log2()
}

/// Lemma 13: any player winning the restricted `k`-hitting game with
/// probability `1 − 1/k` needs `Ω(log k)` rounds; `c·log₂ k` is the
/// matching shape (the halving player achieves `c = 1` deterministically).
#[must_use]
pub fn hitting_rounds(k: usize, c: f64) -> f64 {
    c * (k.max(2) as f64).log2()
}

/// The speedup Theorem 1 claims over the radio-network model:
/// `log² n / (log n + log R)` — the "square root improvement" when `R` is
/// polynomial in `n`.
#[must_use]
pub fn predicted_speedup(n: usize, link_ratio: f64) -> f64 {
    radio_rounds(n, 1.0) / fkn_rounds(n, link_ratio, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fkn_is_additive_in_logs() {
        assert_eq!(fkn_rounds(16, 1.0, 2.0), 8.0);
        assert_eq!(fkn_rounds(16, 16.0, 1.0), 8.0);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert_eq!(fkn_rounds(0, 0.5, 1.0), 1.0); // log2(2) + log2(1)
        assert!(radio_rounds(1, 1.0) > 0.0);
        assert!(hitting_rounds(0, 1.0) > 0.0);
    }

    #[test]
    fn ordering_of_bounds_at_scale() {
        // For n = 2^20 and polynomial R = n: CD ≈ FKN < JS < radio.
        let n = 1 << 20;
        let r = n as f64;
        let fkn = fkn_rounds(n, r, 1.0);
        let js = js_rounds(n, 1.0);
        let radio = radio_rounds(n, 1.0);
        let cd = cd_rounds(n, 1.0);
        assert!(cd < fkn); // log n < 2·log n
        assert!(fkn < js, "fkn {fkn} vs js {js}");
        assert!(js < radio, "js {js} vs radio {radio}");
    }

    #[test]
    fn speedup_grows_with_n() {
        let small = predicted_speedup(1 << 8, (1 << 8) as f64);
        let large = predicted_speedup(1 << 20, (1 << 20) as f64);
        assert!(large > small);
        // log²n / (2 log n) = log n / 2.
        assert!((large - 10.0).abs() < 1e-9);
    }

    #[test]
    fn js_beats_radio_by_loglog() {
        let n = 1 << 16;
        let ratio = radio_rounds(n, 1.0) / js_rounds(n, 1.0);
        assert!((ratio - 4.0).abs() < 1e-9); // log log 2^16 = 4
    }
}
