//! E6 — the role of the path-loss exponent `α > 2`.

use super::common::{measure, sinr_with_alpha, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;
use fading_protocols::ProtocolKind;

/// E6: FKN's rounds as a function of the path-loss exponent `α`, at fixed
/// `n`.
///
/// **Claim reproduced:** the entire analysis lives in the gap `ε = α/2 − 1`
/// between quadratic annulus growth and super-quadratic signal decay
/// (§3.2, "the small but non-trivial gap … in the space created by this
/// gap"). As `α → 2⁺` the spatial-reuse slack vanishes and resolution
/// slows; at larger `α` interference localizes and knockouts accelerate,
/// with diminishing returns.
#[must_use]
pub fn e06_alpha_sweep(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E6: FKN rounds vs path-loss exponent alpha (n fixed, SINR)");
    table.headers(["alpha", "epsilon", "success", "mean", "median", "p95"]);

    let n = 1usize << cfg.max_n_pow2.min(9);
    let alphas = [2.05, 2.1, 2.25, 2.5, 2.75, 3.0, 3.5, 4.0, 5.0, 6.0];
    for (block, &alpha) in alphas.iter().enumerate() {
        // Near the alpha -> 2 wall, spatial reuse vanishes and rounds can
        // grow by orders of magnitude; cap those rows so the sweep
        // terminates (the success column then reports the degradation).
        let mut local_cfg = *cfg;
        if alpha < 2.3 {
            local_cfg.max_rounds = local_cfg.max_rounds.min(20_000);
        }
        let s = measure(
            &local_cfg,
            cfg.seed_block(block as u64),
            move |seed| standard_deployment(n, seed),
            move |d| sinr_with_alpha(d, alpha),
            |_| ProtocolKind::fkn_default(),
        );
        table.row([
            fmt_f64(alpha),
            fmt_f64(alpha / 2.0 - 1.0),
            fmt_f64(s.success_rate),
            fmt_f64(s.mean_rounds),
            fmt_f64(s.median_rounds),
            fmt_f64(s.p95_rounds),
        ]);
    }
    table.note(format!(
        "n = {n}; epsilon = alpha/2 - 1 is the paper's spatial-reuse gap"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_alpha_grid() {
        let cfg = ExperimentConfig::smoke();
        let t = e06_alpha_sweep(&cfg);
        assert_eq!(t.num_rows(), 10);
    }

    #[test]
    fn near_quadratic_alpha_is_slower() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 10;
        cfg.max_n_pow2 = 8;
        let t = e06_alpha_sweep(&cfg);
        let near2: f64 = t.rows()[0][3].parse().unwrap(); // alpha = 2.05
        let at4: f64 = t.rows()[7][3].parse().unwrap(); // alpha = 4.0
        assert!(
            near2 > at4,
            "alpha 2.05 ({near2}) should be slower than alpha 4 ({at4})"
        );
    }
}
