//! E16 — the fault-tolerant execution layer, exercised end to end.
//!
//! Three stages, one row each:
//!
//! 1. **supervised fleet** — a Monte-Carlo batch with one deliberately
//!    panicking trial, run through the supervisor: the panic is caught and
//!    retried (same seed, fresh state), the fleet completes, and the
//!    summary accounts for every trial.
//! 2. **manifest resume** — the same batch run half-way against an
//!    on-disk [`TrialManifest`], then "resumed": the second pass skips
//!    every completed trial and the combined results are byte-identical
//!    to an uninterrupted batch.
//! 3. **self-check demotion** — a run with an injected self-check
//!    violation: the serving tier is demoted mid-run (visible in the
//!    engine counters) and the run still finishes with the exact result.
//!
//! [`TrialManifest`]: fading_sim::recover::TrialManifest

use std::sync::atomic::{AtomicBool, Ordering};

use fading_sim::montecarlo::{
    run_trials, run_trials_supervised, run_trials_with_manifest,
};
use fading_sim::recover::{SupervisorConfig, TrialManifest};
use fading_sim::Simulation;

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;
use fading_protocols::ProtocolKind;

/// The seed offset (within the batch) of the deliberately panicking trial.
const PANIC_OFFSET: u64 = 2;

fn trial(cfg: &ExperimentConfig, n: usize, seed: u64) -> fading_sim::RunResult {
    let d = standard_deployment(n, seed);
    let ch = sinr_for(&d).build();
    let pk = ProtocolKind::fkn_default();
    let mut sim = Simulation::new(d, ch, seed, |id| pk.build(id));
    sim.run_until_resolved(cfg.max_rounds)
}

/// Runs the experiment: one table over the three robustness stages.
#[must_use]
pub fn e16_recovery(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E16: fault-tolerant execution — supervised fleets, manifest resume, self-check demotion",
    );
    table.headers(["stage", "n", "trials", "fleet / detail", "exact?"]);

    let n = 1usize << cfg.max_n_pow2.min(7);
    let trials = cfg.trials.max(4);
    let seed_base = cfg.seed_block(0);

    // Reference: the same batch with no supervision and no failures.
    let cfg_owned = *cfg;
    let reference = run_trials(trials, cfg.threads, seed_base, |seed| {
        trial(&cfg_owned, n, seed)
    });

    // Stage 1: supervised fleet with one injected panic (first attempt of
    // the seed at PANIC_OFFSET; the same-seed retry then runs clean, so
    // the fleet result is byte-identical to the reference).
    let tripped = AtomicBool::new(false);
    let cfg_owned = *cfg;
    let sup = run_trials_supervised(
        trials,
        cfg.threads,
        seed_base,
        &SupervisorConfig::default(),
        move |seed| {
            if seed == seed_base + PANIC_OFFSET && !tripped.swap(true, Ordering::SeqCst) {
                panic!("e16 injected panic (caught by the supervisor)");
            }
            trial(&cfg_owned, n, seed)
        },
    );
    let supervised_exact = sup.results() == reference.iter().collect::<Vec<_>>();
    table.row([
        "supervised".to_string(),
        n.to_string(),
        trials.to_string(),
        format!(
            "ok={} retried={} timed_out={} poisoned={}",
            sup.summary.succeeded, sup.summary.retried, sup.summary.timed_out,
            sup.summary.poisoned
        ),
        yes_no(supervised_exact && sup.summary.poisoned == 0),
    ]);

    // Stage 2: manifest resume. First pass completes half the batch, the
    // resumed pass skips exactly those trials and finishes the rest.
    let manifest_path = std::env::temp_dir().join(format!(
        "fading-e16-manifest-{}-{seed_base}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&manifest_path).ok();
    let expect = "e16 manifest I/O on a scratch file";
    let first = trials / 2;
    let mut manifest = TrialManifest::open(&manifest_path).expect(expect);
    let cfg_owned = *cfg;
    run_trials_with_manifest(first, cfg.threads, seed_base, &mut manifest, |seed| {
        trial(&cfg_owned, n, seed)
    })
    .expect(expect);
    // Re-open from disk — the resume path a killed process would take.
    let mut manifest = TrialManifest::open(&manifest_path).expect(expect);
    let already = manifest.completed();
    let cfg_owned = *cfg;
    let resumed = run_trials_with_manifest(trials, cfg.threads, seed_base, &mut manifest, |seed| {
        trial(&cfg_owned, n, seed)
    })
    .expect(expect);
    std::fs::remove_file(&manifest_path).ok();
    let resume_exact = resumed == reference;
    table.row([
        "manifest resume".to_string(),
        n.to_string(),
        trials.to_string(),
        format!("first pass={first} skipped on resume={already}"),
        yes_no(resume_exact && already == first),
    ]);

    // Stage 3: self-check demotion. A clean reference run vs one with an
    // injected violation: the tier is demoted, nothing panics, and the
    // result is still exact.
    let seed = seed_base;
    let d = standard_deployment(n, seed);
    let ch = sinr_for(&d).build();
    let pk = ProtocolKind::fkn_default();
    let mut clean_sim = Simulation::new(d.clone(), sinr_for(&d).build(), seed, |id| pk.build(id));
    let clean = clean_sim.run_until_resolved(cfg.max_rounds);
    let mut sim = Simulation::new(d, ch, seed, |id| pk.build(id));
    sim.set_self_check(2);
    sim.inject_self_check_violation();
    let checked = sim.run_until_resolved(cfg.max_rounds);
    let counters = sim.engine_counters();
    table.row([
        "self-check demote".to_string(),
        n.to_string(),
        "1".to_string(),
        format!(
            "violations={} demotions={} checked_rounds={} mean_rounds={}",
            counters.self_check_violations,
            counters.tier_demotions,
            counters.self_check_rounds,
            fmt_f64(clean.rounds_executed() as f64),
        ),
        yes_no(checked == clean && counters.tier_demotions >= 1),
    ]);

    table
}

fn yes_no(ok: bool) -> String {
    if ok { "yes" } else { "NO" }.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_all_stages_are_exact() {
        let table = e16_recovery(&ExperimentConfig::smoke());
        assert_eq!(table.rows().len(), 3);
        for row in table.rows() {
            assert_eq!(row[4], "yes", "stage {:?} must be exact: {:?}", row[0], row);
        }
    }
}
