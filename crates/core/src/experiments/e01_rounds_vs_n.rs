//! E1 — Theorem 1's scaling in `n`.

use fading_analysis::stats;

use super::common::{measure, sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::{theory, Table};
use fading_protocols::ProtocolKind;

/// E1: FKN's rounds-to-resolution versus `n` on uniform fixed-density
/// deployments (where `R` is polynomial in `n`).
///
/// **Claim (Theorem 1):** `O(log n + log R) = O(log n)` here. The table
/// reports the distribution per `n` and fits both the `a·log₂n + b` and
/// `a·log₂²n + b` models; the reproduction succeeds when the linear-in-log
/// model explains the data (high `R²`) and the per-`log n` ratio is flat.
#[must_use]
pub fn e01_rounds_vs_n(cfg: &ExperimentConfig) -> Table {
    let mut table =
        Table::new("E1: FKN rounds vs n (uniform density, SINR) — Theorem 1 scaling in n");
    table.headers([
        "n",
        "log2(n)",
        "success",
        "mean",
        "median",
        "p95",
        "max",
        "mean/log2(n)",
    ]);

    let mut ns = Vec::new();
    let mut means = Vec::new();
    for (block, &n) in cfg.n_sweep().iter().enumerate() {
        let s = measure(
            cfg,
            cfg.seed_block(block as u64),
            move |seed| standard_deployment(n, seed),
            sinr_for,
            |_| ProtocolKind::fkn_default(),
        );
        let log_n = (n as f64).log2();
        table.row([
            n.to_string(),
            fmt_f64(log_n),
            fmt_f64(s.success_rate),
            fmt_f64(s.mean_rounds),
            fmt_f64(s.median_rounds),
            fmt_f64(s.p95_rounds),
            s.max_rounds.to_string(),
            fmt_f64(s.mean_rounds / log_n),
        ]);
        ns.push(n);
        means.push(s.mean_rounds);
    }

    if ns.len() >= 2 {
        let lin = stats::fit_log_n(&ns, &means);
        let quad = stats::fit_log_squared_n(&ns, &means);
        table.note(format!(
            "fit mean ~ a*log2(n)+b: a={} b={} R^2={}",
            fmt_f64(lin.slope),
            fmt_f64(lin.intercept),
            fmt_f64(lin.r_squared)
        ));
        table.note(format!(
            "fit mean ~ a*log2^2(n)+b: a={} b={} R^2={}",
            fmt_f64(quad.slope),
            fmt_f64(quad.intercept),
            fmt_f64(quad.r_squared)
        ));
        let n_max = *ns.last().expect("nonempty");
        table.note(format!(
            "theory overlay c*(log n + log R) at c={}: predicts {} rounds at n={}",
            fmt_f64(lin.slope / 2.0),
            fmt_f64(theory::fkn_rounds(n_max, n_max as f64, lin.slope / 2.0)),
            n_max
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_n_and_fits() {
        let cfg = ExperimentConfig::smoke();
        let t = e01_rounds_vs_n(&cfg);
        assert_eq!(t.num_rows(), cfg.n_sweep().len());
        assert!(t.notes().len() >= 2);
        // All trials must resolve in the smoke regime.
        for row in t.rows() {
            assert_eq!(row[2], "1.00", "success rate row {row:?}");
        }
    }

    #[test]
    fn mean_rounds_grow_sublinearly() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 9;
        cfg.trials = 8;
        let t = e01_rounds_vs_n(&cfg);
        let first: f64 = t.rows()[0][3].parse().unwrap();
        let last: f64 = t.rows().last().unwrap()[3].parse().unwrap();
        // n grew 32x (16 -> 512); O(log n) rounds must grow far less.
        assert!(last < first * 8.0, "first {first} last {last}");
    }
}
