//! E5 — robustness in the broadcast probability `p`.

use super::common::{measure, sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;
use fading_protocols::ProtocolKind;

/// E5: FKN's rounds as a function of its only parameter, the constant
/// broadcast probability `p`, at a fixed `n`.
///
/// **Claim reproduced:** the analysis fixes one particular constant
/// `p = c/(4·c_max)` (Lemma 3), but the theorem holds for any constant.
/// Measured, the curve is gentle across more than an order of magnitude of
/// small `p` (low rates still resolve fast: sparse transmitters are widely
/// decodable, and "exactly one transmitter" rounds arrive quickly) and
/// blows up only as `p → 1`, where mutual interference suppresses all
/// receptions, no one is ever knocked out, and an exactly-one-of-`n` round
/// becomes exponentially unlikely — the regime outside every valid choice
/// of the Lemma 3 constant.
#[must_use]
pub fn e05_probability_sweep(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E5: FKN rounds vs broadcast probability p (n fixed, SINR)");
    table.headers([
        "p",
        "success",
        "mean",
        "median",
        "p95",
        "max",
        "mean tx (energy)",
    ]);

    let n = 1usize << cfg.max_n_pow2.min(9);
    let ps = [
        0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9,
    ];
    for (block, &p) in ps.iter().enumerate() {
        // Past p = 0.5 the round counts explode super-polynomially (the
        // point of the sweep); cap those rows so the harness terminates and
        // let the success column report the collapse.
        let mut local_cfg = *cfg;
        if p > 0.5 {
            local_cfg.max_rounds = local_cfg.max_rounds.min(5_000);
        }
        let s = measure(
            &local_cfg,
            cfg.seed_block(block as u64),
            move |seed| standard_deployment(n, seed),
            sinr_for,
            move |_| ProtocolKind::Fkn { p },
        );
        table.row([
            fmt_f64(p),
            fmt_f64(s.success_rate),
            fmt_f64(s.mean_rounds),
            fmt_f64(s.median_rounds),
            fmt_f64(s.p95_rounds),
            s.max_rounds.to_string(),
            fmt_f64(s.mean_transmissions),
        ]);
    }
    table.note(format!(
        "n = {n} uniform-density nodes; all other parameters default"
    ));
    table.note("energy = total broadcasts summed over nodes and rounds (unit per broadcast)");
    table.note("rows with p > 0.5 are capped at 5000 rounds; sub-1.00 success there is the measured collapse");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_probability_grid() {
        let cfg = ExperimentConfig::smoke();
        let t = e05_probability_sweep(&cfg);
        assert_eq!(t.num_rows(), 12);
    }

    #[test]
    fn large_p_is_catastrophic_small_p_is_fine() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 10;
        let t = e05_probability_sweep(&cfg);
        let mean_at = |row: usize| -> f64 { t.rows()[row][2].parse().unwrap() };
        let success_at = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        // All p <= 0.5 resolve every trial.
        for row in 0..9 {
            assert_eq!(success_at(row), 1.0, "p row {row} failed trials");
        }
        // Past the valid-constant regime the cost explodes: p = 0.6 is much
        // slower than p = 0.25.
        assert!(
            mean_at(9) > 3.0 * mean_at(5),
            "{} vs {}",
            mean_at(9),
            mean_at(5)
        );
    }
}
