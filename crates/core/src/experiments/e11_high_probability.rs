//! E11 — quantifying "with high probability".

use fading_protocols::ProtocolKind;
use fading_sim::{montecarlo, Simulation};

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// E11: the fraction of trials resolving within `C·(log₂ n + log₂ R)`
/// rounds, for several constants `C`, across `n`.
///
/// **Claim reproduced (Theorem 1):** the algorithm succeeds within
/// `O(log n + log R)` rounds *with probability at least `1 − 1/n`*. The
/// table shows a constant `C` (independent of `n`!) past which the success
/// fraction exceeds `1 − 1/n`; the last column reports the smallest
/// per-trial `C` whose quantile at level `1 − 1/n` is achieved.
#[must_use]
pub fn e11_high_probability(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E11: success within C*(log2 n + log2 R) rounds (FKN on SINR)");
    table.headers([
        "n",
        "mean budget unit",
        "C=1",
        "C=2",
        "C=4",
        "C=8",
        "target 1-1/n",
        "C needed",
    ]);

    for (block, &n) in cfg.n_sweep().iter().enumerate() {
        let seed_base = cfg.seed_block(block as u64);
        let results = montecarlo::run_trials(cfg.trials, cfg.threads, seed_base, |seed| {
            let d = standard_deployment(n, seed);
            let ch = sinr_for(&d).build();
            let pk = ProtocolKind::fkn_default();
            let mut sim = Simulation::new(d, ch, seed, |id| pk.build(id));
            sim.run_until_resolved(cfg.max_rounds)
        });
        // Per-trial budget units (deployments are deterministic per seed).
        let units: Vec<f64> = (0..cfg.trials as u64)
            .map(|t| {
                let d = standard_deployment(n, seed_base + t);
                (n as f64).log2() + d.link_ratio().log2()
            })
            .collect();
        let mean_unit = units.iter().sum::<f64>() / units.len() as f64;

        let success_at = |c: f64| -> f64 {
            results
                .iter()
                .zip(&units)
                .filter(|(r, unit)| {
                    r.resolved_at()
                        .is_some_and(|rounds| rounds as f64 <= c * **unit)
                })
                .count() as f64
                / results.len() as f64
        };
        // Per-trial achieved C values; the (1 - 1/n) quantile is "C needed".
        let mut cs: Vec<f64> = results
            .iter()
            .zip(&units)
            .map(|(r, unit)| {
                r.resolved_at()
                    .map_or(f64::INFINITY, |rounds| rounds as f64 / unit)
            })
            .collect();
        cs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN budgets"));
        let target = 1.0 - 1.0 / n as f64;
        let idx = ((cs.len() as f64 * target).ceil() as usize).min(cs.len()) - 1;
        let c_needed = cs[idx];

        table.row([
            n.to_string(),
            fmt_f64(mean_unit),
            fmt_f64(success_at(1.0)),
            fmt_f64(success_at(2.0)),
            fmt_f64(success_at(4.0)),
            fmt_f64(success_at(8.0)),
            fmt_f64(target),
            fmt_f64(c_needed),
        ]);
    }
    table.note(
        "budget unit = log2(n) + log2(R) per trial; C needed = (1-1/n)-quantile of achieved C",
    );
    table.note("Theorem 1 predicts a bounded 'C needed' column as n grows");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_constants_reach_full_success() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 10;
        let t = e11_high_probability(&cfg);
        for row in t.rows() {
            let at8: f64 = row[5].parse().unwrap();
            assert!(at8 >= 0.9, "C=8 success {at8} in {row:?}");
        }
    }

    #[test]
    fn c_needed_stays_bounded() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 15;
        cfg.max_n_pow2 = 9;
        let t = e11_high_probability(&cfg);
        for row in t.rows() {
            let c: f64 = row[7].parse().unwrap();
            assert!(c.is_finite() && c < 20.0, "C needed {c} in {row:?}");
        }
    }
}
