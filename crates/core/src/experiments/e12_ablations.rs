//! E12 — ablations: which ingredients actually matter.

use fading_channel::SinrParams;
use fading_geom::{generators, Deployment};
use fading_protocols::ProtocolKind;

use super::common::{measure, sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::{ChannelKind, Table};

/// E12: ablations of the algorithm, the channel, and the deployment shape.
///
/// **Claims probed:**
///
/// * **Knockout rule.** FKN without deactivation (`fixed-p`) essentially
///   never resolves — the knockout rule, fed by the fading channel's
///   spatial reuse, is the entire mechanism. Conversely, bolting the
///   knockout rule onto Decay makes it FKN-like: the schedule is almost
///   irrelevant.
/// * **Stochastic fading.** FKN on a Rayleigh-fading SINR channel behaves
///   like the deterministic model (the algorithm never looks at the
///   channel), supporting the model-robustness claim.
/// * **Failure injection.** Dropping 30% of decoded messages
///   ([`ChannelKind::LossySinr`]) rescales the knockout rate by a constant
///   and nothing more — receptions carry no payload the algorithm depends
///   on.
/// * **Deployment shape.** Uniform vs clustered barely matters; extreme
///   chains (huge `R`) slow FKN per Theorem 1 while leaving
///   Jurdziński–Stachowiak untouched — the paper's stated trade-off
///   between the two bounds.
#[must_use]
pub fn e12_ablations(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E12: ablations (knockout rule, Rayleigh fading, deployment shape)");
    table.headers([
        "deployment",
        "protocol",
        "channel",
        "success",
        "mean",
        "p95",
    ]);

    let n = 1usize << cfg.max_n_pow2.min(8);
    let chain_n = 24usize;
    let chain_ratio = 2f64.powi(30);

    type DeployFn = Box<dyn Fn(u64) -> Deployment + Sync>;
    let uniform: fn(usize) -> DeployFn = |n| Box::new(move |seed| standard_deployment(n, seed));
    let clustered: DeployFn = Box::new(move |seed| {
        generators::clustered((n / 16).max(2), 16, 0.8, (n as f64).sqrt() * 8.0, seed)
            .expect("valid cluster parameters")
    });
    let chain: DeployFn = Box::new(move |_seed| {
        generators::geometric_line(chain_n, chain_ratio).expect("ratio >= n-1")
    });

    let rayleigh = |d: &Deployment| {
        ChannelKind::RayleighSinr(SinrParams::default_single_hop().with_power_for(d))
    };

    struct Row {
        deployment: &'static str,
        protocol_label: String,
        channel_label: &'static str,
        deploy: DeployFn,
        channel: Box<dyn Fn(&Deployment) -> ChannelKind + Sync>,
        protocol: ProtocolKind,
        max_rounds: Option<u64>,
    }

    let rows: Vec<Row> = vec![
        Row {
            deployment: "uniform",
            protocol_label: "fkn".into(),
            channel_label: "sinr",
            deploy: uniform(n),
            channel: Box::new(sinr_for),
            protocol: ProtocolKind::fkn_default(),
            max_rounds: None,
        },
        Row {
            deployment: "uniform",
            protocol_label: "fixed-p (no knockout)".into(),
            channel_label: "sinr",
            deploy: uniform(n),
            channel: Box::new(sinr_for),
            protocol: ProtocolKind::FixedProbability { p: 0.25 },
            max_rounds: Some(5_000),
        },
        Row {
            deployment: "uniform",
            protocol_label: "decay + knockout".into(),
            channel_label: "sinr",
            deploy: uniform(n),
            channel: Box::new(sinr_for),
            protocol: ProtocolKind::Decay,
            max_rounds: None,
        },
        Row {
            deployment: "uniform",
            protocol_label: "fkn".into(),
            channel_label: "rayleigh",
            deploy: uniform(n),
            channel: Box::new(rayleigh),
            protocol: ProtocolKind::fkn_default(),
            max_rounds: None,
        },
        Row {
            deployment: "uniform",
            protocol_label: "fkn".into(),
            channel_label: "lossy-sinr q=0.3",
            deploy: uniform(n),
            channel: Box::new(|d: &Deployment| ChannelKind::LossySinr {
                params: SinrParams::default_single_hop().with_power_for(d),
                drop_prob: 0.3,
            }),
            protocol: ProtocolKind::fkn_default(),
            max_rounds: None,
        },
        Row {
            deployment: "clustered",
            protocol_label: "fkn".into(),
            channel_label: "sinr",
            deploy: clustered,
            channel: Box::new(sinr_for),
            protocol: ProtocolKind::fkn_default(),
            max_rounds: None,
        },
        Row {
            deployment: "chain R=2^30",
            protocol_label: "fkn".into(),
            channel_label: "sinr",
            deploy: chain,
            channel: Box::new(sinr_for),
            protocol: ProtocolKind::fkn_default(),
            max_rounds: None,
        },
        Row {
            deployment: "chain R=2^30",
            protocol_label: "js15(N=48)".into(),
            channel_label: "sinr",
            deploy: Box::new(move |_seed| {
                generators::geometric_line(chain_n, chain_ratio).expect("ratio >= n-1")
            }),
            channel: Box::new(sinr_for),
            protocol: ProtocolKind::JurdzinskiStachowiak {
                n_bound: 2 * chain_n,
            },
            max_rounds: None,
        },
    ];

    for (block, row) in rows.into_iter().enumerate() {
        let mut local_cfg = *cfg;
        if let Some(mr) = row.max_rounds {
            local_cfg.max_rounds = mr;
        }
        let protocol = row.protocol;
        let s = measure(
            &local_cfg,
            cfg.seed_block(block as u64),
            &row.deploy,
            &row.channel,
            move |_| protocol,
        );
        table.row([
            row.deployment.to_string(),
            row.protocol_label,
            row.channel_label.to_string(),
            fmt_f64(s.success_rate),
            fmt_f64(s.mean_rounds),
            fmt_f64(s.p95_rounds),
        ]);
    }
    table.note(format!(
        "uniform/clustered rows use n = {n}; chains use n = {chain_n} with R = 2^30"
    ));
    table.note("fixed-p row is budget-capped at 5000 rounds (it would not resolve in any budget)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &Table, row: usize, col: usize) -> f64 {
        t.rows()[row][col].parse().unwrap()
    }

    #[test]
    fn knockout_ablation_fails_and_baseline_succeeds() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 4;
        let t = e12_ablations(&cfg);
        assert_eq!(t.num_rows(), 8);
        // fkn on uniform succeeds.
        assert_eq!(cell(&t, 0, 3), 1.0);
        // fixed-p (no knockout) fails.
        assert!(
            cell(&t, 1, 3) < 0.5,
            "no-knockout ablation resolved too often"
        );
    }

    #[test]
    fn rayleigh_behaves_like_deterministic_sinr() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 6;
        let t = e12_ablations(&cfg);
        let det = cell(&t, 0, 4);
        let ray = cell(&t, 3, 4);
        assert_eq!(cell(&t, 3, 3), 1.0, "rayleigh runs failed");
        assert!(
            ray < det * 5.0 + 20.0,
            "rayleigh mean {ray} wildly exceeds deterministic {det}"
        );
    }

    #[test]
    fn js_is_insensitive_to_r_on_chains() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 6;
        let t = e12_ablations(&cfg);
        assert_eq!(cell(&t, 7, 3), 1.0, "js failed on the chain");
    }

    #[test]
    fn lossy_channel_slows_but_never_breaks_fkn() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 6;
        let t = e12_ablations(&cfg);
        // Row 4: fkn on lossy-sinr with q = 0.3.
        assert_eq!(cell(&t, 4, 3), 1.0, "lossy runs failed");
        let clean = cell(&t, 0, 4);
        let lossy = cell(&t, 4, 4);
        assert!(
            lossy < clean * 6.0 + 30.0,
            "lossy mean {lossy} not a constant factor of clean {clean}"
        );
    }
}
