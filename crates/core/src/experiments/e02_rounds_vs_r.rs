//! E2 — Theorem 1's dependence on `R`.

use fading_analysis::stats;
use fading_geom::generators;

use super::common::{measure, sinr_for, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;
use fading_protocols::ProtocolKind;

/// E2: FKN's rounds versus the link ratio `R` at fixed (small) `n`, on
/// geometric-chain deployments where `log R ≫ log n`.
///
/// **Claim probed (Theorem 1):** the upper bound is `O(log n + log R)`, and
/// the paper notes its algorithm "slows as R increases". The table reports
/// the measured dependence and the bound ratio.
///
/// **Reproduction finding:** the measured dependence on `log R` is *weak* —
/// a small positive slope, far below the `log R` term of the bound, and the
/// measured rounds sit at a small fraction of `log n + log R` throughout.
/// Chains (each link class ≈ one node) do not activate the worst case the
/// analysis guards against: classes are knocked out concurrently, not in
/// smallest-to-largest order, so the `log R` term is conservative here.
/// This is consistent with the theorem (an upper bound), with footnote 3's
/// sharper `O(log n + l)` form (`l` = occupied classes), and with the
/// paper's only matching lower bound being `Ω(log n)`.
#[must_use]
pub fn e02_rounds_vs_r(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E2: FKN rounds vs R (geometric chain, n fixed, SINR) — Theorem 1 dependence on R",
    );
    table.headers([
        "n",
        "R",
        "log2(R)",
        "success",
        "mean",
        "p95",
        "mean/(log2 n + log2 R)",
    ]);

    let n = 24;
    let max_pow = cfg.max_n_pow2 + 6; // push R well past n
    let r_pows: Vec<u32> = (5..=max_pow).step_by(3).collect();
    let mut log_rs = Vec::new();
    let mut means = Vec::new();
    for (block, &pow) in r_pows.iter().enumerate() {
        let ratio = (1u64 << pow) as f64;
        // The chain is deterministic; only the protocol seed varies.
        let s = measure(
            cfg,
            cfg.seed_block(block as u64),
            move |_seed| generators::geometric_line(n, ratio).expect("ratio >= n-1"),
            sinr_for,
            |_| ProtocolKind::fkn_default(),
        );
        let log_r = ratio.log2();
        let log_n = (n as f64).log2();
        table.row([
            n.to_string(),
            format!("2^{pow}"),
            fmt_f64(log_r),
            fmt_f64(s.success_rate),
            fmt_f64(s.mean_rounds),
            fmt_f64(s.p95_rounds),
            fmt_f64(s.mean_rounds / (log_n + log_r)),
        ]);
        log_rs.push(log_r);
        means.push(s.mean_rounds);
    }

    if log_rs.len() >= 2 {
        let fit = stats::linear_fit(&log_rs, &means);
        table.note(format!(
            "fit mean ~ a*log2(R)+b: a={} b={} R^2={}",
            fmt_f64(fit.slope),
            fmt_f64(fit.intercept),
            fmt_f64(fit.r_squared)
        ));
    }
    table.note(format!(
        "chain deployments with n={n} nodes; R controlled by geometric gap growth"
    ));
    table.note("finding: measured slope in log2(R) is far below 1 — the bound's log R term is conservative on chains");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_r_sweep_and_fit_is_reported() {
        let cfg = ExperimentConfig::smoke();
        let t = e02_rounds_vs_r(&cfg);
        assert!(t.num_rows() >= 2);
        assert!(t.notes().iter().any(|n| n.contains("fit")));
    }

    #[test]
    fn rounds_stay_far_below_the_bound() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 10;
        let t = e02_rounds_vs_r(&cfg);
        for row in t.rows() {
            let success: f64 = row[3].parse().unwrap();
            assert_eq!(success, 1.0, "row {row:?}");
            // mean / (log2 n + log2 R) must be modest: the upper bound holds
            // with a small constant on chains.
            let ratio: f64 = row[6].parse().unwrap();
            assert!(ratio < 3.0, "bound ratio {ratio} in {row:?}");
        }
    }
}
