//! E9 — §3.3: executions obey the class-bound schedule.

use fading_analysis::{ClassBoundSchedule, LinkClasses, ScheduleParams};
use fading_protocols::ProtocolKind;
use fading_sim::telemetry::jsonl::{self, TrialBlock};
use fading_sim::telemetry::replay_active_sets;
use fading_sim::{EngineCounters, MemorySink, Simulation, TelemetryDetail};

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// E9: does a real FKN execution's link-class size trajectory respect the
/// §3.3 class-bound vectors `q_0, q_1, …`?
///
/// **Claim reproduced (Lemma 10 / Theorem 1):** every execution advances
/// through the bound sequence — each event `r(t)` ("sizes permanently below
/// `q_t`") occurs, monotonically — and the completion round `r(T)` is
/// within a constant factor of the horizon `T = Θ(log n + log R)`
/// (Claim 8), because each step needs only `O(1)` rounds (segments).
///
/// The active-set trajectory is reconstructed from telemetry: the run
/// records id-detail [`RoundEvent`](fading_sim::RoundEvent)s into a
/// [`MemorySink`] and [`replay_active_sets`] rebuilds the per-round active
/// sets, replacing the old lock-step observer loop.
#[must_use]
pub fn e09_schedule_adherence(cfg: &ExperimentConfig) -> Table {
    e09_schedule_adherence_with(cfg, None)
}

/// [`e09_schedule_adherence`] with an optional telemetry export directory:
/// when set, every resolved trial's event stream is appended to
/// `<dir>/e9.jsonl` as seed-tagged [`TrialBlock`]s, and each such trial's
/// engine-decision counters ([`EngineCounters`]) go to
/// `<dir>/e9.engine_counters.jsonl`, one line per trial in trial order.
#[must_use]
pub fn e09_schedule_adherence_with(cfg: &ExperimentConfig, telemetry_dir: Option<&str>) -> Table {
    let mut table = Table::new("E9: class-bound schedule adherence (FKN on SINR)");
    table.headers([
        "n",
        "horizon T",
        "coverage",
        "monotone",
        "mean r(T)",
        "mean resolved",
        "rounds/step",
    ]);

    let mut blocks: Vec<TrialBlock> = Vec::new();
    let mut counters: Vec<EngineCounters> = Vec::new();
    let trials = cfg.trials.clamp(2, 20);
    for (block, &n) in cfg.n_sweep().iter().enumerate() {
        let mut coverages = Vec::new();
        let mut completions = Vec::new();
        let mut resolved_rounds = Vec::new();
        let mut horizon = 0u64;
        let mut all_monotone = true;
        for trial in 0..trials as u64 {
            let seed = cfg.seed_block(block as u64) + trial;
            let d = standard_deployment(n, seed);
            let unit = d.min_link();
            let channel = sinr_for(&d).build();
            let pk = ProtocolKind::fkn_default();
            let mut sim = Simulation::new(d.clone(), channel, seed, |id| pk.build(id));
            sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::ids())));

            let initial = sim.active_ids();
            let result = sim.run_until_resolved(cfg.max_rounds);
            let Some(resolved) = result.resolved_at() else {
                continue;
            };
            let events = MemorySink::recover(sim.take_telemetry_sink().expect("sink attached"))
                .expect("MemorySink recovers as itself")
                .into_events();
            let mut series: Vec<Vec<usize>> = replay_active_sets(&initial, &events)
                .iter()
                .map(|active| LinkClasses::partition(d.points(), active, unit).sizes())
                .collect();
            // Budget parity with the observer formulation: at most one
            // snapshot per budgeted round.
            series.truncate(cfg.max_rounds as usize);
            if telemetry_dir.is_some() {
                blocks.push(TrialBlock {
                    trial: blocks.len() as u64,
                    seed,
                    events,
                });
                counters.push(sim.engine_counters());
            }
            let sched = ClassBoundSchedule::new(n, d.num_link_classes(), ScheduleParams::default());
            horizon = sched.horizon();
            let adherence = sched.adherence(&series);
            all_monotone &= adherence.is_monotone();
            coverages.push(adherence.coverage());
            if let Some(c) = adherence.completion_round() {
                completions.push(c as f64);
            }
            resolved_rounds.push(resolved as f64);
        }
        if coverages.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mean_completion = if completions.is_empty() {
            f64::NAN
        } else {
            mean(&completions)
        };
        table.row([
            n.to_string(),
            horizon.to_string(),
            fmt_f64(mean(&coverages)),
            if all_monotone { "yes" } else { "NO" }.to_string(),
            fmt_f64(mean_completion),
            fmt_f64(mean(&resolved_rounds)),
            fmt_f64(mean_completion / horizon as f64),
        ]);
    }
    if let Some(dir) = telemetry_dir {
        let path = format!("{dir}/e9.jsonl");
        jsonl::write_trial_blocks_to_path(&path, &blocks)
            .unwrap_or_else(|e| panic!("write telemetry to {path}: {e}"));
        let path = format!("{dir}/e9.engine_counters.jsonl");
        jsonl::write_counters_to_path(&path, &counters)
            .unwrap_or_else(|e| panic!("write engine counters to {path}: {e}"));
    }
    table.note("schedule params: gamma = 1/2, rho = 1/4 (gamma_slow = 5/6, stagger l = 8)");
    table.note("coverage = fraction of steps t whose event r(t) occurred; rounds/step = r(T)/T");
    table.note("active-set series replayed from telemetry round events (id detail)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adherence_is_complete_and_monotone() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 3;
        cfg.max_n_pow2 = 8;
        let t = e09_schedule_adherence(&cfg);
        assert!(t.num_rows() >= 3);
        for row in t.rows() {
            let coverage: f64 = row[2].parse().unwrap();
            assert!(coverage > 0.99, "coverage {coverage} in row {row:?}");
            assert_eq!(row[3], "yes");
        }
    }

    #[test]
    fn completion_is_constant_factor_of_horizon() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 3;
        cfg.max_n_pow2 = 8;
        let t = e09_schedule_adherence(&cfg);
        for row in t.rows() {
            let ratio: f64 = row[6].parse().unwrap();
            assert!(
                ratio < 10.0,
                "rounds/step ratio {ratio} too large ({row:?})"
            );
        }
    }

    #[test]
    fn telemetry_export_matches_plain_run() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 2;
        cfg.max_n_pow2 = 5;
        let dir = std::env::temp_dir().join(format!("e9-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_str().unwrap().to_string();
        let with = e09_schedule_adherence_with(&cfg, Some(&dir_str));
        let without = e09_schedule_adherence(&cfg);
        assert_eq!(with, without, "export must not change the table");
        let blocks = jsonl::read_trial_blocks_from_path(dir.join("e9.jsonl")).unwrap();
        assert!(!blocks.is_empty());
        for b in &blocks {
            assert!(!b.events.is_empty());
        }
        let counters = jsonl::read_counters_from_path(dir.join("e9.engine_counters.jsonl")).unwrap();
        assert_eq!(counters.len(), blocks.len(), "one counter line per trial");
        for (c, b) in counters.iter().zip(&blocks) {
            assert_eq!(c.rounds, b.events.len() as u64, "counters cover every round");
            assert_eq!(c.routed_rounds(), c.rounds);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
