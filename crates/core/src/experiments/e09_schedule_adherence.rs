//! E9 — §3.3: executions obey the class-bound schedule.

use fading_analysis::{ClassBoundSchedule, LinkClasses, ScheduleParams};
use fading_protocols::ProtocolKind;
use fading_sim::Simulation;

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// E9: does a real FKN execution's link-class size trajectory respect the
/// §3.3 class-bound vectors `q_0, q_1, …`?
///
/// **Claim reproduced (Lemma 10 / Theorem 1):** every execution advances
/// through the bound sequence — each event `r(t)` ("sizes permanently below
/// `q_t`") occurs, monotonically — and the completion round `r(T)` is
/// within a constant factor of the horizon `T = Θ(log n + log R)`
/// (Claim 8), because each step needs only `O(1)` rounds (segments).
#[must_use]
pub fn e09_schedule_adherence(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E9: class-bound schedule adherence (FKN on SINR)");
    table.headers([
        "n",
        "horizon T",
        "coverage",
        "monotone",
        "mean r(T)",
        "mean resolved",
        "rounds/step",
    ]);

    let trials = cfg.trials.clamp(2, 20);
    for (block, &n) in cfg.n_sweep().iter().enumerate() {
        let mut coverages = Vec::new();
        let mut completions = Vec::new();
        let mut resolved_rounds = Vec::new();
        let mut horizon = 0u64;
        let mut all_monotone = true;
        for trial in 0..trials as u64 {
            let seed = cfg.seed_block(block as u64) + trial;
            let d = standard_deployment(n, seed);
            let unit = d.min_link();
            let channel = sinr_for(&d).build();
            let pk = ProtocolKind::fkn_default();
            let mut sim = Simulation::new(d.clone(), channel, seed, |id| pk.build(id));

            let mut series: Vec<Vec<usize>> = Vec::new();
            for _ in 0..cfg.max_rounds {
                let active = sim.active_ids();
                let classes = LinkClasses::partition(d.points(), &active, unit);
                series.push(classes.sizes());
                if sim.resolved_at().is_some() {
                    break;
                }
                sim.step();
            }
            let Some(resolved) = sim.resolved_at() else {
                continue;
            };
            let sched = ClassBoundSchedule::new(n, d.num_link_classes(), ScheduleParams::default());
            horizon = sched.horizon();
            let adherence = sched.adherence(&series);
            all_monotone &= adherence.is_monotone();
            coverages.push(adherence.coverage());
            if let Some(c) = adherence.completion_round() {
                completions.push(c as f64);
            }
            resolved_rounds.push(resolved as f64);
        }
        if coverages.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mean_completion = if completions.is_empty() {
            f64::NAN
        } else {
            mean(&completions)
        };
        table.row([
            n.to_string(),
            horizon.to_string(),
            fmt_f64(mean(&coverages)),
            if all_monotone { "yes" } else { "NO" }.to_string(),
            fmt_f64(mean_completion),
            fmt_f64(mean(&resolved_rounds)),
            fmt_f64(mean_completion / horizon as f64),
        ]);
    }
    table.note("schedule params: gamma = 1/2, rho = 1/4 (gamma_slow = 5/6, stagger l = 8)");
    table.note("coverage = fraction of steps t whose event r(t) occurred; rounds/step = r(T)/T");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adherence_is_complete_and_monotone() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 3;
        cfg.max_n_pow2 = 8;
        let t = e09_schedule_adherence(&cfg);
        assert!(t.num_rows() >= 3);
        for row in t.rows() {
            let coverage: f64 = row[2].parse().unwrap();
            assert!(coverage > 0.99, "coverage {coverage} in row {row:?}");
            assert_eq!(row[3], "yes");
        }
    }

    #[test]
    fn completion_is_constant_factor_of_horizon() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 3;
        cfg.max_n_pow2 = 8;
        let t = e09_schedule_adherence(&cfg);
        for row in t.rows() {
            let ratio: f64 = row[6].parse().unwrap();
            assert!(
                ratio < 10.0,
                "rounds/step ratio {ratio} too large ({row:?})"
            );
        }
    }
}
