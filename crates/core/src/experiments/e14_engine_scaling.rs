//! E14 — engine-tier scaling: the far-field tier versus the n² wall.

use std::time::Instant;

use fading_protocols::ProtocolKind;
use fading_sim::Simulation;

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// Which resolve tier a run is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// No acceleration: the O(listeners × transmitters) exact scan.
    Exact,
    /// Gain-cache engine (precomputed pairwise gains, incremental totals).
    GainCache,
    /// Far-field engine (tile-aggregated interference bounds).
    FarField,
}

impl Tier {
    fn label(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::GainCache => "gain-cache",
            Tier::FarField => "farfield",
        }
    }

    fn pin(self, sim: &mut Simulation) {
        match self {
            Tier::Exact => {
                sim.set_gain_cache_enabled(false);
                sim.set_farfield_enabled(false);
            }
            Tier::GainCache => {
                sim.set_gain_cache_enabled(true);
                sim.set_farfield_enabled(false);
            }
            Tier::FarField => {
                sim.set_gain_cache_enabled(false);
                sim.set_farfield_enabled(true);
            }
        }
    }
}

/// Largest `n` at which the quadratic tiers (exact scan, gain cache) are
/// still run: the gain cache refuses to build above this size, and the
/// exact scan's full-protocol runs stop being affordable.
const QUADRATIC_TIER_CEILING: usize = 4096;

fn tiers_for(n: usize) -> Vec<Tier> {
    if n <= QUADRATIC_TIER_CEILING {
        vec![Tier::Exact, Tier::GainCache, Tier::FarField]
    } else {
        vec![Tier::FarField]
    }
}

/// One timed batch: `trials` sequential FKN runs on fresh deployments,
/// pinned to `tier`. Returns `(resolved, total_rounds, wall_millis)`.
/// Trials run sequentially (no thread pool) so the per-round wall clock is
/// an honest single-core figure.
fn run_tier(
    cfg: &ExperimentConfig,
    seed_base: u64,
    n: usize,
    tier: Tier,
    trials: usize,
) -> (usize, u64, f64) {
    let mut resolved = 0usize;
    let mut total_rounds = 0u64;
    let mut wall = 0.0f64;
    for t in 0..trials {
        let seed = seed_base + t as u64;
        let deployment = standard_deployment(n, seed);
        let channel = sinr_for(&deployment).build();
        let pk = ProtocolKind::fkn_default();
        let mut sim = Simulation::new(deployment, channel, seed, |id| pk.build(id));
        tier.pin(&mut sim);
        let start = Instant::now();
        let result = sim.run_until_resolved(cfg.max_rounds);
        wall += start.elapsed().as_secs_f64() * 1e3;
        total_rounds += result.rounds_executed();
        resolved += usize::from(result.resolved());
    }
    (resolved, total_rounds, wall)
}

/// E14: wall-clock cost per round of the three resolve tiers as `n` grows.
///
/// **Claim:** the far-field tier breaks the quadratic per-round wall — its
/// per-round cost grows sub-quadratically, letting full FKN runs complete
/// at `n = 65536` where neither the exact scan nor the gain cache (which
/// refuses to build above `n = 4096`) is usable. Exactness is not traded
/// away: the table re-verifies, at the largest quadratic-tier size, that a
/// far-field run is byte-identical to an exact run.
///
/// The sweep is `n ∈ {2¹⁰, 2¹², 2¹⁴, 2¹⁶}` clipped to `max_n_pow2 + 4`:
/// this experiment exists to measure *past* the standard experiment sizes
/// (the far-field tier's whole point), so its ceiling sits four powers of
/// two above the config's — `2¹⁶` under the full preset, `2¹⁰` under
/// smoke. When even that admits no sweep point, it falls back to the
/// single size `2^max_n_pow2` so every tier still runs.
#[must_use]
pub fn e14_engine_scaling(cfg: &ExperimentConfig) -> Table {
    let mut table =
        Table::new("E14: resolve-tier scaling (FKN, uniform density, SINR) — per-round cost vs n");
    table.headers(["n", "tier", "trials", "resolved", "mean rounds", "ms/round"]);

    let mut sweep: Vec<usize> = [10u32, 12, 14, 16]
        .iter()
        .filter(|&&p| p <= cfg.max_n_pow2 + 4)
        .map(|&p| 1usize << p)
        .collect();
    if sweep.is_empty() {
        sweep.push(1usize << cfg.max_n_pow2);
    }

    let mut exact_ms_per_round = None;
    let mut farfield_ms_per_round = None;
    for (block, &n) in sweep.iter().enumerate() {
        // Large deployments get fewer (but never zero) trials: the tail
        // sizes exist to demonstrate feasibility and per-round cost, not
        // to tighten distributional estimates.
        let trials = if n <= QUADRATIC_TIER_CEILING {
            cfg.trials.clamp(1, 5)
        } else {
            cfg.trials.clamp(1, 3)
        };
        for tier in tiers_for(n) {
            let (resolved, rounds, wall) =
                run_tier(cfg, cfg.seed_block(block as u64), n, tier, trials);
            let ms_per_round = if rounds > 0 {
                wall / rounds as f64
            } else {
                0.0
            };
            if n == *sweep.last().expect("nonempty sweep") {
                match tier {
                    Tier::Exact => exact_ms_per_round = Some(ms_per_round),
                    Tier::FarField => farfield_ms_per_round = Some(ms_per_round),
                    Tier::GainCache => {}
                }
            }
            table.row([
                n.to_string(),
                tier.label().to_string(),
                trials.to_string(),
                format!("{resolved}/{trials}"),
                fmt_f64(rounds as f64 / trials as f64),
                fmt_f64(ms_per_round),
            ]);
        }
    }

    if let (Some(exact), Some(far)) = (exact_ms_per_round, farfield_ms_per_round) {
        if far > 0.0 {
            table.note(format!(
                "farfield vs exact at n={}: {}x faster per round",
                sweep.last().expect("nonempty sweep"),
                fmt_f64(exact / far)
            ));
        }
    }

    // Decision-exactness cross-check at the largest quadratic-tier size in
    // the sweep: a far-field run must be byte-identical to an exact run.
    if let Some(&n) = sweep.iter().filter(|&&n| n <= QUADRATIC_TIER_CEILING).max() {
        let seed = cfg.seed_block(99);
        let run = |tier: Tier| {
            let deployment = standard_deployment(n, seed);
            let channel = sinr_for(&deployment).build();
            let pk = ProtocolKind::fkn_default();
            let mut sim = Simulation::new(deployment, channel, seed, |id| pk.build(id));
            tier.pin(&mut sim);
            sim.run_until_resolved(cfg.max_rounds)
        };
        let exact = run(Tier::Exact);
        let farfield = run(Tier::FarField);
        assert_eq!(
            exact, farfield,
            "decision-exactness violated at n={n}: farfield RunResult diverged"
        );
        table.note(format!(
            "cross-check at n={n}: farfield and exact runs byte-identical (seed {seed})"
        ));
    }
    table.note(format!(
        "exact and gain-cache tiers run only for n <= {QUADRATIC_TIER_CEILING} \
         (the cache refuses larger deployments; the exact scan is quadratic)"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_runs_every_tier() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 2;
        let t = e14_engine_scaling(&cfg);
        // Smoke ceiling is 2^(7+4): the single sweep size 1024, three tiers.
        assert_eq!(t.num_rows(), 3);
        for row in t.rows() {
            assert_eq!(row[0], "1024");
            assert_eq!(
                row[3],
                format!("{}/{}", row[2], row[2]),
                "all trials resolve"
            );
        }
        let tiers: Vec<&str> = t.rows().iter().map(|r| r[1].as_str()).collect();
        assert_eq!(tiers, ["exact", "gain-cache", "farfield"]);
        assert!(
            t.notes().iter().any(|n| n.contains("byte-identical")),
            "cross-check note missing: {:?}",
            t.notes()
        );
    }

    #[test]
    fn tiny_config_falls_back_to_its_own_ceiling() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 5;
        cfg.trials = 2;
        let t = e14_engine_scaling(&cfg);
        // Ceiling 2^9 admits no sweep point: fall back to n = 32.
        assert_eq!(t.num_rows(), 3);
        for row in t.rows() {
            assert_eq!(row[0], "32");
        }
    }
}
