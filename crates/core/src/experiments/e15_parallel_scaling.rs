//! E15 — hierarchical tier + parallel resolve: past the far-field ceiling.

use std::time::Instant;

use fading_protocols::ProtocolKind;
use fading_sim::Simulation;

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// Which resolve tier a run is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// The O(n²)-per-round exact scan — the ground-truth reference.
    Exact,
    /// Flat far-field engine (single-level tile aggregation).
    FarField,
    /// Hierarchical (tile-tree) engine, resolved on `threads` workers of
    /// the work-stealing pool.
    Hier { threads: usize },
}

impl Tier {
    fn label(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::FarField => "farfield",
            Tier::Hier { threads: 1 } => "hier-1t",
            Tier::Hier { .. } => "hier-8t",
        }
    }

    fn pin(self, sim: &mut Simulation) {
        sim.set_gain_cache_enabled(false);
        match self {
            Tier::Exact => {
                sim.set_farfield_enabled(false);
                sim.set_hierarchical_enabled(false);
            }
            Tier::FarField => {
                sim.set_farfield_enabled(true);
                sim.set_hierarchical_enabled(false);
            }
            Tier::Hier { threads } => {
                sim.set_farfield_enabled(false);
                sim.set_hierarchical_enabled(true);
                sim.set_resolve_threads(threads);
            }
        }
    }
}

/// Largest `n` at which the *flat* far-field tier is still probed: its
/// tile grid is capped at 512×512, so past this size the near scan
/// degrades toward linear-per-listener and the tier stops being the
/// interesting comparison (the hierarchical tier exists precisely to
/// take over here).
const FLAT_TIER_CEILING: usize = 1 << 18;

/// Largest `n` at which the exact cross-check runs (quadratic cost).
const CROSS_CHECK_CEILING: usize = 1 << 12;

fn tiers_for(n: usize) -> Vec<Tier> {
    let mut tiers = Vec::new();
    if n <= FLAT_TIER_CEILING {
        tiers.push(Tier::FarField);
    }
    tiers.push(Tier::Hier { threads: 1 });
    tiers.push(Tier::Hier { threads: 8 });
    tiers
}

/// One timed batch: `trials` sequential FKN runs on fresh deployments,
/// pinned to `tier`. Returns `(resolved, total_rounds, wall_millis)`.
/// Trials run sequentially; only the in-round resolve parallelizes (for
/// the `hier-8t` tier), so ms/round is an honest per-round wall figure.
fn run_tier(
    cfg: &ExperimentConfig,
    seed_base: u64,
    n: usize,
    tier: Tier,
    trials: usize,
) -> (usize, u64, f64) {
    let mut resolved = 0usize;
    let mut total_rounds = 0u64;
    let mut wall = 0.0f64;
    for t in 0..trials {
        let seed = seed_base + t as u64;
        let deployment = standard_deployment(n, seed);
        let channel = sinr_for(&deployment).build();
        let pk = ProtocolKind::fkn_default();
        let mut sim = Simulation::new(deployment, channel, seed, |id| pk.build(id));
        tier.pin(&mut sim);
        let start = Instant::now();
        let result = sim.run_until_resolved(cfg.max_rounds);
        wall += start.elapsed().as_secs_f64() * 1e3;
        total_rounds += result.rounds_executed();
        resolved += usize::from(result.resolved());
    }
    (resolved, total_rounds, wall)
}

/// E15: wall-clock cost per round of the hierarchical tier (serial and on
/// the 8-worker stealing pool) against the flat far-field tier, up to
/// `n = 2²⁰`.
///
/// **Claim:** the hierarchical engine extends the fast-tier range past
/// the flat engine's 512×512 tile-grid ceiling — full FKN runs complete
/// at `n = 1,048,576` — and neither the tree traversal nor the
/// work-stealing pool trades exactness away: at the cross-check size a
/// `hier-8t` run is byte-identical to an exact run.
///
/// The sweep is `n ∈ {2¹², 2¹⁶, 2²⁰}` clipped to `max_n_pow2 + 8`: like
/// E14 this experiment exists to measure *past* the standard sizes, and
/// its headline point sits eight powers of two above the full preset's
/// ceiling. When the clip admits no sweep point it falls back to
/// `2^max_n_pow2` so every tier still runs.
#[must_use]
pub fn e15_parallel_scaling(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E15: hierarchical tier + parallel resolve (FKN, uniform density, SINR) — per-round cost vs n",
    );
    table.headers(["n", "tier", "trials", "resolved", "mean rounds", "ms/round"]);

    let mut sweep: Vec<usize> = [12u32, 16, 20]
        .iter()
        .filter(|&&p| p <= cfg.max_n_pow2 + 8)
        .map(|&p| 1usize << p)
        .collect();
    if sweep.is_empty() {
        sweep.push(1usize << cfg.max_n_pow2);
    }
    let top = *sweep.last().expect("nonempty sweep");

    let mut flat_ms = None;
    let mut hier1_ms = None;
    let mut hier8_ms = None;
    for (block, &n) in sweep.iter().enumerate() {
        // The tail sizes exist to demonstrate feasibility and per-round
        // cost, not to tighten distributional estimates: one trial each.
        let trials = if n >= 1 << 16 {
            1
        } else {
            cfg.trials.clamp(1, 2)
        };
        for tier in tiers_for(n) {
            let (resolved, rounds, wall) =
                run_tier(cfg, cfg.seed_block(block as u64), n, tier, trials);
            let ms_per_round = if rounds > 0 {
                wall / rounds as f64
            } else {
                0.0
            };
            if n == top {
                match tier {
                    Tier::FarField => flat_ms = Some(ms_per_round),
                    Tier::Hier { threads: 1 } => hier1_ms = Some(ms_per_round),
                    Tier::Hier { .. } => hier8_ms = Some(ms_per_round),
                    Tier::Exact => {}
                }
            }
            table.row([
                n.to_string(),
                tier.label().to_string(),
                trials.to_string(),
                format!("{resolved}/{trials}"),
                fmt_f64(rounds as f64 / trials as f64),
                fmt_f64(ms_per_round),
            ]);
        }
    }

    if let (Some(flat), Some(hier)) = (flat_ms, hier8_ms) {
        if hier > 0.0 {
            table.note(format!(
                "hier-8t vs flat farfield at n={top}: {}x per round",
                fmt_f64(flat / hier)
            ));
        }
    }
    if let (Some(h1), Some(h8)) = (hier1_ms, hier8_ms) {
        if h8 > 0.0 {
            table.note(format!(
                "pool scaling at n={top}: hier-1t/hier-8t = {}x \
                 (bounded by the host's physical cores)",
                fmt_f64(h1 / h8)
            ));
        }
    }

    // Decision-exactness cross-check at the largest affordable size in
    // the sweep: a parallel hierarchical run must be byte-identical to an
    // exact serial run — the tree and the pool are both invisible.
    if let Some(&n) = sweep.iter().filter(|&&n| n <= CROSS_CHECK_CEILING).max() {
        let seed = cfg.seed_block(99);
        let run = |tier: Tier| {
            let deployment = standard_deployment(n, seed);
            let channel = sinr_for(&deployment).build();
            let pk = ProtocolKind::fkn_default();
            let mut sim = Simulation::new(deployment, channel, seed, |id| pk.build(id));
            tier.pin(&mut sim);
            sim.run_until_resolved(cfg.max_rounds)
        };
        let exact = run(Tier::Exact);
        let hier = run(Tier::Hier { threads: 8 });
        assert_eq!(
            exact, hier,
            "decision-exactness violated at n={n}: parallel hierarchical RunResult diverged"
        );
        table.note(format!(
            "cross-check at n={n}: hier-8t and exact runs byte-identical (seed {seed})"
        ));
    }
    table.note(format!(
        "flat farfield runs only for n <= {FLAT_TIER_CEILING} (512x512 tile-grid ceiling); \
         hierarchical trials run sequentially — only the in-round resolve parallelizes"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_runs_every_tier_and_cross_checks() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 1;
        cfg.max_n_pow2 = 3;
        // Even the smallest sweep point (2^12 = 4096) is too slow for a
        // unit test; with max_n_pow2 = 3 the clip (p <= 11) empties the
        // sweep and the fallback single size 8 runs all three tiers.
        let t = e15_parallel_scaling(&cfg);
        assert_eq!(t.num_rows(), 3);
        for row in t.rows() {
            assert_eq!(row[0], "8");
            assert_eq!(row[3], format!("{}/{}", row[2], row[2]), "all trials resolve");
        }
        let tiers: Vec<&str> = t.rows().iter().map(|r| r[1].as_str()).collect();
        assert_eq!(tiers, ["farfield", "hier-1t", "hier-8t"]);
        assert!(
            t.notes().iter().any(|n| n.contains("byte-identical")),
            "cross-check note missing: {:?}",
            t.notes()
        );
    }
}
