//! E10 — §4: the restricted k-hitting game needs `Θ(log k)`.

use fading_hitting::{
    HalvingPlayer, HittingPlayer, ProtocolPlayer, RestrictedHitting, SingletonPlayer,
    UniformRandomPlayer,
};
use fading_protocols::Fkn;

use super::common::ExperimentConfig;
use crate::table::fmt_f64;
use crate::Table;

/// Mean winning round of `make_player` over seeded referees, plus the
/// estimated rounds needed for success probability `1 − 1/k` (from the
/// geometric tail implied by the per-round win rate).
fn measure_player<F>(
    k: usize,
    trials: usize,
    seed_base: u64,
    max_rounds: u64,
    mut make_player: F,
) -> (f64, f64, f64)
where
    F: FnMut(u64) -> Box<dyn HittingPlayer>,
{
    let mut rounds = Vec::new();
    let mut worst: u64 = 0;
    for t in 0..trials as u64 {
        let seed = seed_base + t;
        let mut game = RestrictedHitting::new(k, seed).expect("k >= 2");
        let mut player = make_player(seed);
        if let Some(r) = game.play(player.as_mut(), max_rounds, seed) {
            worst = worst.max(r);
            rounds.push(r as f64);
        }
    }
    if rounds.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN);
    }
    let mean = rounds.iter().sum::<f64>() / rounds.len() as f64;
    // Geometric model: per-round win probability p̂ = 1/mean; rounds for
    // failure probability 1/k: ln(1/k)/ln(1−p̂).
    let p_hat = (1.0 / mean).min(0.999_999);
    let whp = (1.0 / k as f64).ln() / (1.0 - p_hat).ln();
    (mean, whp, worst as f64)
}

/// E10: winning-round statistics for four hitting-game strategies across
/// `k`.
///
/// **Claims reproduced:**
///
/// * Lemma 13's `Ω(log k)`: even the random-half player, which wins in 2
///   expected rounds, needs `≈ log₂ k` rounds for success probability
///   `1 − 1/k` — the high-probability regime is where the bound bites.
/// * The halving player's worst case tracks `⌈log₂ k⌉` exactly (the
///   matching upper bound).
/// * Lemma 14's reduction: the FKN protocol, wrapped as a player, wins
///   with `Θ(log k)`-shaped w.h.p. rounds — consistent with (and
///   lower-bounded by) the game's difficulty.
/// * The naive singleton player pays `Θ(k)`: structure matters.
#[must_use]
pub fn e10_hitting_game(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E10: restricted k-hitting game (Lemmas 13-14)");
    table.headers([
        "k",
        "log2(k)",
        "halving worst",
        "random mean",
        "random whp",
        "fkn mean",
        "fkn whp",
        "singleton mean",
    ]);

    let k_pows: Vec<u32> = (2..=cfg.max_n_pow2 + 2).step_by(2).collect();
    for (block, &pow) in k_pows.iter().enumerate() {
        let k = 1usize << pow;
        let seed_base = cfg.seed_block(block as u64);
        let trials = cfg.trials.max(20);
        let (_, _, halving_worst) = measure_player(k, trials, seed_base, 10_000, |_| {
            Box::new(HalvingPlayer::new(k))
        });
        let (rand_mean, rand_whp, _) = measure_player(k, trials, seed_base, 10_000, |_| {
            Box::new(UniformRandomPlayer::new(k))
        });
        let (fkn_mean, fkn_whp, _) = measure_player(k, trials, seed_base, 100_000, |seed| {
            Box::new(ProtocolPlayer::new(k, seed, |_| Box::new(Fkn::new())))
        });
        let (single_mean, _, _) = measure_player(k, trials, seed_base, 10 * k as u64, |_| {
            Box::new(SingletonPlayer::new(k))
        });
        table.row([
            k.to_string(),
            pow.to_string(),
            fmt_f64(halving_worst),
            fmt_f64(rand_mean),
            fmt_f64(rand_whp),
            fmt_f64(fkn_mean),
            fmt_f64(fkn_whp),
            fmt_f64(single_mean),
        ]);
    }
    table.note("whp = estimated rounds for success probability 1 - 1/k (geometric-tail model)");
    table.note(
        "Lemma 13: every whp column must grow at least like log2(k); halving matches it exactly",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whp_columns_grow_with_k() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 30;
        let t = e10_hitting_game(&cfg);
        assert!(t.num_rows() >= 3);
        let first_whp: f64 = t.rows()[0][4].parse().unwrap();
        let last_whp: f64 = t.rows().last().unwrap()[4].parse().unwrap();
        assert!(last_whp > first_whp, "{first_whp} -> {last_whp}");
    }

    #[test]
    fn halving_worst_is_at_most_log_k() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 30;
        let t = e10_hitting_game(&cfg);
        for row in t.rows() {
            let log_k: f64 = row[1].parse().unwrap();
            let worst: f64 = row[2].parse().unwrap();
            assert!(
                worst <= log_k + 1e-9,
                "halving worst {worst} > log2 k {log_k}"
            );
        }
    }

    #[test]
    fn singleton_pays_linear() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 30;
        let t = e10_hitting_game(&cfg);
        let last = t.rows().last().unwrap();
        let k: f64 = last[0].parse().unwrap();
        let singleton: f64 = last[7].parse().unwrap();
        let random: f64 = last[3].parse().unwrap();
        assert!(singleton > k / 20.0, "singleton {singleton} vs k {k}");
        assert!(singleton > 4.0 * random);
    }
}
