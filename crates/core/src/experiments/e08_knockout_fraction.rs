//! E8 — Corollaries 5/7: constant-fraction knockout per round.

use fading_analysis::{separated_subset, GoodNodes, LinkClasses};
use fading_protocols::ProtocolKind;
use fading_sim::telemetry::jsonl::{self, TrialBlock};
use fading_sim::{EngineCounters, MemorySink, Simulation, TelemetryDetail};

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// E8: the fraction of `S_i` (the well-separated good subset of the
/// smallest nonempty class) knocked out by a *single* FKN round, across
/// `n`.
///
/// **Claim reproduced (Corollaries 5 and 7):** with constant probability
/// per member — independently of `n` — a constant fraction of `S_i`
/// receives a message and deactivates each round. The measured fraction
/// should therefore be roughly flat in `n`; its flatness is what turns
/// per-class `log`-many rounds into the global `O(log n + log R)` bound.
///
/// The knockout sets are read from the telemetry layer: each trial attaches
/// a [`MemorySink`] at id detail and counts `knocked_out_ids ∩ S_i` from
/// the round's [`RoundEvent`](fading_sim::RoundEvent) instead of diffing
/// simulator state by hand.
#[must_use]
pub fn e08_knockout_fraction(cfg: &ExperimentConfig) -> Table {
    e08_knockout_fraction_with(cfg, None)
}

/// [`e08_knockout_fraction`] with an optional telemetry export directory:
/// when set, every trial's round-event stream is appended to
/// `<dir>/e8.jsonl` as seed-tagged [`TrialBlock`]s, and each trial's
/// engine-decision counters ([`EngineCounters`]: resolve-tier routing plus
/// far-field rung tallies) go to `<dir>/e8.engine_counters.jsonl`, one
/// line per trial in trial order.
#[must_use]
pub fn e08_knockout_fraction_with(cfg: &ExperimentConfig, telemetry_dir: Option<&str>) -> Table {
    let mut table =
        Table::new("E8: one-round knockout fraction in S_i (smallest nonempty class, FKN on SINR)");
    table.headers([
        "n",
        "mean |S_i|",
        "knockout frac (mean)",
        "knockout frac (min)",
        "active knockout frac",
    ]);

    let mut blocks: Vec<TrialBlock> = Vec::new();
    let mut counters: Vec<EngineCounters> = Vec::new();
    for (block, &n) in cfg.n_sweep().iter().enumerate() {
        let mut s_sizes = Vec::new();
        let mut fractions = Vec::new();
        let mut overall = Vec::new();
        for trial in 0..cfg.trials as u64 {
            let seed = cfg.seed_block(block as u64) + trial;
            let d = standard_deployment(n, seed);
            let unit = d.min_link();
            let channel = sinr_for(&d).build();
            let pk = ProtocolKind::fkn_default();
            let mut sim = Simulation::new(d.clone(), channel, seed, |id| pk.build(id));
            sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::ids())));

            let before = sim.active_ids();
            let classes = LinkClasses::partition(d.points(), &before, unit);
            let good = GoodNodes::classify(d.points(), &before, &classes, 3.0);
            let Some(i) = classes.smallest_nonempty() else {
                continue;
            };
            let s_i = separated_subset(d.points(), &classes, &good, i, 2.0);
            if s_i.is_empty() {
                continue;
            }
            sim.step();
            let events = MemorySink::recover(sim.take_telemetry_sink().expect("sink attached"))
                .expect("MemorySink recovers as itself")
                .into_events();
            let event = events.last().expect("one step produces one event");
            let knocked = s_i
                .members()
                .iter()
                .filter(|&&u| event.knocked_out_ids.contains(&u))
                .count();
            s_sizes.push(s_i.len() as f64);
            fractions.push(knocked as f64 / s_i.len() as f64);
            overall.push(event.knocked_out as f64 / before.len() as f64);
            if telemetry_dir.is_some() {
                blocks.push(TrialBlock {
                    trial: blocks.len() as u64,
                    seed,
                    events,
                });
                counters.push(sim.engine_counters());
            }
        }
        if fractions.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
        table.row([
            n.to_string(),
            fmt_f64(mean(&s_sizes)),
            fmt_f64(mean(&fractions)),
            fmt_f64(min),
            fmt_f64(mean(&overall)),
        ]);
    }
    if let Some(dir) = telemetry_dir {
        let path = format!("{dir}/e8.jsonl");
        jsonl::write_trial_blocks_to_path(&path, &blocks)
            .unwrap_or_else(|e| panic!("write telemetry to {path}: {e}"));
        let path = format!("{dir}/e8.engine_counters.jsonl");
        jsonl::write_counters_to_path(&path, &counters)
            .unwrap_or_else(|e| panic!("write engine counters to {path}: {e}"));
    }
    table.note("separation parameter s = 2; one simulated round per trial");
    table.note("flat columns across n confirm the per-round constant-fraction guarantee");
    table.note("knockout sets read from telemetry round events (MemorySink at id detail)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knockout_fraction_is_substantial_and_flat() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 8;
        cfg.max_n_pow2 = 9;
        let t = e08_knockout_fraction(&cfg);
        assert!(t.num_rows() >= 3);
        let fracs: Vec<f64> = t.rows().iter().map(|r| r[2].parse().unwrap()).collect();
        for (i, f) in fracs.iter().enumerate() {
            assert!(*f > 0.05, "row {i} fraction {f} too small");
        }
        // Flatness: the largest and smallest mean fraction within 5x.
        let max = fracs.iter().copied().fold(0.0f64, f64::max);
        let min = fracs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 5.0, "fractions not flat: {fracs:?}");
    }

    #[test]
    fn telemetry_export_writes_trial_blocks() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 2;
        cfg.max_n_pow2 = 5;
        let dir = std::env::temp_dir().join(format!("e8-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_str().unwrap().to_string();
        let with = e08_knockout_fraction_with(&cfg, Some(&dir_str));
        let without = e08_knockout_fraction(&cfg);
        assert_eq!(with, without, "export must not change the table");
        let blocks = jsonl::read_trial_blocks_from_path(dir.join("e8.jsonl")).unwrap();
        assert!(!blocks.is_empty());
        for b in &blocks {
            assert_eq!(b.events.len(), 1, "one step per trial");
        }
        let counters = jsonl::read_counters_from_path(dir.join("e8.engine_counters.jsonl")).unwrap();
        assert_eq!(counters.len(), blocks.len(), "one counter line per trial");
        for c in &counters {
            assert_eq!(c.rounds, 1, "each trial stepped exactly one round");
            assert_eq!(c.routed_rounds(), c.rounds);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
