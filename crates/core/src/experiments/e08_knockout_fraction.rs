//! E8 — Corollaries 5/7: constant-fraction knockout per round.

use fading_analysis::{separated_subset, GoodNodes, LinkClasses};
use fading_protocols::ProtocolKind;
use fading_sim::Simulation;

use super::common::{sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// E8: the fraction of `S_i` (the well-separated good subset of the
/// smallest nonempty class) knocked out by a *single* FKN round, across
/// `n`.
///
/// **Claim reproduced (Corollaries 5 and 7):** with constant probability
/// per member — independently of `n` — a constant fraction of `S_i`
/// receives a message and deactivates each round. The measured fraction
/// should therefore be roughly flat in `n`; its flatness is what turns
/// per-class `log`-many rounds into the global `O(log n + log R)` bound.
#[must_use]
pub fn e08_knockout_fraction(cfg: &ExperimentConfig) -> Table {
    let mut table =
        Table::new("E8: one-round knockout fraction in S_i (smallest nonempty class, FKN on SINR)");
    table.headers([
        "n",
        "mean |S_i|",
        "knockout frac (mean)",
        "knockout frac (min)",
        "active knockout frac",
    ]);

    for (block, &n) in cfg.n_sweep().iter().enumerate() {
        let mut s_sizes = Vec::new();
        let mut fractions = Vec::new();
        let mut overall = Vec::new();
        for trial in 0..cfg.trials as u64 {
            let seed = cfg.seed_block(block as u64) + trial;
            let d = standard_deployment(n, seed);
            let unit = d.min_link();
            let channel = sinr_for(&d).build();
            let pk = ProtocolKind::fkn_default();
            let mut sim = Simulation::new(d.clone(), channel, seed, |id| pk.build(id));

            let before = sim.active_ids();
            let classes = LinkClasses::partition(d.points(), &before, unit);
            let good = GoodNodes::classify(d.points(), &before, &classes, 3.0);
            let Some(i) = classes.smallest_nonempty() else {
                continue;
            };
            let s_i = separated_subset(d.points(), &classes, &good, i, 2.0);
            if s_i.is_empty() {
                continue;
            }
            sim.step();
            let knocked = s_i.members().iter().filter(|&&u| !sim.is_active(u)).count();
            s_sizes.push(s_i.len() as f64);
            fractions.push(knocked as f64 / s_i.len() as f64);
            overall.push((before.len() - sim.num_active()) as f64 / before.len() as f64);
        }
        if fractions.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
        table.row([
            n.to_string(),
            fmt_f64(mean(&s_sizes)),
            fmt_f64(mean(&fractions)),
            fmt_f64(min),
            fmt_f64(mean(&overall)),
        ]);
    }
    table.note("separation parameter s = 2; one simulated round per trial");
    table.note("flat columns across n confirm the per-round constant-fraction guarantee");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knockout_fraction_is_substantial_and_flat() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 8;
        cfg.max_n_pow2 = 9;
        let t = e08_knockout_fraction(&cfg);
        assert!(t.num_rows() >= 3);
        let fracs: Vec<f64> = t.rows().iter().map(|r| r[2].parse().unwrap()).collect();
        for (i, f) in fracs.iter().enumerate() {
            assert!(*f > 0.05, "row {i} fraction {f} too small");
        }
        // Flatness: the largest and smallest mean fraction within 5x.
        let max = fracs.iter().copied().fold(0.0f64, f64::max);
        let min = fracs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 5.0, "fractions not flat: {fracs:?}");
    }
}
