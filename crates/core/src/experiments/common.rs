//! Shared experiment plumbing.

use serde::{Deserialize, Serialize};

use fading_channel::SinrParams;
use fading_geom::Deployment;
use fading_protocols::ProtocolKind;
use fading_sim::faults::FaultPlan;
use fading_sim::montecarlo::{self, Summary};
use fading_sim::Simulation;

use crate::ChannelKind;

/// Sizing knobs shared by every experiment.
///
/// Three presets:
///
/// * [`ExperimentConfig::smoke`] — seconds; used by unit tests.
/// * [`ExperimentConfig::quick`] — a couple of minutes; sanity sweeps.
/// * [`ExperimentConfig::full`] — the `EXPERIMENTS.md` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Monte-Carlo trials per data point.
    pub trials: usize,
    /// Worker threads for parallel trials.
    pub threads: usize,
    /// Largest `n` as a power of two (`n` sweeps use `16 … 2^max_n_pow2`).
    pub max_n_pow2: u32,
    /// Per-trial round budget.
    pub max_rounds: u64,
    /// Base seed; every data point derives disjoint seed ranges from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Test-sized: tiny networks, few trials.
    #[must_use]
    pub fn smoke() -> Self {
        ExperimentConfig {
            trials: 5,
            threads: available_threads(),
            max_n_pow2: 7,
            max_rounds: 200_000,
            seed: 1,
        }
    }

    /// Sanity-sweep size.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            trials: 25,
            threads: available_threads(),
            max_n_pow2: 10,
            max_rounds: 1_000_000,
            seed: 1,
        }
    }

    /// The configuration used to produce `EXPERIMENTS.md` (sized so the
    /// complete E1–E12 sweep finishes within tens of minutes on a single
    /// core; all trends reported there are stable well below this scale).
    #[must_use]
    pub fn full() -> Self {
        ExperimentConfig {
            trials: 100,
            threads: available_threads(),
            max_n_pow2: 12,
            max_rounds: 4_000_000,
            seed: 1,
        }
    }

    /// The `n` sweep `16, 32, …, 2^max_n_pow2`.
    #[must_use]
    pub fn n_sweep(&self) -> Vec<usize> {
        (4..=self.max_n_pow2).map(|p| 1usize << p).collect()
    }

    /// A disjoint seed block for data point number `block` (each block
    /// reserves 2^20 seeds, far more than any trial count used).
    #[must_use]
    pub fn seed_block(&self, block: u64) -> u64 {
        self.seed + (block << 20)
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

/// The standard deployment for `n`-sweeps: uniform placement at fixed
/// density 0.25 nodes per unit² (mean nearest-neighbor spacing ≈ 1), so the
/// local contention profile stays constant as `n` grows and `R` stays
/// polynomial in `n` — the regime of the paper's headline bound.
#[must_use]
pub fn standard_deployment(n: usize, seed: u64) -> Deployment {
    Deployment::uniform_density(n, 0.25, seed)
}

/// SINR channel with default parameters and power auto-scaled so the
/// deployment is single-hop with a 2× margin over the paper's condition.
#[must_use]
pub fn sinr_for(deployment: &Deployment) -> ChannelKind {
    ChannelKind::Sinr(SinrParams::default_single_hop().with_power_for(deployment))
}

/// Like [`sinr_for`] with an explicit path-loss exponent.
#[must_use]
pub fn sinr_with_alpha(deployment: &Deployment, alpha: f64) -> ChannelKind {
    let params = SinrParams::builder()
        .alpha(alpha)
        .build()
        .expect("alpha validated by the experiment")
        .with_power_for(deployment);
    ChannelKind::Sinr(params)
}

/// Runs `cfg.trials` seeded trials where *each trial draws a fresh
/// deployment* (same distribution, different seed), and summarizes.
///
/// `deploy(seed)` builds the trial's deployment; `channel(&d)` and
/// `protocol(&d)` may depend on it (power scaling, size-aware protocols).
pub fn measure<D, C, P>(
    cfg: &ExperimentConfig,
    seed_base: u64,
    deploy: D,
    channel: C,
    protocol: P,
) -> Summary
where
    D: Fn(u64) -> Deployment + Sync,
    C: Fn(&Deployment) -> ChannelKind + Sync,
    P: Fn(&Deployment) -> ProtocolKind + Sync,
{
    let results = montecarlo::run_trials(cfg.trials, cfg.threads, seed_base, |seed| {
        let d = deploy(seed);
        let ch = channel(&d).build();
        let pk = protocol(&d);
        let mut sim = Simulation::new(d, ch, seed, |id| pk.build(id));
        sim.run_until_resolved(cfg.max_rounds)
    });
    Summary::from_results(&results)
}

/// Like [`measure`], attaching `plan(&d)`'s fault schedule to every trial.
/// With an empty plan the summary is byte-identical to [`measure`] on the
/// same arguments (the empty-plan contract of the fault subsystem).
pub fn measure_with_faults<D, C, P, F>(
    cfg: &ExperimentConfig,
    seed_base: u64,
    deploy: D,
    channel: C,
    protocol: P,
    plan: F,
) -> Summary
where
    D: Fn(u64) -> Deployment + Sync,
    C: Fn(&Deployment) -> ChannelKind + Sync,
    P: Fn(&Deployment) -> ProtocolKind + Sync,
    F: Fn(&Deployment) -> FaultPlan + Sync,
{
    let results = montecarlo::run_trials(cfg.trials, cfg.threads, seed_base, |seed| {
        let d = deploy(seed);
        let ch = channel(&d).build();
        let pk = protocol(&d);
        let fp = plan(&d);
        let mut sim = Simulation::new(d, ch, seed, |id| pk.build(id));
        sim.set_fault_plan(fp)
            .expect("fault plan must fit the trial deployment");
        sim.run_until_resolved(cfg.max_rounds)
    });
    Summary::from_results(&results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_protocols::ProtocolKind;

    #[test]
    fn n_sweep_is_powers_of_two() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 6;
        assert_eq!(cfg.n_sweep(), vec![16, 32, 64]);
    }

    #[test]
    fn seed_blocks_are_disjoint() {
        let cfg = ExperimentConfig::smoke();
        let a = cfg.seed_block(0);
        let b = cfg.seed_block(1);
        assert!(b - a >= (1 << 20));
        assert!(b - a > cfg.trials as u64);
    }

    #[test]
    fn standard_deployment_density() {
        let d = standard_deployment(100, 3);
        // Side = sqrt(100/0.25) = 20.
        for p in d.points() {
            assert!(p.x < 20.0 && p.y < 20.0);
        }
    }

    #[test]
    fn sinr_for_is_single_hop() {
        let d = standard_deployment(64, 5);
        let kind = sinr_for(&d);
        kind.sinr_params()
            .unwrap()
            .admits_single_hop(&d)
            .expect("auto-scaled power admits single hop");
    }

    #[test]
    fn measure_produces_full_success_on_easy_case() {
        let cfg = ExperimentConfig::smoke();
        let s = measure(
            &cfg,
            cfg.seed_block(0),
            |seed| standard_deployment(32, seed),
            sinr_for,
            |_| ProtocolKind::fkn_default(),
        );
        assert_eq!(s.trials, cfg.trials);
        assert_eq!(s.success_rate, 1.0);
        assert!(s.mean_rounds >= 1.0);
    }
}
