//! E13 — robustness degradation under adversarial fault injection.

use fading_channel::SinrParams;
use fading_geom::{Deployment, Point};
use fading_protocols::ProtocolKind;
use fading_sim::faults::{ChurnEvent, FaultPlan, GilbertElliott, Jammer, NoiseBurst};

use super::common::{measure_with_faults, sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// A protocol family: display name plus a per-`n` kind constructor.
type ProtocolFamily = (&'static str, Box<dyn Fn(usize) -> ProtocolKind + Sync>);

/// Fault intensity levels swept by E13, in degradation order.
const INTENSITIES: [&str; 4] = ["none", "light", "moderate", "heavy"];

/// The geometric center of a deployment's bounding box (where a jammer
/// hurts the most listeners).
fn center_of(d: &Deployment) -> Point {
    let pts = d.points();
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in pts {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    Point::new((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
}

/// Builds the fault plan for one intensity level against one deployment.
/// Level 0 is the **empty** plan — byte-identical to no fault injection at
/// all, so the "none" column doubles as the E1/E3 baseline.
fn plan_for(level: usize, d: &Deployment) -> FaultPlan {
    if level == 0 {
        return FaultPlan::new();
    }
    let n = d.len();
    let node_power = SinrParams::default_single_hop().with_power_for(d).power();
    let center = center_of(d);
    let expect = "E13 fault parameters are statically valid";

    // Everything scales with the level: jammer strength and duty, noise
    // burst magnitude, churn fraction, and burst-loss severity.
    let jam_power = node_power * (4u32.pow(level as u32) as f64);
    let burst_len = level as u64; // of a 4-round cycle: 25% / 50% / 75% duty
    let mut plan = FaultPlan::new().with_jammer(
        Jammer::new(center, jam_power, 1, 4, burst_len, Some(60 * level as u64)).expect(expect),
    );

    if level >= 2 {
        plan = plan.with_noise_burst(
            NoiseBurst::new(2, 20 * level as u64, 2.0 * level as f64).expect(expect),
        );
    }

    // Crash a level-dependent fraction of the nodes early; revive half of
    // the crashed at round 40. Strides keep the victims spread out.
    let crashed = n * level / 8;
    for k in 0..crashed {
        let node = (k * n) / crashed.max(1) % n;
        plan = plan.with_churn(ChurnEvent::crash(3 + (k as u64 % 5), node).expect(expect));
        if k % 2 == 0 {
            plan = plan.with_churn(ChurnEvent::revive(40, node).expect(expect));
        }
    }
    // A level-dependent fraction wakes late.
    let sleepers = n * level / 16;
    for k in 0..sleepers {
        let node = (k * n) / sleepers.max(1).wrapping_mul(2) % n + n / 2;
        plan = plan.with_churn(ChurnEvent::late_wake(10 + level as u64, node % n).expect(expect));
    }

    plan.with_loss(
        GilbertElliott::new(0.05 * level as f64, 0.3, 0.0, 0.3 * level as f64).expect(expect),
    )
}

/// E13: resolution rounds and success rate for each protocol as fault
/// intensity rises from nothing to heavy combined jamming + churn + noise +
/// burst loss, at fixed `n`.
///
/// **Claims probed:** the paper's algorithm needs no coordination and uses
/// receptions only as knockout signals, so bounded adversarial interference
/// should *degrade* it (slower knockouts → more rounds) but not *break* it
/// — resolution still occurs once the jamming budget is spent and crashed
/// nodes leave at most a smaller contention population. The zero-fault row
/// is byte-identical to an unfaulted run (the empty-plan contract) and so
/// matches the E1/E3 baselines at the same `n` and seeds.
#[must_use]
pub fn e13_robustness(cfg: &ExperimentConfig) -> Table {
    let n = 1usize << cfg.max_n_pow2.min(8);
    let mut table = Table::new("E13: mean rounds by fault intensity (fixed n)");
    table.headers(["intensity", "fkn", "aloha(n)", "fkn+js15"]);

    let protocols: Vec<ProtocolFamily> = vec![
        ("fkn", Box::new(|_n| ProtocolKind::fkn_default())),
        ("aloha", Box::new(|n| ProtocolKind::Aloha { n })),
        (
            "fkn+js15",
            Box::new(|n| ProtocolKind::FknInterleavedJs {
                p: 0.05,
                n_bound: 2 * n,
            }),
        ),
    ];

    for (li, &label) in INTENSITIES.iter().enumerate() {
        let mut cells = vec![label.to_string()];
        for (pi, (_, proto)) in protocols.iter().enumerate() {
            // Same seed block for every intensity of a protocol: the sweep
            // isolates the fault plan as the only changing variable.
            let block = pi as u64;
            let s = measure_with_faults(
                cfg,
                cfg.seed_block(block),
                move |seed| standard_deployment(n, seed),
                sinr_for,
                |d| proto(d.len()),
                |d| plan_for(li, d),
            );
            let cell = if s.success_rate < 1.0 {
                format!(
                    "{} ({}%)",
                    fmt_f64(s.mean_rounds),
                    fmt_f64(100.0 * s.success_rate)
                )
            } else {
                fmt_f64(s.mean_rounds)
            };
            cells.push(cell);
        }
        table.row(cells);
    }
    table.note(format!("n = {n}; cells: mean rounds (success % appended when < 100)"));
    table.note("intensity scales jammer power/duty/budget, noise bursts, churn fraction, burst loss");
    table.note("row `none` attaches an empty fault plan: byte-identical to the unfaulted baseline");
    table
}

#[cfg(test)]
mod tests {
    use super::super::common::measure;
    use super::*;

    #[test]
    fn one_row_per_intensity_with_all_protocols() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 6;
        cfg.trials = 4;
        let t = e13_robustness(&cfg);
        assert_eq!(t.num_rows(), INTENSITIES.len());
        assert_eq!(t.rows()[0].len(), 4);
        assert_eq!(t.rows()[0][0], "none");
        assert_eq!(t.rows()[3][0], "heavy");
    }

    #[test]
    fn zero_fault_row_matches_the_unfaulted_baseline() {
        // The "none" row must reproduce plain `measure` exactly — same
        // seeds, same deployments, empty plan — which is the same pipeline
        // E1/E3 use for their baselines.
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 6;
        cfg.trials = 4;
        let n = 1usize << cfg.max_n_pow2.min(8);
        let faulted = measure_with_faults(
            &cfg,
            cfg.seed_block(0),
            |seed| standard_deployment(n, seed),
            sinr_for,
            |_| ProtocolKind::fkn_default(),
            |d| plan_for(0, d),
        );
        let baseline = measure(
            &cfg,
            cfg.seed_block(0),
            |seed| standard_deployment(n, seed),
            sinr_for,
            |_| ProtocolKind::fkn_default(),
        );
        assert_eq!(faulted, baseline);

        let t = e13_robustness(&cfg);
        assert_eq!(t.rows()[0][1], crate::table::fmt_f64(baseline.mean_rounds));
    }

    #[test]
    fn degradation_is_monotone_from_none_to_heavy_for_fkn() {
        // More faults can only slow fkn down (same seeds, harsher plan) —
        // check the endpoints, which are far enough apart to be stable at
        // smoke scale.
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 6;
        cfg.trials = 5;
        let n = 1usize << cfg.max_n_pow2.min(8);
        let run = |level: usize| {
            measure_with_faults(
                &cfg,
                cfg.seed_block(0),
                |seed| standard_deployment(n, seed),
                sinr_for,
                |_| ProtocolKind::fkn_default(),
                |d| plan_for(level, d),
            )
        };
        let none = run(0);
        let heavy = run(3);
        assert!(
            heavy.mean_rounds >= none.mean_rounds,
            "heavy faults should not speed up resolution: {} < {}",
            heavy.mean_rounds,
            none.mean_rounds
        );
    }

    #[test]
    fn plans_scale_with_intensity() {
        let d = standard_deployment(64, 1);
        assert!(plan_for(0, &d).is_empty());
        let light = plan_for(1, &d);
        let heavy = plan_for(3, &d);
        assert!(!light.is_empty());
        assert!(light.validate_for(64).is_ok());
        assert!(heavy.validate_for(64).is_ok());
        assert!(heavy.churn().len() > light.churn().len());
    }
}
