//! E7 — Lemma 6: dominant link classes are mostly good.

use fading_analysis::{GoodNodes, LinkClasses};
use fading_geom::{Deployment, Point};

use super::common::ExperimentConfig;
use crate::table::fmt_f64;
use crate::Table;

/// Builds the adversarial Lemma 6 stress deployment: `dom_pairs` pairs at
/// separation 20 (link class 4) on a sparse super-grid, with the first
/// `loaded` anchors each crowded by an 11×11 unit-spaced cluster (121
/// class-0 nodes) placed squarely inside the anchor's `t = 0` annulus
/// `(16, 32]`.
fn lemma6_deployment(dom_pairs: usize, loaded: usize) -> Deployment {
    let spacing = 512.0;
    let side = (dom_pairs as f64).sqrt().ceil() as usize;
    let mut points = Vec::new();
    for k in 0..dom_pairs {
        let x = (k % side) as f64 * spacing;
        let y = (k / side) as f64 * spacing;
        points.push(Point::new(x, y));
        points.push(Point::new(x + 20.0, y));
        if k < loaded {
            // 11×11 cluster centered 24 above the anchor: distances from the
            // anchor lie in [16.2, 31.8] ⊂ (16, 32].
            for r in 0..11 {
                for c in 0..11 {
                    points.push(Point::new(
                        x + f64::from(c) - 5.0,
                        y + 24.0 + f64::from(r) - 5.0,
                    ));
                }
            }
        }
    }
    Deployment::from_points(points).expect("construction avoids coincidences")
}

/// E7: the good-node fraction of a dominant link class as smaller-class
/// mass crowds its annuli.
///
/// **Claim reproduced (Lemma 6):** if `n_{<i} ≤ δ·n_i` then at least half
/// of `V_i` is good. The deployment is adversarial — every smaller-class
/// node is placed inside some dominant node's first annulus — yet the good
/// fraction stays above ½ until the smaller-class mass exceeds the
/// dominant class many times over: the lemma's constant `δ` is very
/// conservative, and the implication itself never fails.
#[must_use]
pub fn e07_good_fraction(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E7: good-node fraction of the dominant class (Lemma 6)");
    table.headers([
        "loaded anchors",
        "n_i (class 4)",
        "n_<i",
        "ratio n_<i/n_i",
        "good fraction",
        ">= 1/2",
    ]);

    let dom_pairs = 16.min(1 << (cfg.max_n_pow2 / 2)).max(4);
    let loads = [0usize, 1, 2, 4, 8, 12, 16];
    for &loaded in loads.iter().filter(|&&l| l <= dom_pairs) {
        let d = lemma6_deployment(dom_pairs, loaded);
        let active: Vec<usize> = (0..d.len()).collect();
        let classes = LinkClasses::partition(d.points(), &active, 1.0);
        let good = GoodNodes::classify(d.points(), &active, &classes, 3.0);
        let n_i = classes.count(4);
        let n_below = classes.count_below(4);
        let frac = good.good_fraction(4);
        table.row([
            loaded.to_string(),
            n_i.to_string(),
            n_below.to_string(),
            fmt_f64(n_below as f64 / n_i.max(1) as f64),
            fmt_f64(frac),
            if frac >= 0.5 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.note(format!(
        "{dom_pairs} class-4 pairs; each loaded anchor gains 121 class-0 nodes inside its t=0 annulus"
    ));
    table.note("Lemma 6 requires >= 1/2 good whenever n_<i <= delta*n_i; the table locates the empirical breaking ratio");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_class_is_fully_good() {
        let cfg = ExperimentConfig::smoke();
        let t = e07_good_fraction(&cfg);
        let first = &t.rows()[0];
        assert_eq!(first[0], "0");
        assert_eq!(first[4], "1.00");
        assert_eq!(first[5], "yes");
    }

    #[test]
    fn loading_reduces_good_fraction_monotonically() {
        let cfg = ExperimentConfig::smoke();
        let t = e07_good_fraction(&cfg);
        let fracs: Vec<f64> = t.rows().iter().map(|r| r[4].parse().unwrap()).collect();
        for w in fracs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "good fraction increased: {fracs:?}");
        }
        assert!(*fracs.last().unwrap() < 1.0, "max load had no effect");
    }

    #[test]
    fn deployment_geometry_is_as_designed() {
        let d = lemma6_deployment(4, 2);
        assert_eq!(d.len(), 4 * 2 + 2 * 121);
        let active: Vec<usize> = (0..d.len()).collect();
        let classes = LinkClasses::partition(d.points(), &active, 1.0);
        assert_eq!(classes.count(4), 8);
        assert_eq!(classes.count(0), 242);
    }
}
