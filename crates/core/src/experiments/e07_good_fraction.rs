//! E7 — Lemma 6: dominant link classes are mostly good.

use fading_analysis::{GoodNodes, LinkClasses};
use fading_channel::{ChannelPerturbation, SinrBreakdown};
use fading_geom::{Deployment, Point};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::common::{sinr_for, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;

/// Builds the adversarial Lemma 6 stress deployment: `dom_pairs` pairs at
/// separation 20 (link class 4) on a sparse super-grid, with the first
/// `loaded` anchors each crowded by an 11×11 unit-spaced cluster (121
/// class-0 nodes) placed squarely inside the anchor's `t = 0` annulus
/// `(16, 32]`.
fn lemma6_deployment(dom_pairs: usize, loaded: usize) -> Deployment {
    let spacing = 512.0;
    let side = (dom_pairs as f64).sqrt().ceil() as usize;
    let mut points = Vec::new();
    for k in 0..dom_pairs {
        let x = (k % side) as f64 * spacing;
        let y = (k / side) as f64 * spacing;
        points.push(Point::new(x, y));
        points.push(Point::new(x + 20.0, y));
        if k < loaded {
            // 11×11 cluster centered 24 above the anchor: distances from the
            // anchor lie in [16.2, 31.8] ⊂ (16, 32].
            for r in 0..11 {
                for c in 0..11 {
                    points.push(Point::new(
                        x + f64::from(c) - 5.0,
                        y + 24.0 + f64::from(r) - 5.0,
                    ));
                }
            }
        }
    }
    Deployment::from_points(points).expect("construction avoids coincidences")
}

/// Measures the dominant pairs' decode success from channel telemetry:
/// every node except the pair partners transmits at once (anchors plus all
/// loaded-cluster nodes — the worst case the deployment supports), the
/// partners listen, and [`Channel::resolve_instrumented`] reports one
/// [`SinrBreakdown`] per partner. Returns the fraction of partners whose
/// Equation 1 test passed.
///
/// [`Channel::resolve_instrumented`]: fading_channel::Channel::resolve_instrumented
fn dominant_pair_decode_fraction(d: &Deployment, dom_pairs: usize, loaded: usize, seed: u64) -> f64 {
    let channel = sinr_for(d).build();
    // Mirror the construction order of `lemma6_deployment`: anchor, partner,
    // then (for the first `loaded` anchors) 121 cluster points.
    let mut listeners = Vec::with_capacity(dom_pairs);
    let mut idx = 0;
    for k in 0..dom_pairs {
        listeners.push(idx + 1);
        idx += 2;
        if k < loaded {
            idx += 121;
        }
    }
    debug_assert_eq!(idx, d.len());
    let transmitters: Vec<usize> = (0..d.len()).filter(|i| !listeners.contains(i)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut breakdown: Vec<SinrBreakdown> = Vec::new();
    let _ = channel.resolve_instrumented(
        d.points(),
        &transmitters,
        &listeners,
        None,
        &ChannelPerturbation::neutral(),
        &mut rng,
        &mut breakdown,
    );
    debug_assert_eq!(breakdown.len(), listeners.len());
    breakdown.iter().filter(|b| b.decoded).count() as f64 / breakdown.len() as f64
}

/// E7: the good-node fraction of a dominant link class as smaller-class
/// mass crowds its annuli.
///
/// **Claim reproduced (Lemma 6):** if `n_{<i} ≤ δ·n_i` then at least half
/// of `V_i` is good. The deployment is adversarial — every smaller-class
/// node is placed inside some dominant node's first annulus — yet the good
/// fraction stays above ½ until the smaller-class mass exceeds the
/// dominant class many times over: the lemma's constant `δ` is very
/// conservative, and the implication itself never fails.
///
/// The last column is telemetry-derived: the fraction of dominant pairs
/// that still decode under worst-case concurrent transmission, read from
/// the channel layer's [`SinrBreakdown`] instrumentation. It degrades as
/// clusters load the annuli — the physical mechanism behind the
/// combinatorial good-fraction decline in column five.
#[must_use]
pub fn e07_good_fraction(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E7: good-node fraction of the dominant class (Lemma 6)");
    table.headers([
        "loaded anchors",
        "n_i (class 4)",
        "n_<i",
        "ratio n_<i/n_i",
        "good fraction",
        ">= 1/2",
        "pair decode frac (SINR)",
    ]);

    let dom_pairs = 16.min(1 << (cfg.max_n_pow2 / 2)).max(4);
    let loads = [0usize, 1, 2, 4, 8, 12, 16];
    for &loaded in loads.iter().filter(|&&l| l <= dom_pairs) {
        let d = lemma6_deployment(dom_pairs, loaded);
        let active: Vec<usize> = (0..d.len()).collect();
        let classes = LinkClasses::partition(d.points(), &active, 1.0);
        let good = GoodNodes::classify(d.points(), &active, &classes, 3.0);
        let n_i = classes.count(4);
        let n_below = classes.count_below(4);
        let frac = good.good_fraction(4);
        let decode = dominant_pair_decode_fraction(&d, dom_pairs, loaded, cfg.seed);
        table.row([
            loaded.to_string(),
            n_i.to_string(),
            n_below.to_string(),
            fmt_f64(n_below as f64 / n_i.max(1) as f64),
            fmt_f64(frac),
            if frac >= 0.5 { "yes" } else { "NO" }.to_string(),
            fmt_f64(decode),
        ]);
    }
    table.note(format!(
        "{dom_pairs} class-4 pairs; each loaded anchor gains 121 class-0 nodes inside its t=0 annulus"
    ));
    table.note("Lemma 6 requires >= 1/2 good whenever n_<i <= delta*n_i; the table locates the empirical breaking ratio");
    table.note("pair decode frac: SinrBreakdown-decoded fraction of pair receivers with all other nodes transmitting (telemetry)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_class_is_fully_good() {
        let cfg = ExperimentConfig::smoke();
        let t = e07_good_fraction(&cfg);
        let first = &t.rows()[0];
        assert_eq!(first[0], "0");
        assert_eq!(first[4], "1.00");
        assert_eq!(first[5], "yes");
    }

    #[test]
    fn loading_reduces_good_fraction_monotonically() {
        let cfg = ExperimentConfig::smoke();
        let t = e07_good_fraction(&cfg);
        let fracs: Vec<f64> = t.rows().iter().map(|r| r[4].parse().unwrap()).collect();
        for w in fracs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "good fraction increased: {fracs:?}");
        }
        assert!(*fracs.last().unwrap() < 1.0, "max load had no effect");
    }

    #[test]
    fn pair_decode_column_is_a_fraction_and_degrades_under_load() {
        let cfg = ExperimentConfig::smoke();
        let t = e07_good_fraction(&cfg);
        let decodes: Vec<f64> = t.rows().iter().map(|r| r[6].parse().unwrap()).collect();
        assert!(decodes.iter().all(|f| (0.0..=1.0).contains(f)));
        assert!(
            decodes.last().unwrap() < decodes.first().unwrap(),
            "cluster interference must erode the pair decode fraction: {decodes:?}"
        );
    }

    #[test]
    fn deployment_geometry_is_as_designed() {
        let d = lemma6_deployment(4, 2);
        assert_eq!(d.len(), 4 * 2 + 2 * 121);
        let active: Vec<usize> = (0..d.len()).collect();
        let classes = LinkClasses::partition(d.points(), &active, 1.0);
        assert_eq!(classes.count(4), 8);
        assert_eq!(classes.count(0), 242);
    }
}
