//! E3 — protocol comparison on the SINR channel.

use super::common::{measure, sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::Table;
use fading_protocols::ProtocolKind;

/// A protocol family: display name plus a per-`n` kind constructor.
type ProtocolFamily = (&'static str, Box<dyn Fn(usize) -> ProtocolKind + Sync>);

/// E3: every contention-resolution protocol on the *same* fading channel,
/// across `n`.
///
/// **Claims reproduced:** FKN (`O(log n)`, no knowledge) is competitive
/// with ALOHA-with-exact-`n` and beats both the classical Decay schedule
/// (`Θ(log² n)`-style, ported unchanged) and the Jurdziński–Stachowiak
/// schedule (`O(log² n / log log n)`, needs a bound `N ≥ n`). The
/// interleaved FKN+JS combination (the paper's unknown-`R` remedy) tracks
/// FKN within a factor ≈ 2.
#[must_use]
pub fn e03_protocols_on_sinr(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new("E3: mean rounds by protocol on the SINR channel");
    table.headers([
        "n",
        "fkn",
        "aloha(n)",
        "decay-classic",
        "js15(N=2n)",
        "sweep(N=2n)",
        "fkn+js15",
    ]);

    let protocols: Vec<ProtocolFamily> = vec![
        ("fkn", Box::new(|_n| ProtocolKind::fkn_default())),
        ("aloha", Box::new(|n| ProtocolKind::Aloha { n })),
        ("decay-classic", Box::new(|_n| ProtocolKind::DecayClassic)),
        (
            "js15",
            Box::new(|n| ProtocolKind::JurdzinskiStachowiak { n_bound: 2 * n }),
        ),
        (
            "sweep",
            Box::new(|n| ProtocolKind::CyclicSweep { n_bound: 2 * n }),
        ),
        (
            "fkn+js15",
            Box::new(|n| ProtocolKind::FknInterleavedJs {
                p: 0.05,
                n_bound: 2 * n,
            }),
        ),
    ];

    for (ni, &n) in cfg.n_sweep().iter().enumerate() {
        let mut cells = vec![n.to_string()];
        for (pi, (_, proto)) in protocols.iter().enumerate() {
            let block = (ni * protocols.len() + pi) as u64;
            let s = measure(
                cfg,
                cfg.seed_block(block),
                move |seed| standard_deployment(n, seed),
                sinr_for,
                |d| proto(d.len()),
            );
            let cell = if s.success_rate < 1.0 {
                format!(
                    "{} ({}%)",
                    fmt_f64(s.mean_rounds),
                    fmt_f64(100.0 * s.success_rate)
                )
            } else {
                fmt_f64(s.mean_rounds)
            };
            cells.push(cell);
        }
        table.row(cells);
    }
    table.note("cells: mean rounds over trials (success % appended when < 100)");
    table.note("aloha knows n exactly; js15/sweep know an upper bound N = 2n; fkn knows nothing");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_n_with_all_protocols() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 6;
        cfg.trials = 4;
        let t = e03_protocols_on_sinr(&cfg);
        assert_eq!(t.num_rows(), cfg.n_sweep().len());
        assert_eq!(t.rows()[0].len(), 7);
    }

    #[test]
    fn fkn_beats_decay_classic_at_scale() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 8;
        cfg.trials = 6;
        let t = e03_protocols_on_sinr(&cfg);
        let last = t.rows().last().unwrap();
        let fkn: f64 = last[1].split(' ').next().unwrap().parse().unwrap();
        let decay: f64 = last[3].split(' ').next().unwrap().parse().unwrap();
        assert!(fkn < decay, "fkn {fkn} vs decay-classic {decay}");
    }
}
