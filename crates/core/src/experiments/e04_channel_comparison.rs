//! E4 — the headline: beating the radio-network `Ω(log² n)` speed limit.

use fading_analysis::stats;

use super::common::{measure, sinr_for, standard_deployment, ExperimentConfig};
use crate::table::fmt_f64;
use crate::{ChannelKind, Table};
use fading_protocols::ProtocolKind;

/// E4: each model's canonical algorithm on its own channel, across `n`.
///
/// **Claims reproduced:**
///
/// * Decay on the plain radio channel needs `Θ(log² n)`-shaped rounds (the
///   non-fading speed limit).
/// * CD-election on the radio-CD channel and FKN on the SINR channel are
///   both `Θ(log n)`-shaped — fading buys what collision detection buys,
///   with no extra hardware ("resolves the conjecture that spatial reuse
///   allows beating the log² n speed limit").
/// * The FKN-vs-Decay speedup grows like `log n` (the "square root
///   improvement").
#[must_use]
pub fn e04_channel_comparison(cfg: &ExperimentConfig) -> Table {
    let mut table =
        Table::new("E4: model comparison — FKN/SINR vs Decay/radio vs CD-election/radio-CD");
    table.headers([
        "n",
        "fkn @ sinr",
        "decay @ radio",
        "cd-elect @ radio-cd",
        "speedup fkn/decay",
    ]);

    let mut ns = Vec::new();
    let mut fkn_means = Vec::new();
    let mut decay_means = Vec::new();
    for (ni, &n) in cfg.n_sweep().iter().enumerate() {
        let base = (ni * 3) as u64;
        let fkn = measure(
            cfg,
            cfg.seed_block(base),
            move |seed| standard_deployment(n, seed),
            sinr_for,
            |_| ProtocolKind::fkn_default(),
        );
        let decay = measure(
            cfg,
            cfg.seed_block(base + 1),
            move |seed| standard_deployment(n, seed),
            |_| ChannelKind::Radio,
            |_| ProtocolKind::DecayClassic,
        );
        let cd = measure(
            cfg,
            cfg.seed_block(base + 2),
            move |seed| standard_deployment(n, seed),
            |_| ChannelKind::RadioCd,
            |_| ProtocolKind::CdElection,
        );
        table.row([
            n.to_string(),
            fmt_f64(fkn.mean_rounds),
            fmt_f64(decay.mean_rounds),
            fmt_f64(cd.mean_rounds),
            fmt_f64(decay.mean_rounds / fkn.mean_rounds.max(1.0)),
        ]);
        ns.push(n);
        fkn_means.push(fkn.mean_rounds);
        decay_means.push(decay.mean_rounds);
    }

    if ns.len() >= 2 {
        let fkn_lin = stats::fit_log_n(&ns, &fkn_means);
        let decay_quad = stats::fit_log_squared_n(&ns, &decay_means);
        let decay_lin = stats::fit_log_n(&ns, &decay_means);
        table.note(format!(
            "fkn ~ log n fit: a={} R^2={}",
            fmt_f64(fkn_lin.slope),
            fmt_f64(fkn_lin.r_squared)
        ));
        table.note(format!(
            "decay ~ log^2 n fit: a={} R^2={} (vs log n fit R^2={})",
            fmt_f64(decay_quad.slope),
            fmt_f64(decay_quad.r_squared),
            fmt_f64(decay_lin.r_squared)
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_n() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_n_pow2 = 8;
        cfg.trials = 6;
        let t = e04_channel_comparison(&cfg);
        let first: f64 = t.rows()[0][4].parse().unwrap();
        let last: f64 = t.rows().last().unwrap()[4].parse().unwrap();
        assert!(
            last > first,
            "speedup did not grow with n: {first} -> {last}"
        );
        // At n = 256 the decay/fkn gap must already be pronounced.
        assert!(last > 2.0, "speedup at largest n: {last}");
    }

    #[test]
    fn table_shape() {
        let cfg = ExperimentConfig::smoke();
        let t = e04_channel_comparison(&cfg);
        assert_eq!(t.num_rows(), cfg.n_sweep().len());
        assert!(t.notes().len() >= 2);
    }
}
