//! The experiment harness: every quantitative claim of the paper,
//! regenerated as a [`Table`].
//!
//! The PODC'16 paper is a theory paper — it has no measurement tables of
//! its own — so the reproduction treats each theorem/lemma as an
//! experiment. The index (same numbering as `DESIGN.md` / `EXPERIMENTS.md`):
//!
//! | Id | Claim |
//! |----|-------|
//! | E1 | Theorem 1 scaling in `n` (`O(log n)` on uniform deployments) |
//! | E2 | Theorem 1 scaling in `R` (chains with `log R ≫ log n`) |
//! | E3 | Protocol comparison on the SINR channel |
//! | E4 | Channel comparison: beating the radio-network `Ω(log² n)` limit |
//! | E5 | Robustness in the broadcast probability `p` |
//! | E6 | Role of the path-loss exponent `α > 2` |
//! | E7 | Lemma 6: dominant classes are mostly good |
//! | E8 | Corollaries 5/7: constant-fraction knockout per round |
//! | E9 | §3.3: executions obey the class-bound schedule |
//! | E10 | §4: the restricted k-hitting game needs `Θ(log k)` |
//! | E11 | The "with high probability" guarantee, quantified |
//! | E12 | Ablations: knockout rule, stochastic fading, deployment shape |
//! | E13 | Robustness degradation under fault injection (jamming, churn, noise, burst loss) |
//! | E14 | Engine-tier scaling: the far-field resolve tier vs the n² wall |
//! | E15 | Hierarchical tier + parallel resolve: full runs at `n = 2²⁰` |
//! | E16 | Fault-tolerant execution: supervision, manifest resume, self-check demotion |
//!
//! Each `eNN` function is deterministic given its [`ExperimentConfig`];
//! [`run_by_id`] provides a string-keyed registry for the CLI harness.
//!
//! # Example
//!
//! ```
//! use fading_cr::experiments::{e05_probability_sweep, ExperimentConfig};
//!
//! let cfg = ExperimentConfig::smoke();
//! let table = e05_probability_sweep(&cfg);
//! assert!(!table.is_empty());
//! ```

// Experiment drivers build fixed, known-valid configurations; a construction
// failure here is a programming error surfaced by each experiment's smoke
// test, so panicking is the right response (unlike in the library layers).
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;
mod e01_rounds_vs_n;
mod e02_rounds_vs_r;
mod e03_protocols_on_sinr;
mod e04_channel_comparison;
mod e05_p_sweep;
mod e06_alpha_sweep;
mod e07_good_fraction;
mod e08_knockout_fraction;
mod e09_schedule_adherence;
mod e10_hitting_game;
mod e11_high_probability;
mod e12_ablations;
mod e13_robustness;
mod e14_engine_scaling;
mod e15_parallel_scaling;
mod e16_recovery;

pub use common::ExperimentConfig;
pub use e01_rounds_vs_n::e01_rounds_vs_n;
pub use e02_rounds_vs_r::e02_rounds_vs_r;
pub use e03_protocols_on_sinr::e03_protocols_on_sinr;
pub use e04_channel_comparison::e04_channel_comparison;
pub use e05_p_sweep::e05_probability_sweep;
pub use e06_alpha_sweep::e06_alpha_sweep;
pub use e07_good_fraction::e07_good_fraction;
pub use e08_knockout_fraction::{e08_knockout_fraction, e08_knockout_fraction_with};
pub use e09_schedule_adherence::{e09_schedule_adherence, e09_schedule_adherence_with};
pub use e10_hitting_game::e10_hitting_game;
pub use e11_high_probability::e11_high_probability;
pub use e12_ablations::e12_ablations;
pub use e13_robustness::e13_robustness;
pub use e14_engine_scaling::e14_engine_scaling;
pub use e15_parallel_scaling::e15_parallel_scaling;
pub use e16_recovery::e16_recovery;

use crate::Table;

/// The experiment ids accepted by [`run_by_id`], in canonical order.
pub const ALL_IDS: [&str; 16] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16",
];

/// Runs one experiment by id (`"e1"` … `"e16"`, case-insensitive).
/// Returns `None` for an unknown id.
#[must_use]
pub fn run_by_id(id: &str, cfg: &ExperimentConfig) -> Option<Table> {
    run_by_id_with(id, cfg, None)
}

/// Like [`run_by_id`], additionally passing a telemetry export directory
/// to the experiments that record round-event streams (E8 and E9 write
/// seed-tagged JSONL trial blocks under `<dir>/e8.jsonl` / `<dir>/e9.jsonl`;
/// the other experiments ignore the directory). The produced tables are
/// identical with and without a directory — export is a side channel.
#[must_use]
pub fn run_by_id_with(id: &str, cfg: &ExperimentConfig, telemetry_dir: Option<&str>) -> Option<Table> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e01_rounds_vs_n(cfg)),
        "e2" => Some(e02_rounds_vs_r(cfg)),
        "e3" => Some(e03_protocols_on_sinr(cfg)),
        "e4" => Some(e04_channel_comparison(cfg)),
        "e5" => Some(e05_probability_sweep(cfg)),
        "e6" => Some(e06_alpha_sweep(cfg)),
        "e7" => Some(e07_good_fraction(cfg)),
        "e8" => Some(e08_knockout_fraction_with(cfg, telemetry_dir)),
        "e9" => Some(e09_schedule_adherence_with(cfg, telemetry_dir)),
        "e10" => Some(e10_hitting_game(cfg)),
        "e11" => Some(e11_high_probability(cfg)),
        "e12" => Some(e12_ablations(cfg)),
        "e13" => Some(e13_robustness(cfg)),
        "e14" => Some(e14_engine_scaling(cfg)),
        "e15" => Some(e15_parallel_scaling(cfg)),
        "e16" => Some(e16_recovery(cfg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids() {
        let cfg = ExperimentConfig::smoke();
        for id in ALL_IDS {
            let table = run_by_id(id, &cfg);
            assert!(table.is_some(), "unknown id {id}");
            assert!(
                !table.unwrap().is_empty(),
                "experiment {id} produced no rows"
            );
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("e99", &ExperimentConfig::smoke()).is_none());
        assert!(run_by_id("", &ExperimentConfig::smoke()).is_none());
    }

    #[test]
    fn ids_are_case_insensitive() {
        let cfg = ExperimentConfig::smoke();
        assert!(run_by_id("E5", &cfg).is_some());
    }
}
