//! Serializable Monte-Carlo job specifications — the wire format of the
//! service layer.
//!
//! A [`JobSpec`] is everything `fading-server` needs to run one
//! Monte-Carlo batch: a deployment recipe (size × density × seed), a
//! channel family, a [`ProtocolKind`], and the trial envelope (count,
//! seed base, round budget). Specs travel as single-line JSON objects —
//! through the job-file queue or over the local socket — parsed with the
//! same hand-rolled [`jsonl`](fading_sim::telemetry::jsonl) machinery the
//! telemetry layer uses, so the server adds no serialization dependency.
//!
//! Deployment-dependent SINR power scaling is *derived*, not serialized:
//! the spec stores the deployment recipe and [`JobSpec::build_scenario`]
//! re-derives `SinrParams::default_single_hop().with_power_for(..)`
//! deterministically, so a spec that validates on the client validates
//! identically on the server.

use std::fmt;

use fading_channel::SinrParams;
use fading_geom::Deployment;
use fading_protocols::ProtocolKind;
use fading_sim::telemetry::jsonl::{parse_json, JsonValue};

use crate::channel_kind::ChannelKind;
use crate::scenario::{Scenario, ScenarioError};

/// Longest accepted job id (ids become directory names).
pub const MAX_ID_LEN: usize = 64;

/// A serializable channel family choice. SINR parameters are derived from
/// the deployment at build time (see the module docs), so only the family
/// — plus the lossy drop probability — is persisted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelSpec {
    /// The paper's fading channel, power auto-scaled to the deployment.
    Sinr,
    /// The classical radio network model.
    Radio,
    /// Radio with receiver collision detection.
    RadioCd,
    /// SINR with i.i.d. per-round Rayleigh fading.
    Rayleigh,
    /// SINR with i.i.d. per-reception drops.
    Lossy {
        /// Per-reception drop probability, in `[0, 1)`.
        drop_prob: f64,
    },
}

impl ChannelSpec {
    /// The stable wire label (matches [`ChannelKind::label`]).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChannelSpec::Sinr => "sinr",
            ChannelSpec::Radio => "radio",
            ChannelSpec::RadioCd => "radio-cd",
            ChannelSpec::Rayleigh => "rayleigh",
            ChannelSpec::Lossy { .. } => "lossy-sinr",
        }
    }

    /// Instantiates the [`ChannelKind`] for a concrete deployment.
    #[must_use]
    pub fn to_kind(&self, deployment: &Deployment) -> ChannelKind {
        let params = || SinrParams::default_single_hop().with_power_for(deployment);
        match *self {
            ChannelSpec::Sinr => ChannelKind::Sinr(params()),
            ChannelSpec::Radio => ChannelKind::Radio,
            ChannelSpec::RadioCd => ChannelKind::RadioCd,
            ChannelSpec::Rayleigh => ChannelKind::RayleighSinr(params()),
            ChannelSpec::Lossy { drop_prob } => ChannelKind::LossySinr {
                params: params(),
                drop_prob,
            },
        }
    }
}

/// One Monte-Carlo batch, as submitted to `fading-server`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job identifier: nonempty, `[A-Za-z0-9._-]`, at most [`MAX_ID_LEN`]
    /// chars (it names the job's output directory).
    pub id: String,
    /// Network size.
    pub n: usize,
    /// Deployment density (nodes per unit area); the square side is
    /// derived as `sqrt(n / density)`.
    pub density: f64,
    /// Seed for the deployment placement.
    pub deploy_seed: u64,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Channel family.
    pub channel: ChannelSpec,
    /// Number of independent trials.
    pub trials: usize,
    /// First trial seed; trial `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Per-trial round budget.
    pub max_rounds: u64,
    /// Whether the server should stream per-round telemetry events into
    /// the job's output directory (count-level detail).
    pub telemetry: bool,
}

/// Why a [`JobSpec`] was rejected.
#[derive(Debug)]
pub enum JobSpecError {
    /// The submitted text was not a valid spec object.
    Parse(String),
    /// The spec parsed but a field is out of range.
    Invalid(String),
    /// The spec's scenario failed [`Scenario`] validation.
    Scenario(ScenarioError),
}

impl fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSpecError::Parse(msg) => write!(f, "job spec parse error: {msg}"),
            JobSpecError::Invalid(msg) => write!(f, "invalid job spec: {msg}"),
            JobSpecError::Scenario(e) => write!(f, "job spec rejected by scenario: {e}"),
        }
    }
}

impl std::error::Error for JobSpecError {}

impl From<ScenarioError> for JobSpecError {
    fn from(e: ScenarioError) -> Self {
        JobSpecError::Scenario(e)
    }
}

fn invalid(msg: impl Into<String>) -> JobSpecError {
    JobSpecError::Invalid(msg.into())
}

/// Formats an `f64` so it round-trips through [`parse_json`].
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:?}")
    }
}

impl JobSpec {
    /// A small, always-valid spec — the starting point tests and load
    /// generators tweak.
    #[must_use]
    pub fn example(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            n: 32,
            density: 0.25,
            deploy_seed: 7,
            protocol: ProtocolKind::fkn_default(),
            channel: ChannelSpec::Sinr,
            trials: 4,
            seed_base: 1,
            max_rounds: 100_000,
            telemetry: false,
        }
    }

    /// Serializes the spec as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"id\":\"{}\",\"n\":{},\"density\":{},\"deploy_seed\":{},\"trials\":{},\"seed_base\":{},\"max_rounds\":{},\"telemetry\":{}",
            self.id,
            self.n,
            fmt_f64(self.density),
            self.deploy_seed,
            self.trials,
            self.seed_base,
            self.max_rounds,
            self.telemetry,
        ));
        s.push_str(",\"protocol\":{");
        s.push_str(&format!("\"kind\":\"{}\"", self.protocol.label()));
        match self.protocol {
            ProtocolKind::Fkn { p } | ProtocolKind::FixedProbability { p } => {
                s.push_str(&format!(",\"p\":{}", fmt_f64(p)));
            }
            ProtocolKind::Aloha { n } => s.push_str(&format!(",\"n\":{n}")),
            ProtocolKind::CyclicSweep { n_bound }
            | ProtocolKind::JurdzinskiStachowiak { n_bound } => {
                s.push_str(&format!(",\"n_bound\":{n_bound}"));
            }
            ProtocolKind::FknInterleavedJs { p, n_bound } => {
                s.push_str(&format!(",\"p\":{},\"n_bound\":{n_bound}", fmt_f64(p)));
            }
            ProtocolKind::Decay | ProtocolKind::DecayClassic | ProtocolKind::CdElection => {}
            // `ProtocolKind` is non_exhaustive; new variants must extend
            // the wire format before they can travel.
            #[allow(unreachable_patterns)]
            other => unreachable!("unserialized protocol kind {other:?}"),
        }
        s.push_str("},\"channel\":{");
        s.push_str(&format!("\"kind\":\"{}\"", self.channel.label()));
        if let ChannelSpec::Lossy { drop_prob } = self.channel {
            s.push_str(&format!(",\"drop_prob\":{}", fmt_f64(drop_prob)));
        }
        s.push_str("}}");
        s
    }

    /// Parses and validates a spec from one JSON line.
    ///
    /// # Errors
    ///
    /// [`JobSpecError::Parse`] for malformed JSON or missing fields,
    /// [`JobSpecError::Invalid`] for out-of-range values.
    pub fn from_json(line: &str) -> Result<JobSpec, JobSpecError> {
        let v = parse_json(line).map_err(|e| JobSpecError::Parse(e.to_string()))?;
        JobSpec::from_value(&v)
    }

    /// Parses and validates a spec from an already-parsed JSON object
    /// (e.g. the `"job"` field of a socket submit request).
    ///
    /// # Errors
    ///
    /// As [`JobSpec::from_json`].
    pub fn from_value(v: &JsonValue) -> Result<JobSpec, JobSpecError> {
        let str_field = |key: &str| -> Result<String, JobSpecError> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| JobSpecError::Parse(format!("missing string field \"{key}\"")))
        };
        let f64_of = |obj: &JsonValue, key: &str| -> Result<f64, JobSpecError> {
            obj.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| JobSpecError::Parse(format!("missing numeric field \"{key}\"")))
        };
        let u64_of = |obj: &JsonValue, key: &str| -> Result<u64, JobSpecError> {
            let x = f64_of(obj, key)?;
            if x < 0.0 || x.fract() != 0.0 || x > 2f64.powi(53) {
                return Err(invalid(format!("field \"{key}\" must be a non-negative integer")));
            }
            Ok(x as u64)
        };
        let usize_of = |obj: &JsonValue, key: &str| -> Result<usize, JobSpecError> {
            usize::try_from(u64_of(obj, key)?)
                .map_err(|_| invalid(format!("field \"{key}\" out of range")))
        };

        let id = str_field("id")?;
        let protocol_obj = v
            .get("protocol")
            .ok_or_else(|| JobSpecError::Parse("missing object field \"protocol\"".into()))?;
        let protocol_kind = protocol_obj
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| JobSpecError::Parse("missing \"protocol.kind\"".into()))?;
        let protocol = match protocol_kind {
            "fkn" => ProtocolKind::Fkn {
                p: f64_of(protocol_obj, "p")?,
            },
            "decay" => ProtocolKind::Decay,
            "decay-classic" => ProtocolKind::DecayClassic,
            "aloha" => ProtocolKind::Aloha {
                n: usize_of(protocol_obj, "n")?,
            },
            "cyclic-sweep" => ProtocolKind::CyclicSweep {
                n_bound: usize_of(protocol_obj, "n_bound")?,
            },
            "cd-election" => ProtocolKind::CdElection,
            "js15" => ProtocolKind::JurdzinskiStachowiak {
                n_bound: usize_of(protocol_obj, "n_bound")?,
            },
            "fixed-p" => ProtocolKind::FixedProbability {
                p: f64_of(protocol_obj, "p")?,
            },
            "fkn+js15" => ProtocolKind::FknInterleavedJs {
                p: f64_of(protocol_obj, "p")?,
                n_bound: usize_of(protocol_obj, "n_bound")?,
            },
            other => return Err(invalid(format!("unknown protocol kind \"{other}\""))),
        };
        let channel_obj = v
            .get("channel")
            .ok_or_else(|| JobSpecError::Parse("missing object field \"channel\"".into()))?;
        let channel_kind = channel_obj
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| JobSpecError::Parse("missing \"channel.kind\"".into()))?;
        let channel = match channel_kind {
            "sinr" => ChannelSpec::Sinr,
            "radio" => ChannelSpec::Radio,
            "radio-cd" => ChannelSpec::RadioCd,
            "rayleigh" => ChannelSpec::Rayleigh,
            "lossy-sinr" => ChannelSpec::Lossy {
                drop_prob: f64_of(channel_obj, "drop_prob")?,
            },
            other => return Err(invalid(format!("unknown channel kind \"{other}\""))),
        };
        let telemetry = match v.get("telemetry") {
            None => false,
            Some(t) => t
                .as_bool()
                .ok_or_else(|| invalid("field \"telemetry\" must be a bool"))?,
        };
        let spec = JobSpec {
            id,
            n: usize_of(v, "n")?,
            density: f64_of(v, "density")?,
            deploy_seed: u64_of(v, "deploy_seed")?,
            protocol,
            channel,
            trials: usize_of(v, "trials")?,
            seed_base: u64_of(v, "seed_base")?,
            max_rounds: u64_of(v, "max_rounds")?,
            telemetry,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every field range (without building the deployment, which
    /// can be expensive at huge `n`).
    ///
    /// # Errors
    ///
    /// [`JobSpecError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), JobSpecError> {
        if self.id.is_empty() || self.id.len() > MAX_ID_LEN {
            return Err(invalid(format!(
                "id must be 1..={MAX_ID_LEN} characters"
            )));
        }
        if !self
            .id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(invalid("id may only contain [A-Za-z0-9._-]"));
        }
        if self.n < 2 {
            return Err(invalid("n must be at least 2"));
        }
        if self.density <= 0.0 || !self.density.is_finite() {
            return Err(invalid("density must be finite and positive"));
        }
        if self.trials == 0 {
            return Err(invalid("trials must be at least 1"));
        }
        if self.max_rounds == 0 {
            return Err(invalid("max_rounds must be at least 1"));
        }
        if self.seed_base.checked_add(self.trials as u64).is_none() {
            return Err(invalid("seed_base + trials overflows"));
        }
        match self.protocol {
            ProtocolKind::Fkn { p }
            | ProtocolKind::FixedProbability { p }
            | ProtocolKind::FknInterleavedJs { p, .. }
                if !(p > 0.0 && p < 1.0) =>
            {
                return Err(invalid("protocol probability must lie in (0, 1)"));
            }
            ProtocolKind::Aloha { n: 0 } => {
                return Err(invalid("aloha n must be at least 1"));
            }
            ProtocolKind::CyclicSweep { n_bound }
            | ProtocolKind::JurdzinskiStachowiak { n_bound }
            | ProtocolKind::FknInterleavedJs { n_bound, .. }
                if n_bound < self.n =>
            {
                return Err(invalid("protocol n_bound must be >= n"));
            }
            _ => {}
        }
        if let ChannelSpec::Lossy { drop_prob } = self.channel {
            if !(0.0..1.0).contains(&drop_prob) {
                return Err(invalid("drop_prob must lie in [0, 1)"));
            }
        }
        Ok(())
    }

    /// Builds the validated [`Scenario`] this spec describes: generates
    /// the deployment, derives power-scaled channel parameters, and runs
    /// the full scenario validation.
    ///
    /// # Errors
    ///
    /// [`JobSpecError::Invalid`] for field-range violations,
    /// [`JobSpecError::Scenario`] when scenario validation rejects the
    /// combination.
    pub fn build_scenario(&self) -> Result<Scenario, JobSpecError> {
        self.validate()?;
        let deployment = Deployment::uniform_density(self.n, self.density, self.deploy_seed);
        let channel = self.channel.to_kind(&deployment);
        let scenario = Scenario::builder()
            .deployment(deployment)
            .channel(channel)
            .protocol(self.protocol)
            .seed(self.seed_base)
            .build()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_round_trips_through_json() {
        let spec = JobSpec::example("rt-1");
        let line = spec.to_json();
        let back = JobSpec::from_json(&line).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn every_protocol_kind_round_trips() {
        let kinds = [
            ProtocolKind::Fkn { p: 0.125 },
            ProtocolKind::Decay,
            ProtocolKind::DecayClassic,
            ProtocolKind::Aloha { n: 64 },
            ProtocolKind::CyclicSweep { n_bound: 128 },
            ProtocolKind::CdElection,
            ProtocolKind::JurdzinskiStachowiak { n_bound: 256 },
            ProtocolKind::FixedProbability { p: 0.5 },
            ProtocolKind::FknInterleavedJs {
                p: 0.25,
                n_bound: 64,
            },
        ];
        for kind in kinds {
            let mut spec = JobSpec::example("proto");
            spec.protocol = kind;
            let back = JobSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back.protocol, kind, "{}", kind.label());
        }
    }

    #[test]
    fn every_channel_spec_round_trips() {
        let channels = [
            ChannelSpec::Sinr,
            ChannelSpec::Radio,
            ChannelSpec::RadioCd,
            ChannelSpec::Rayleigh,
            ChannelSpec::Lossy { drop_prob: 0.125 },
        ];
        for channel in channels {
            let mut spec = JobSpec::example("chan");
            spec.channel = channel;
            let back = JobSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back.channel, channel, "{}", channel.label());
        }
    }

    #[test]
    fn rejects_bad_fields() {
        let cases: Vec<(&str, Box<dyn Fn(&mut JobSpec)>)> = vec![
            ("empty id", Box::new(|s| s.id.clear())),
            ("id with slash", Box::new(|s| s.id = "../escape".into())),
            ("n too small", Box::new(|s| s.n = 1)),
            ("zero trials", Box::new(|s| s.trials = 0)),
            ("zero rounds", Box::new(|s| s.max_rounds = 0)),
            ("bad density", Box::new(|s| s.density = 0.0)),
            (
                "bad probability",
                Box::new(|s| s.protocol = ProtocolKind::Fkn { p: 1.5 }),
            ),
            (
                "n_bound below n",
                Box::new(|s| s.protocol = ProtocolKind::CyclicSweep { n_bound: 2 }),
            ),
            (
                "bad drop_prob",
                Box::new(|s| s.channel = ChannelSpec::Lossy { drop_prob: 1.0 }),
            ),
        ];
        for (name, tweak) in cases {
            let mut spec = JobSpec::example("bad");
            tweak(&mut spec);
            assert!(spec.validate().is_err(), "{name} should be rejected");
        }
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        for line in ["", "{", "[1,2]", "{\"id\":\"x\"}", "{\"id\":3}"] {
            match JobSpec::from_json(line) {
                Err(JobSpecError::Parse(_)) => {}
                other => panic!("{line:?} should be a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn build_scenario_runs_deterministically() {
        let mut spec = JobSpec::example("run");
        spec.trials = 2;
        let scenario = spec.build_scenario().unwrap();
        let a = scenario.simulation_with_seed(spec.seed_base).run_until_resolved(spec.max_rounds);
        let b = spec
            .build_scenario()
            .unwrap()
            .simulation_with_seed(spec.seed_base)
            .run_until_resolved(spec.max_rounds);
        assert_eq!(a, b, "spec -> scenario -> run must be deterministic");
        assert!(a.resolved());
    }
}
