//! Plain-text and CSV table rendering for experiment output.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A simple experiment-results table: a title, column headers, string rows,
/// and free-form footnotes (used for fit statistics and caveats).
///
/// # Example
///
/// ```
/// use fading_cr::Table;
///
/// let mut t = Table::new("E0: demo");
/// t.headers(["n", "rounds"]);
/// t.row(["16", "12.5"]);
/// t.row(["64", "18.0"]);
/// t.note("synthetic numbers");
/// let text = t.render();
/// assert!(text.contains("E0: demo"));
/// assert!(text.contains("rounds"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("n,rounds\n"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if headers are set and the row width does not match.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            self.headers.is_empty() || row.len() == self.headers.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access to the raw rows (for assertions in tests).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders an aligned, boxed plain-text table.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        let separator = {
            let mut line = String::from("|");
            for w in &widths {
                line.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            line.push('\n');
            line
        };
        if !self.headers.is_empty() {
            out.push_str(&render_row(&self.headers, &widths));
            out.push_str(&separator);
        }
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Renders RFC-4180-style CSV (headers first; quotes around cells that
    /// contain commas, quotes, or newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        if !self.headers.is_empty() {
            out.push_str(
                &self
                    .headers
                    .iter()
                    .map(|h| escape(h))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with a sensible fixed precision for table cells.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo");
        t.headers(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["100", "3"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // All table body lines have equal width.
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{text}");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("demo");
        t.headers(["x", "y"]);
        t.row(["a,b", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n\"a,b\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo");
        t.headers(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn notes_are_rendered() {
        let mut t = Table::new("demo");
        t.headers(["a"]);
        t.row(["1"]);
        t.note("caveat emptor");
        assert!(t.render().contains("note: caveat emptor"));
        assert_eq!(t.notes().len(), 1);
    }

    #[test]
    fn accessors() {
        let mut t = Table::new("demo");
        assert!(t.is_empty());
        t.headers(["a"]);
        t.row(["1"]);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.title(), "demo");
        assert_eq!(t.rows()[0][0], "1");
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_f64_precision_tiers() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(3.24159), "3.24");
        assert_eq!(fmt_f64(42.123), "42.1");
        assert_eq!(fmt_f64(12345.6), "12346");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("demo");
        t.headers(["a"]);
        t.row(["1"]);
        assert_eq!(t.to_string(), t.render());
    }
}
