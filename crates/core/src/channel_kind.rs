//! Serializable channel configuration.

use serde::{Deserialize, Serialize};

use fading_channel::{
    Channel, LossySinrChannel, RadioCdChannel, RadioChannel, RayleighSinrChannel, SinrChannel,
    SinrParams,
};

/// A serializable description of a channel model, the configuration-level
/// counterpart of the sealed [`Channel`] trait.
///
/// # Example
///
/// ```
/// use fading_cr::ChannelKind;
/// use fading_channel::SinrParams;
///
/// let kind = ChannelKind::Sinr(SinrParams::default_single_hop());
/// let channel = kind.build();
/// assert_eq!(channel.name(), "sinr");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ChannelKind {
    /// The paper's fading channel (Equation 1).
    Sinr(SinrParams),
    /// The classical radio network model (collision = silence).
    Radio,
    /// The radio network model with receiver collision detection.
    RadioCd,
    /// SINR with i.i.d. per-round Rayleigh fading gains.
    RayleighSinr(SinrParams),
    /// SINR with i.i.d. per-reception message drops (failure injection).
    LossySinr {
        /// The SINR parameters.
        params: SinrParams,
        /// Per-reception drop probability, in `[0, 1)`.
        drop_prob: f64,
    },
}

impl ChannelKind {
    /// Instantiates the channel.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (e.g. a drop probability
    /// outside `[0,1]`) — configurations are expected to be validated at
    /// experiment-construction time.
    #[must_use]
    #[allow(clippy::expect_used)] // panic on invalid config is this method's documented contract
    pub fn build(&self) -> Box<dyn Channel> {
        match *self {
            ChannelKind::Sinr(params) => Box::new(SinrChannel::new(params)),
            ChannelKind::Radio => Box::new(RadioChannel::new()),
            ChannelKind::RadioCd => Box::new(RadioCdChannel::new()),
            ChannelKind::RayleighSinr(params) => Box::new(RayleighSinrChannel::new(params)),
            ChannelKind::LossySinr { params, drop_prob } => Box::new(
                LossySinrChannel::new(params, drop_prob)
                    .expect("drop probability validated at configuration time"),
            ),
        }
    }

    /// The SINR parameters, for the kinds that have them.
    #[must_use]
    pub fn sinr_params(&self) -> Option<&SinrParams> {
        match self {
            ChannelKind::Sinr(p)
            | ChannelKind::RayleighSinr(p)
            | ChannelKind::LossySinr { params: p, .. } => Some(p),
            _ => None,
        }
    }

    /// A short stable label for table columns.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChannelKind::Sinr(_) => "sinr",
            ChannelKind::Radio => "radio",
            ChannelKind::RadioCd => "radio-cd",
            ChannelKind::RayleighSinr(_) => "rayleigh",
            ChannelKind::LossySinr { .. } => "lossy-sinr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_label() {
        let kinds = [
            ChannelKind::Sinr(SinrParams::default_single_hop()),
            ChannelKind::Radio,
            ChannelKind::RadioCd,
            ChannelKind::RayleighSinr(SinrParams::default_single_hop()),
        ];
        for k in kinds {
            let built = k.build();
            match k {
                ChannelKind::Sinr(_) => assert_eq!(built.name(), "sinr"),
                ChannelKind::Radio => assert_eq!(built.name(), "radio"),
                ChannelKind::RadioCd => {
                    assert_eq!(built.name(), "radio-cd");
                    assert!(built.supports_collision_detection());
                }
                ChannelKind::RayleighSinr(_) => assert_eq!(built.name(), "rayleigh-sinr"),
                ChannelKind::LossySinr { .. } => assert_eq!(built.name(), "lossy-sinr"),
            }
        }
    }

    #[test]
    fn lossy_kind_builds_and_reports() {
        let k = ChannelKind::LossySinr {
            params: SinrParams::default_single_hop(),
            drop_prob: 0.2,
        };
        assert_eq!(k.build().name(), "lossy-sinr");
        assert_eq!(k.label(), "lossy-sinr");
        assert!(k.sinr_params().is_some());
    }

    #[test]
    fn sinr_params_accessor() {
        let p = SinrParams::default_single_hop();
        assert_eq!(ChannelKind::Sinr(p).sinr_params(), Some(&p));
        assert_eq!(ChannelKind::Radio.sinr_params(), None);
    }
}
