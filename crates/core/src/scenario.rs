//! Validated scenario construction.

use std::error::Error;
use std::fmt;

use fading_channel::ChannelError;
use fading_geom::Deployment;
use fading_protocols::ProtocolKind;
use fading_sim::faults::{FaultError, FaultPlan};
use fading_sim::{montecarlo, RunResult, Simulation, TraceLevel};

use crate::ChannelKind;

/// Errors from building or validating a [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// No deployment was supplied.
    MissingDeployment,
    /// No channel was supplied.
    MissingChannel,
    /// No protocol was supplied.
    MissingProtocol,
    /// The deployment violates the paper's single-hop admissibility
    /// condition under the chosen SINR parameters.
    NotSingleHop(ChannelError),
    /// The fault plan does not fit the deployment (e.g. a churn event
    /// names a node outside it).
    InvalidFaultPlan(FaultError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::MissingDeployment => write!(f, "scenario needs a deployment"),
            ScenarioError::MissingChannel => write!(f, "scenario needs a channel"),
            ScenarioError::MissingProtocol => write!(f, "scenario needs a protocol"),
            ScenarioError::NotSingleHop(e) => write!(f, "deployment is not single-hop: {e}"),
            ScenarioError::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::NotSingleHop(e) => Some(e),
            ScenarioError::InvalidFaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

/// A fully specified, validated experiment unit: deployment × channel ×
/// protocol × seed.
///
/// Build via [`Scenario::builder`]. Validation enforces the paper's model
/// assumptions — in particular, SINR scenarios must satisfy the single-hop
/// condition `P > 4·β·N·(longest link)^α`; use
/// [`SinrParams::with_power_for`](fading_channel::SinrParams::with_power_for)
/// to auto-scale power when sweeping deployment sizes.
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone)]
pub struct Scenario {
    deployment: Deployment,
    channel: ChannelKind,
    protocol: ProtocolKind,
    seed: u64,
    trace_level: TraceLevel,
    fault_plan: Option<FaultPlan>,
}

impl Scenario {
    /// Starts building a scenario.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The deployment under test.
    #[must_use]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The channel configuration.
    #[must_use]
    pub fn channel(&self) -> ChannelKind {
        self.channel
    }

    /// The protocol configuration.
    #[must_use]
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// The master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault plan attached to every simulation built from this
    /// scenario, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Builds a fresh simulation (cheap; positions are copied once).
    #[must_use]
    pub fn simulation(&self) -> Simulation {
        self.simulation_with_seed(self.seed)
    }

    /// Builds a fresh simulation with an explicit seed (used by Monte-Carlo
    /// sweeps; all other configuration is shared).
    #[must_use]
    pub fn simulation_with_seed(&self, seed: u64) -> Simulation {
        let protocol = self.protocol;
        let mut sim = Simulation::new(
            self.deployment.clone(),
            self.channel.build(),
            seed,
            move |id| protocol.build(id),
        );
        if let Some(plan) = &self.fault_plan {
            if sim.set_fault_plan(plan.clone()).is_err() {
                unreachable!("plan validated at scenario build time")
            }
        }
        sim.set_trace_level(self.trace_level);
        sim
    }

    /// Runs to resolution (or the round budget) and returns the result.
    #[must_use]
    pub fn run(&self, max_rounds: u64) -> RunResult {
        self.simulation().run_until_resolved(max_rounds)
    }

    /// Runs `trials` seeded trials (seeds `seed, seed+1, …`) in parallel on
    /// `threads` workers, returning per-trial results in seed order.
    #[must_use]
    pub fn montecarlo(&self, trials: usize, threads: usize, max_rounds: u64) -> Vec<RunResult> {
        montecarlo::run_trials(trials, threads, self.seed, |seed| {
            self.simulation_with_seed(seed)
                .run_until_resolved(max_rounds)
        })
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    deployment: Option<Deployment>,
    channel: Option<ChannelKind>,
    protocol: Option<ProtocolKind>,
    seed: u64,
    trace_level: TraceLevel,
    fault_plan: Option<FaultPlan>,
}

impl ScenarioBuilder {
    /// Sets the deployment.
    pub fn deployment(&mut self, deployment: Deployment) -> &mut Self {
        self.deployment = Some(deployment);
        self
    }

    /// Uses the SINR channel with the given parameters.
    pub fn sinr(&mut self, params: fading_channel::SinrParams) -> &mut Self {
        self.channel = Some(ChannelKind::Sinr(params));
        self
    }

    /// Uses the classical radio channel.
    pub fn radio(&mut self) -> &mut Self {
        self.channel = Some(ChannelKind::Radio);
        self
    }

    /// Uses the collision-detection radio channel.
    pub fn radio_cd(&mut self) -> &mut Self {
        self.channel = Some(ChannelKind::RadioCd);
        self
    }

    /// Uses an explicit channel kind.
    pub fn channel(&mut self, kind: ChannelKind) -> &mut Self {
        self.channel = Some(kind);
        self
    }

    /// Sets the protocol.
    pub fn protocol(&mut self, kind: ProtocolKind) -> &mut Self {
        self.protocol = Some(kind);
        self
    }

    /// Sets the master seed (default 0).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the trace level for simulations built from the scenario.
    pub fn trace_level(&mut self, level: TraceLevel) -> &mut Self {
        self.trace_level = level;
        self
    }

    /// Attaches a fault plan (jammers, noise bursts, churn, burst loss) to
    /// every simulation built from the scenario. Validated against the
    /// deployment at [`ScenarioBuilder::build`] time.
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates and produces the scenario.
    ///
    /// # Errors
    ///
    /// * [`ScenarioError::MissingDeployment`] / [`ScenarioError::MissingChannel`] /
    ///   [`ScenarioError::MissingProtocol`] if a component is unset.
    /// * [`ScenarioError::NotSingleHop`] if a SINR-family channel's power is
    ///   insufficient for the deployment's longest link.
    /// * [`ScenarioError::InvalidFaultPlan`] if an attached fault plan does
    ///   not fit the deployment.
    pub fn build(&self) -> Result<Scenario, ScenarioError> {
        let deployment = self
            .deployment
            .clone()
            .ok_or(ScenarioError::MissingDeployment)?;
        let channel = self.channel.ok_or(ScenarioError::MissingChannel)?;
        let protocol = self.protocol.ok_or(ScenarioError::MissingProtocol)?;
        if let Some(params) = channel.sinr_params() {
            params
                .admits_single_hop(&deployment)
                .map_err(ScenarioError::NotSingleHop)?;
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate_for(deployment.len())
                .map_err(ScenarioError::InvalidFaultPlan)?;
        }
        Ok(Scenario {
            deployment,
            channel,
            protocol,
            seed: self.seed,
            trace_level: self.trace_level,
            fault_plan: self.fault_plan.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_channel::SinrParams;

    fn small_deployment() -> Deployment {
        Deployment::uniform_square(16, 10.0, 1)
    }

    #[test]
    fn builder_requires_all_components() {
        let err = Scenario::builder().build().unwrap_err();
        assert_eq!(err, ScenarioError::MissingDeployment);
        let err = Scenario::builder()
            .deployment(small_deployment())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::MissingChannel);
        let err = Scenario::builder()
            .deployment(small_deployment())
            .radio()
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::MissingProtocol);
    }

    #[test]
    fn sinr_scenario_validates_single_hop() {
        let weak = SinrParams::builder().power(1.0).build().unwrap();
        let err = Scenario::builder()
            .deployment(small_deployment())
            .sinr(weak)
            .protocol(ProtocolKind::fkn_default())
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::NotSingleHop(_)));
    }

    #[test]
    fn radio_scenario_skips_single_hop_check() {
        let s = Scenario::builder()
            .deployment(small_deployment())
            .radio()
            .protocol(ProtocolKind::DecayClassic)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(s.seed(), 5);
        assert_eq!(s.channel().label(), "radio");
    }

    #[test]
    fn run_resolves_and_montecarlo_is_seed_ordered() {
        let s = Scenario::builder()
            .deployment(small_deployment())
            .sinr(SinrParams::default_single_hop())
            .protocol(ProtocolKind::fkn_default())
            .seed(100)
            .build()
            .unwrap();
        let r = s.run(10_000);
        assert!(r.resolved());
        let batch = s.montecarlo(4, 2, 10_000);
        assert_eq!(batch.len(), 4);
        // Trial 0 uses the scenario seed itself.
        assert_eq!(batch[0].resolved_at(), r.resolved_at());
    }

    #[test]
    fn trace_level_propagates() {
        let s = Scenario::builder()
            .deployment(small_deployment())
            .sinr(SinrParams::default_single_hop())
            .protocol(ProtocolKind::fkn_default())
            .trace_level(TraceLevel::Counts)
            .build()
            .unwrap();
        let r = s.run(10_000);
        assert!(!r.trace().is_empty());
    }

    #[test]
    fn error_display_and_source() {
        let e = ScenarioError::MissingChannel;
        assert!(e.to_string().contains("channel"));
        let weak = SinrParams::builder().power(1.0).build().unwrap();
        let nested = weak.admits_single_hop(&small_deployment()).unwrap_err();
        let e = ScenarioError::NotSingleHop(nested);
        assert!(e.source().is_some());
        let e = ScenarioError::InvalidFaultPlan(FaultError::RoundZero);
        assert!(e.to_string().contains("fault plan"));
        assert!(e.source().is_some());
    }

    #[test]
    fn fault_plan_is_validated_against_the_deployment() {
        use fading_sim::faults::ChurnEvent;
        let plan = FaultPlan::new().with_churn(ChurnEvent::crash(2, 99).unwrap());
        let err = Scenario::builder()
            .deployment(small_deployment()) // 16 nodes — node 99 is out of range
            .sinr(SinrParams::default_single_hop())
            .protocol(ProtocolKind::fkn_default())
            .fault_plan(plan)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::InvalidFaultPlan(FaultError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn fault_plan_propagates_to_simulations() {
        use fading_sim::faults::ChurnEvent;
        let plan = FaultPlan::new().with_churn(ChurnEvent::crash(1, 3).unwrap());
        let s = Scenario::builder()
            .deployment(small_deployment())
            .sinr(SinrParams::default_single_hop())
            .protocol(ProtocolKind::fkn_default())
            .fault_plan(plan.clone())
            .build()
            .unwrap();
        assert_eq!(s.fault_plan(), Some(&plan));
        let mut sim = s.simulation();
        assert_eq!(sim.fault_plan(), Some(&plan));
        sim.step();
        assert!(!sim.is_active(3), "scheduled crash must fire in round 1");
    }
}
