//! Minimal ASCII scatter/line plots for terminal experiment output.
//!
//! The experiment harness is terminal-first; these plots let examples and
//! the `experiments` binary *show* a scaling curve (e.g. rounds vs `log n`)
//! without any plotting dependency. Rendering is deterministic, so plots
//! are testable.

use std::fmt;

/// A named data series for an [`AsciiPlot`].
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    marker: char,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series with a display `name`, a single-char `marker`, and
    /// `(x, y)` points.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite.
    #[must_use]
    pub fn new(name: impl Into<String>, marker: char, points: Vec<(f64, f64)>) -> Self {
        for &(x, y) in &points {
            assert!(x.is_finite() && y.is_finite(), "non-finite plot point");
        }
        Series {
            name: name.into(),
            marker,
            points,
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A fixed-size character-grid plot with axes, labels, and a legend.
///
/// # Example
///
/// ```
/// use fading_cr::plot::{AsciiPlot, Series};
///
/// let measured = Series::new("measured", '*', vec![(4.0, 8.0), (6.0, 12.0), (8.0, 16.0)]);
/// let theory = Series::new("2·log2 n", '.', vec![(4.0, 8.0), (8.0, 16.0)]);
/// let plot = AsciiPlot::new("rounds vs log2(n)", 40, 12)
///     .x_label("log2(n)")
///     .y_label("rounds")
///     .series(measured)
///     .series(theory);
/// let text = plot.render();
/// assert!(text.contains("rounds vs log2(n)"));
/// assert!(text.contains('*'));
/// assert!(text.contains("legend"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl AsciiPlot {
    /// Creates a plot with the given title and grid size (columns × rows of
    /// the data area, excluding axes).
    ///
    /// # Panics
    ///
    /// Panics if `width < 8` or `height < 4` (too small to draw anything).
    #[must_use]
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 8, "plot width must be at least 8");
        assert!(height >= 4, "plot height must be at least 4");
        AsciiPlot {
            title: title.into(),
            width,
            height,
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
        }
    }

    /// Sets the x-axis label.
    #[must_use]
    pub fn x_label(mut self, label: impl Into<String>) -> Self {
        self.x_label = label.into();
        self
    }

    /// Sets the y-axis label.
    #[must_use]
    pub fn y_label(mut self, label: impl Into<String>) -> Self {
        self.y_label = label.into();
        self
    }

    /// Adds a data series (drawn in insertion order; later series overdraw
    /// earlier ones where they collide).
    #[must_use]
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut it = self.series.iter().flat_map(|s| s.points.iter().copied());
        let first = it.next()?;
        let (mut x0, mut y0, mut x1, mut y1) = (first.0, first.1, first.0, first.1);
        for (x, y) in it {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Degenerate ranges get a symmetric pad so everything still draws.
        if x0 == x1 {
            x0 -= 1.0;
            x1 += 1.0;
        }
        if y0 == y1 {
            y0 -= 1.0;
            y1 += 1.0;
        }
        Some((x0, y0, x1, y1))
    }

    /// Renders the plot as multi-line text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let Some((x0, y0, x1, y1)) = self.bounds() else {
            out.push_str("  (no data)\n");
            return out;
        };
        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy; // y grows upward
                grid[row][cx] = s.marker;
            }
        }
        // y-axis labels on the first and last grid rows.
        let y_hi = format!("{y1:.1}");
        let y_lo = format!("{y0:.1}");
        let label_w = y_hi.len().max(y_lo.len()).max(self.y_label.len());
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                y_hi.as_str()
            } else if r == self.height - 1 {
                y_lo.as_str()
            } else if r == self.height / 2 {
                self.y_label.as_str()
            } else {
                ""
            };
            out.push_str(&format!(
                "{label:>label_w$} |{}\n",
                row.iter().collect::<String>()
            ));
        }
        out.push_str(&format!("{:>label_w$} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>label_w$}  {:<w$.1}{:>rest$.1}  {}\n",
            "",
            x0,
            x1,
            self.x_label,
            w = 8.min(self.width / 2),
            rest = self.width.saturating_sub(8.min(self.width / 2)),
        ));
        if !self.series.is_empty() {
            let legend = self
                .series
                .iter()
                .map(|s| format!("{} {}", s.marker, s.name))
                .collect::<Vec<_>>()
                .join("   ");
            out.push_str(&format!("  legend: {legend}\n"));
        }
        out
    }
}

impl fmt::Display for AsciiPlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_plot() -> AsciiPlot {
        AsciiPlot::new("test", 20, 6).series(Series::new(
            "line",
            '*',
            vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)],
        ))
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let text = simple_plot().x_label("x").y_label("y").render();
        assert!(text.contains("## test"));
        assert!(text.contains("legend: * line"));
        assert!(text.contains('|'));
        assert!(text.contains('+'));
    }

    #[test]
    fn corners_are_plotted_at_extremes() {
        let text = simple_plot().render();
        let lines: Vec<&str> = text.lines().collect();
        // First grid row (index 1, after the title) holds the max point at
        // the right edge; the last grid row holds the min at the left edge.
        let first_grid = lines[1];
        let last_grid = lines[6];
        assert!(first_grid.trim_end().ends_with('*'), "{text}");
        let data_part = last_grid.split('|').nth(1).expect("grid row");
        assert!(data_part.starts_with('*'), "{text}");
    }

    #[test]
    fn empty_plot_says_no_data() {
        let p = AsciiPlot::new("empty", 20, 6);
        assert!(p.render().contains("(no data)"));
    }

    #[test]
    fn degenerate_ranges_still_render() {
        let p = AsciiPlot::new("flat", 20, 6).series(Series::new(
            "flat",
            'o',
            vec![(1.0, 5.0), (2.0, 5.0)],
        ));
        let text = p.render();
        assert!(text.contains('o'));
    }

    #[test]
    fn later_series_overdraw() {
        let p = AsciiPlot::new("overlap", 20, 6)
            .series(Series::new("a", 'a', vec![(0.0, 0.0), (1.0, 1.0)]))
            .series(Series::new("b", 'b', vec![(0.0, 0.0)]));
        let text = p.render();
        // The shared origin cell shows 'b'.
        let last_grid = text.lines().nth(6).expect("grid row");
        let data = last_grid.split('|').nth(1).expect("grid");
        assert!(data.starts_with('b'), "{text}");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_points() {
        let _ = Series::new("bad", 'x', vec![(f64::NAN, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn rejects_tiny_plots() {
        let _ = AsciiPlot::new("tiny", 2, 2);
    }

    #[test]
    fn display_matches_render() {
        let p = simple_plot();
        assert_eq!(p.to_string(), p.render());
    }
}
