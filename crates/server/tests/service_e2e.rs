//! End-to-end service drill against the real `fading-server` binary:
//! boot it with socket + metrics listeners, submit jobs over the JSONL
//! socket, poll status to completion, then scrape the Prometheus
//! endpoint over real HTTP and require the body to parse with the
//! workspace's own paired parser — the same check CI runs.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use fading_cr::jobspec::JobSpec;
use fading_cr::sim::obs::export::prometheus::{parse_prometheus, PromSample};
use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};

const BIN: &str = env!("CARGO_BIN_EXE_fading-server");

struct Harness {
    child: Child,
    socket_addr: String,
    metrics_addr: String,
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn boot(root: &std::path::Path) -> Harness {
    let mut child = Command::new(BIN)
        .args([
            "--queue",
            root.to_str().expect("utf-8 path"),
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fading-server");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let mut socket_addr = String::new();
    let mut metrics_addr = String::new();
    for line in lines.by_ref() {
        let line = line.expect("read server stdout");
        if let Some(addr) = line.strip_prefix("LISTEN ") {
            socket_addr = addr.to_string();
        } else if let Some(addr) = line.strip_prefix("METRICS ") {
            metrics_addr = addr.to_string();
        } else if line == "READY" {
            break;
        }
    }
    assert!(!socket_addr.is_empty(), "server must announce LISTEN");
    assert!(!metrics_addr.is_empty(), "server must announce METRICS");
    Harness {
        child,
        socket_addr,
        metrics_addr,
    }
}

/// Sends one JSONL request and returns the parsed response object.
fn request(addr: &str, line: &str) -> JsonValue {
    let mut stream = TcpStream::connect(addr).expect("connect control socket");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    parse_json(response.trim()).expect("response must be JSON")
}

fn http_get(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream
        .write_all(format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .expect("send GET");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("HTTP response must have a blank line");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "bad status: {head}");
    body.to_string()
}

fn sample(samples: &[PromSample], name: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("missing sample {name}"))
        .value
}

#[test]
fn socket_submissions_complete_and_scrape_parses() {
    let root = std::env::temp_dir().join(format!("fading-service-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let harness = boot(&root);

    let pong = request(&harness.socket_addr, "{\"cmd\":\"ping\"}");
    assert_eq!(pong.get("ok").and_then(JsonValue::as_bool), Some(true));

    // Submit a small mix over the socket: three jobs, one with telemetry.
    let mut ids = Vec::new();
    for i in 0..3 {
        let mut spec = JobSpec::example(&format!("e2e-{i}"));
        spec.n = 32 + 16 * i;
        spec.trials = 2;
        spec.telemetry = i == 0;
        let resp = request(
            &harness.socket_addr,
            &format!("{{\"cmd\":\"submit\",\"job\":{}}}", spec.to_json()),
        );
        assert_eq!(
            resp.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "submit {} must be accepted",
            spec.id
        );
        ids.push(spec.id);
    }
    // A bad submission is rejected with an error, not a hang.
    let bad = request(
        &harness.socket_addr,
        "{\"cmd\":\"submit\",\"job\":{\"id\":\"bad\",\"n\":0}}",
    );
    assert_eq!(bad.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert!(bad.get("error").and_then(JsonValue::as_str).is_some());

    // Poll status until every job reports done.
    let deadline = Instant::now() + Duration::from_secs(120);
    for id in &ids {
        loop {
            let resp = request(
                &harness.socket_addr,
                &format!("{{\"cmd\":\"status\",\"id\":\"{id}\"}}"),
            );
            match resp.get("state").and_then(JsonValue::as_str) {
                Some("done") => break,
                Some("failed") => panic!("job {id} failed"),
                _ => {
                    assert!(Instant::now() < deadline, "job {id} never completed");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
    let stats = request(&harness.socket_addr, "{\"cmd\":\"stats\"}");
    assert_eq!(stats.get("completed").and_then(JsonValue::as_f64), Some(3.0));

    // The telemetry job streamed per-trial event files.
    let events_dir = root.join("jobs").join("e2e-0").join("events");
    assert!(events_dir.join("1.jsonl").exists(), "telemetry stream missing");

    // Scrape over real HTTP; the body must parse with the paired parser.
    let body = http_get(&harness.metrics_addr);
    let samples = parse_prometheus(&body).expect("scrape must parse");
    assert_eq!(sample(&samples, "fading_jobs_completed_total"), 3.0);
    assert_eq!(sample(&samples, "fading_jobs_failed_total"), 0.0);
    assert!(sample(&samples, "fading_rounds_total") > 0.0);
    assert_eq!(sample(&samples, "fading_job_latency_ms_count"), 3.0);

    drop(harness);
    std::fs::remove_dir_all(&root).ok();
}
