//! The service crash drill: SIGKILL a `fading-server` mid-fleet, restart
//! it over the same queue, and require every job to complete exactly once
//! with `trials.jsonl` byte-identical to an uninterrupted reference run.
//!
//! The victim gets one deliberately long job (a round-capped n=512 fleet)
//! ahead of a handful of small jobs, so the kill reliably lands inside
//! the long job's trial fleet — the restart must then resume that job
//! from its manifest (re-running only the unfinished trials) and still
//! produce the same bytes, because trial results are recorded seed-
//! ordered from deterministic per-seed RNG streams.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use fading_cr::jobspec::JobSpec;
use fading_server::JobQueue;

const BIN: &str = env!("CARGO_BIN_EXE_fading-server");

fn drill_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    // Claimed first (lexicographic): the long fleet the kill lands in.
    let mut big = JobSpec::example("a-long");
    big.n = 768;
    big.trials = 48;
    big.max_rounds = 60;
    big.deploy_seed = 11;
    big.seed_base = 100;
    specs.push(big);
    for i in 0..4 {
        let mut small = JobSpec::example(&format!("b-small-{i}"));
        small.n = 48 + 16 * i as usize;
        small.trials = 2;
        small.deploy_seed = 20 + i;
        small.seed_base = 200 + 10 * i;
        specs.push(small);
    }
    specs
}

fn submit_all(root: &Path, specs: &[JobSpec]) -> JobQueue {
    let queue = JobQueue::open(root).expect("open queue");
    for spec in specs {
        queue.submit(spec).expect("submit spec");
    }
    queue
}

fn run_drain(root: &Path) {
    let status = Command::new(BIN)
        .args(["--queue", root.to_str().expect("utf-8 path"), "--drain"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("spawn fading-server");
    assert!(status.success(), "drain run failed: {status:?}");
}

fn read_trials(queue: &JobQueue, id: &str) -> Vec<u8> {
    std::fs::read(queue.job_dir(id).join("trials.jsonl"))
        .unwrap_or_else(|e| panic!("trials.jsonl for {id}: {e}"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("fading-crash-drill")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn sigkill_mid_fleet_then_restart_completes_every_job_byte_identically() {
    let specs = drill_specs();

    // Reference: the same queue contents, drained uninterrupted.
    let ref_root = scratch("reference");
    let ref_queue = submit_all(&ref_root, &specs);
    run_drain(&ref_root);
    for spec in &specs {
        assert!(ref_queue.is_done(&spec.id), "reference {} must finish", spec.id);
    }

    // Victim: same submissions; SIGKILL the server mid-fleet.
    let victim_root = scratch("victim");
    let victim_queue = submit_all(&victim_root, &specs);
    let mut child = Command::new(BIN)
        .args(["--queue", victim_root.to_str().expect("utf-8 path"), "--drain"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    // Let it claim the long job and finish some — not all — of its trials.
    let manifest = victim_queue.job_dir("a-long").join("manifest.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let lines = std::fs::read_to_string(&manifest)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 2 {
            break;
        }
        assert!(
            child.try_wait().expect("poll victim").is_none(),
            "victim drained before the kill — lengthen the long job"
        );
        assert!(Instant::now() < deadline, "victim never started the long job");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL the victim");
    child.wait().expect("reap the victim");
    assert!(
        !victim_queue.is_done("a-long"),
        "the kill must land before the long job completes"
    );
    let stranded = victim_queue.stranded().expect("list running/");
    assert!(
        !stranded.is_empty(),
        "the killed server must leave its claimed spec in running/"
    );
    let done_before = specs
        .iter()
        .filter(|s| victim_queue.is_done(&s.id))
        .count();

    // Restart over the same queue; stranded specs re-enqueue and resume.
    run_drain(&victim_root);

    for spec in &specs {
        assert!(
            victim_queue.is_done(&spec.id),
            "{} must complete after restart",
            spec.id
        );
        let trials = read_trials(&victim_queue, &spec.id);
        assert_eq!(
            trials,
            read_trials(&ref_queue, &spec.id),
            "{}: resumed trials.jsonl must be byte-identical to the reference",
            spec.id
        );
        // Exactly once: every seed appears exactly one time.
        let text = String::from_utf8(trials).expect("utf-8 trials.jsonl");
        assert_eq!(text.lines().count(), spec.trials, "{}", spec.id);
        for i in 0..spec.trials {
            let seed = spec.seed_base + i as u64;
            let needle = format!("\"seed\":{seed},");
            assert_eq!(
                text.matches(&needle).count(),
                1,
                "{}: seed {seed} must appear exactly once",
                spec.id
            );
        }
    }
    // The restart must have *resumed* the long job, not re-run it.
    let result = std::fs::read_to_string(victim_queue.job_dir("a-long").join("result.json"))
        .expect("result.json for a-long");
    assert!(
        !result.contains("\"resumed\":0,"),
        "the long job must report resumed trials, got: {result}"
    );
    // And nothing ran twice at the job level either.
    let done_after = specs
        .iter()
        .filter(|s| victim_queue.is_done(&s.id))
        .count();
    assert_eq!(done_after, specs.len());
    assert!(done_before < done_after, "restart must finish the remainder");

    std::fs::remove_dir_all(scratch("reference").parent().expect("parent")).ok();
}
