//! End-to-end watch drill against the real `fading-server` binary: boot
//! it with a control socket (which auto-starts the monitor), attach a
//! `watch` connection, submit jobs over a second connection, and require
//! the stream to deliver job lifecycle events, per-job seed-ordered
//! trial progress, and periodic time-series frames — then check the
//! thick `stats` reply (per-state depths + latency quantiles) once the
//! jobs retire.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use fading_cr::jobspec::JobSpec;
use fading_cr::sim::obs::ProgressEvent;
use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};

const BIN: &str = env!("CARGO_BIN_EXE_fading-server");

struct Harness {
    child: Child,
    socket_addr: String,
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn boot(root: &std::path::Path) -> Harness {
    let mut child = Command::new(BIN)
        .args([
            "--queue",
            root.to_str().expect("utf-8 path"),
            "--addr",
            "127.0.0.1:0",
            "--monitor-ms",
            "50",
            "--slo-queue-max",
            "0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fading-server");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let mut socket_addr = String::new();
    for line in lines.by_ref() {
        let line = line.expect("read server stdout");
        if let Some(addr) = line.strip_prefix("LISTEN ") {
            socket_addr = addr.to_string();
        } else if line == "READY" {
            break;
        }
    }
    assert!(!socket_addr.is_empty(), "server must announce LISTEN");
    Harness { child, socket_addr }
}

fn request(addr: &str, line: &str) -> JsonValue {
    let mut stream = TcpStream::connect(addr).expect("connect control socket");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    parse_json(response.trim()).expect("response must be JSON")
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("fading-live-watch")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn watch_streams_progress_frames_and_alerts_end_to_end() {
    let root = scratch("stream");
    std::fs::create_dir_all(&root).expect("scratch dir");
    let harness = boot(&root);
    let addr = harness.socket_addr.clone();

    // Attach the watcher BEFORE submitting so it sees every event.
    let mut watch = TcpStream::connect(&addr).expect("connect watch socket");
    watch
        .write_all(b"{\"cmd\":\"watch\"}\n")
        .expect("send watch");
    watch
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    let mut watch_reader = BufReader::new(watch.try_clone().expect("clone watch stream"));
    let mut ack = String::new();
    watch_reader.read_line(&mut ack).expect("read watch ack");
    let ack = parse_json(ack.trim()).expect("ack must be JSON");
    assert_eq!(ack.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        ack.get("streaming").and_then(JsonValue::as_bool),
        Some(true)
    );

    // One long-ish job first (keeps the later ones queued, so the
    // queue-depth SLO rule armed at 0 must fire), then two quick ones.
    let mut long = JobSpec::example("a-long");
    long.n = 512;
    long.trials = 24;
    long.max_rounds = 60;
    long.seed_base = 40;
    let mut quick1 = JobSpec::example("b-quick");
    quick1.trials = 3;
    quick1.seed_base = 700;
    let mut quick2 = JobSpec::example("c-quick");
    quick2.trials = 2;
    quick2.deploy_seed = 9;
    quick2.seed_base = 800;
    let specs = [long, quick1, quick2];
    for spec in &specs {
        let reply = request(&addr, &format!("{{\"cmd\":\"submit\",\"job\":{}}}", spec.to_json()));
        assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    // Pump the stream until every job reported done AND at least one
    // frame and one alert came through (the monitor keeps ticking after
    // the jobs retire, so frames keep flowing until the deadline).
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut lines: Vec<String> = Vec::new();
    let mut done_jobs = 0;
    let (mut saw_frame, mut saw_alert) = (false, false);
    while done_jobs < specs.len() || !saw_frame || !saw_alert {
        assert!(
            Instant::now() < deadline,
            "stream incomplete (done={done_jobs} frame={saw_frame} alert={saw_alert}); saw {lines:#?}"
        );
        let mut line = String::new();
        match watch_reader.read_line(&mut line) {
            Ok(0) => panic!("server closed the watch stream early"),
            Ok(_) => {
                let line = line.trim().to_string();
                if line.is_empty() {
                    continue; // keepalive
                }
                if line.contains("\"event\":\"job_done\"") {
                    done_jobs += 1;
                }
                saw_frame |= line.contains("\"event\":\"frame\"");
                saw_alert |=
                    line.contains("\"event\":\"alert\"") && line.contains("queue_depth");
                lines.push(line);
            }
            Err(e) => panic!("watch stream read failed: {e}"),
        }
    }

    // Every line is valid JSON with an "event".
    for line in &lines {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad stream line ({e}): {line}"));
        assert!(
            v.get("event").and_then(JsonValue::as_str).is_some(),
            "stream line without event: {line}"
        );
    }

    // Frames arrived (the monitor runs at 50 ms).
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"frame\"")),
        "no time-series frames in the stream"
    );
    // The queue-depth rule (max 0, two jobs queued behind the long one)
    // fired into the same stream.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"event\":\"alert\"") && l.contains("queue_depth")),
        "no queue_depth alert in the stream"
    );

    // Per job: a job_started, then trial events in strict seed order
    // (started → terminal for each seed, single trial thread), then the
    // job_done that ended the pump loop.
    for spec in &specs {
        let tag = format!("\"job\":\"{}\"", spec.id);
        let job_lines: Vec<&String> = lines.iter().filter(|l| l.contains(&tag)).collect();
        assert!(
            job_lines[0].contains("\"event\":\"job_started\""),
            "{}: first line {job_lines:?}",
            spec.id
        );
        let events: Vec<ProgressEvent> = job_lines
            .iter()
            .filter(|l| l.contains("\"event\":\"trial_"))
            .map(|l| ProgressEvent::from_json(l).expect("trial event parses"))
            .collect();
        assert_eq!(events.len(), 2 * spec.trials as usize, "{}", spec.id);
        for (i, pair) in events.chunks(2).enumerate() {
            let seed = spec.seed_base + i as u64;
            assert!(
                matches!(pair[0], ProgressEvent::TrialStarted { seed: s } if s == seed),
                "{}: {pair:?}",
                spec.id
            );
            assert!(
                pair[1].is_terminal() && pair[1].seed() == seed,
                "{}: {pair:?}",
                spec.id
            );
        }
    }

    // Thick stats: per-state depths and latency quantiles. The job_done
    // event is published just before the spec retires into done/, so
    // give the directory rename a moment to land.
    let stats_deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = request(&addr, "{\"cmd\":\"stats\"}");
        assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
        let done = stats
            .get("states")
            .and_then(|s| s.get("done"))
            .and_then(JsonValue::as_f64);
        if done == Some(specs.len() as f64) {
            break stats;
        }
        assert!(
            Instant::now() < stats_deadline,
            "jobs never all retired into done/: {done:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let states = stats.get("states").expect("stats must carry states");
    assert_eq!(states.get("queued").and_then(JsonValue::as_f64), Some(0.0));
    let latency = stats.get("latency_ms").expect("stats must carry latency_ms");
    let p50 = latency.get("p50").and_then(JsonValue::as_f64).expect("p50");
    let p99 = latency.get("p99").and_then(JsonValue::as_f64).expect("p99");
    assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");

    drop(harness);
    std::fs::remove_dir_all(&root).ok();
}
