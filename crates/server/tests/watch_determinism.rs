//! The watcher-determinism guard: attaching live subscribers — including
//! a deliberately stalled one whose bounded queue overflows — must leave
//! every job artifact byte-identical to an unwatched run. This is the
//! teeth behind the hub's fire-and-forget publishing contract: a slow
//! consumer loses lines, the simulation loses nothing.

use std::path::{Path, PathBuf};

use fading_cr::jobspec::JobSpec;
use fading_server::{ExitPolicy, Server, ServerConfig, Subscription};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("fading-watch-determinism")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn specs() -> Vec<JobSpec> {
    let mut a = JobSpec::example("wd-a");
    a.trials = 8;
    a.seed_base = 300;
    let mut b = JobSpec::example("wd-b");
    b.n = 96;
    b.trials = 5;
    b.deploy_seed = 7;
    b.seed_base = 900;
    vec![a, b]
}

fn artifacts(root: &Path) -> Vec<(String, Vec<u8>)> {
    let queue = fading_server::JobQueue::open(root).expect("open queue");
    let mut out = Vec::new();
    for spec in specs() {
        for file in ["trials.jsonl", "result.json", "manifest.jsonl"] {
            let path = queue.job_dir(&spec.id).join(file);
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            out.push((format!("{}/{file}", spec.id), bytes));
        }
    }
    out
}

fn drain(root: &Path, watched: bool) -> (u64, usize) {
    let server = Server::open(root, ServerConfig::default()).expect("open server");
    let subs = watched.then(|| {
        // A healthy watcher with room for everything, and a stalled one
        // whose two-line queue must overflow within the first trial.
        let healthy = server.hub().subscribe(Subscription::watch_all());
        let stalled = server.hub().subscribe(Subscription {
            job: None,
            frames: true,
            capacity: 2,
        });
        (healthy, stalled)
    });
    for spec in specs() {
        server.queue().submit(&spec).expect("submit");
    }
    server.run(ExitPolicy::drain());
    let (dropped, healthy_lines) = subs.map_or((0, 0), |(healthy, stalled)| {
        (stalled.dropped(), healthy.drain().len())
    });
    (dropped, healthy_lines)
}

#[test]
fn artifacts_are_byte_identical_with_watchers_attached() {
    let plain_root = scratch("plain");
    let watched_root = scratch("watched");

    let (no_drops, none) = drain(&plain_root, false);
    assert_eq!((no_drops, none), (0, 0));
    let (dropped, healthy_lines) = drain(&watched_root, true);

    // The stalled subscriber really did overflow, and the healthy one
    // really did stream: this test must not pass vacuously.
    assert!(
        dropped > 0,
        "stalled subscriber must drop lines (got {dropped})"
    );
    // 2 jobs × (job_started + job_done) + per-trial started/finished.
    assert!(
        healthy_lines as u64 >= 4 + 2 * (8 + 5),
        "healthy subscriber saw only {healthy_lines} lines"
    );

    let plain = artifacts(&plain_root);
    let watched = artifacts(&watched_root);
    assert_eq!(plain.len(), watched.len());
    for ((name_p, bytes_p), (name_w, bytes_w)) in plain.iter().zip(watched.iter()) {
        assert_eq!(name_p, name_w);
        assert_eq!(
            bytes_p, bytes_w,
            "{name_p} must be byte-identical with watchers attached"
        );
    }

    std::fs::remove_dir_all(&plain_root).ok();
    std::fs::remove_dir_all(&watched_root).ok();
}
