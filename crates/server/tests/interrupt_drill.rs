//! The double-interrupt drill: a first SIGINT asks `fading-server` for a
//! graceful wind-down (finish the flush, exit 130); a second SIGINT
//! during a slow flush must force an immediate exit — also 130 — instead
//! of hanging until the flush completes.
//!
//! Drives the binary's `--selftest-interrupt` harness, which installs
//! the real handler, announces `READY`, and on the first signal starts a
//! deliberately slow (2 s) flush between `FLUSH-BEGIN` and `FLUSH-END`
//! markers — a window wide enough to land the second signal and observe
//! the forced fast exit (no `FLUSH-END`).

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_fading-server");

fn send_sigint(child: &Child) {
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("spawn kill(1)");
    assert!(status.success(), "kill -INT failed: {status:?}");
}

#[test]
fn second_sigint_during_flush_forces_immediate_exit_130() {
    let mut child = Command::new(BIN)
        .arg("--selftest-interrupt")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn selftest harness");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let mut next_line = || lines.next().expect("stdout closed early").expect("read stdout");

    assert_eq!(next_line(), "READY");
    send_sigint(&child);
    assert_eq!(next_line(), "FLUSH-BEGIN");

    // Mid-flush: the second signal must cut the 2 s flush short.
    let forced_at = Instant::now();
    send_sigint(&child);
    let status = child.wait().expect("reap harness");
    let elapsed = forced_at.elapsed();

    assert_eq!(
        status.code(),
        Some(130),
        "forced exit must still report the interrupt status"
    );
    assert!(
        elapsed < Duration::from_millis(1500),
        "second SIGINT must force an immediate exit, waited {elapsed:?}"
    );
    let rest: Vec<String> = lines.map(|l| l.expect("read stdout")).collect();
    assert!(
        !rest.iter().any(|l| l == "FLUSH-END"),
        "the flush must have been cut short, got {rest:?}"
    );
}

#[test]
fn single_sigint_finishes_the_flush_and_exits_130() {
    let mut child = Command::new(BIN)
        .arg("--selftest-interrupt")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn selftest harness");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let mut next_line = || lines.next().expect("stdout closed early").expect("read stdout");

    assert_eq!(next_line(), "READY");
    send_sigint(&child);
    assert_eq!(next_line(), "FLUSH-BEGIN");
    assert_eq!(next_line(), "FLUSH-END", "an uncontested flush must complete");
    let status = child.wait().expect("reap harness");
    assert_eq!(status.code(), Some(130));
}
