//! Fuzz coverage for the control-socket request parser: whatever bytes a
//! client throws at [`parse_request`], the server must answer with a
//! clean [`error_response`] — never panic, never hang. Strategies cover
//! raw garbage, truncated valid requests, escape-heavy strings, and
//! pathological nesting (which the JSONL parser's depth guard turns into
//! an error instead of a stack overflow).

use fading_cr::jobspec::JobSpec;
use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};
use fading_server::protocol::{error_response, parse_request};
use proptest::prelude::*;

/// The contract under test: parsing either succeeds or yields an error
/// message that survives the trip back to the client as valid JSON.
fn assert_parse_is_total(line: &str) {
    if let Err(msg) = parse_request(line) {
        assert!(!msg.is_empty(), "error for {line:?} must carry a message");
        let rendered = error_response(&msg);
        let v = parse_json(&rendered)
            .unwrap_or_else(|e| panic!("error_response must be JSON ({e}): {rendered}"));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(JsonValue::as_str), Some(msg.as_str()));
    }
}

/// Valid request lines the mutating strategies start from.
fn valid_lines() -> Vec<String> {
    vec![
        "{\"cmd\":\"ping\"}".to_string(),
        "{\"cmd\":\"stats\"}".to_string(),
        "{\"cmd\":\"shutdown\"}".to_string(),
        "{\"cmd\":\"status\",\"id\":\"job-17\"}".to_string(),
        "{\"cmd\":\"watch\"}".to_string(),
        "{\"cmd\":\"watch\",\"id\":\"job-17\"}".to_string(),
        "{\"cmd\":\"subscribe\"}".to_string(),
        format!(
            "{{\"cmd\":\"submit\",\"job\":{}}}",
            JobSpec::example("fuzz-base").to_json()
        ),
    ]
}

/// Bytes → lossy UTF-8: arbitrary garbage including interior NULs,
/// truncated multi-byte sequences (replaced), and control characters.
fn garbage_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255, 0..96)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// A valid line cut off at an arbitrary byte offset (clamped to a char
/// boundary): simulates a client dying mid-write.
fn truncated_strategy() -> impl Strategy<Value = String> {
    (0usize..valid_lines().len(), 0usize..200).prop_map(|(which, cut)| {
        let line = valid_lines().swap_remove(which);
        let mut cut = cut.min(line.len());
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        line[..cut].to_string()
    })
}

/// Escape-heavy id payloads: backslash runs, quote storms, half-finished
/// `\u` sequences, embedded newlines-as-escapes.
fn escape_heavy_strategy() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("\\\\".to_string()),
        Just("\\\"".to_string()),
        Just("\\u00".to_string()),
        Just("\\u0022".to_string()),
        Just("\\n\\r\\t".to_string()),
        Just("\\".to_string()),
        Just("\"".to_string()),
        Just("}".to_string()),
        Just("{".to_string()),
        Just("a".to_string()),
    ];
    prop::collection::vec(fragment, 0..24).prop_map(|frags| {
        format!("{{\"cmd\":\"status\",\"id\":\"{}\"}}", frags.concat())
    })
}

/// Deep nesting in arbitrary positions: the depth guard must reject
/// these cleanly instead of blowing the stack.
fn nesting_strategy() -> impl Strategy<Value = String> {
    (1usize..4000, 0usize..2).prop_map(|(depth, kind)| match kind {
        0 => "[".repeat(depth),
        _ => "{\"a\":".repeat(depth),
    })
}

/// A valid line with one byte overwritten: near-miss corruption.
fn bitflip_strategy() -> impl Strategy<Value = String> {
    (0usize..valid_lines().len(), 0usize..200, 0u8..=127).prop_map(|(which, pos, byte)| {
        let line = valid_lines().swap_remove(which);
        let mut bytes = line.into_bytes();
        if !bytes.is_empty() {
            let pos = pos % bytes.len();
            bytes[pos] = byte;
        }
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn garbage_never_panics(line in garbage_strategy()) {
        assert_parse_is_total(&line);
    }

    #[test]
    fn truncated_requests_never_panic(line in truncated_strategy()) {
        assert_parse_is_total(&line);
    }

    #[test]
    fn escape_heavy_requests_never_panic(line in escape_heavy_strategy()) {
        assert_parse_is_total(&line);
    }

    #[test]
    fn deep_nesting_is_rejected_not_fatal(line in nesting_strategy()) {
        // Must be an error (it is not a complete request), and must not
        // overflow the stack getting there.
        prop_assert!(parse_request(&line).is_err());
        assert_parse_is_total(&line);
    }

    #[test]
    fn single_byte_corruption_never_panics(line in bitflip_strategy()) {
        assert_parse_is_total(&line);
    }
}

#[test]
fn pathological_nesting_errors_cleanly_at_scale() {
    // Far beyond any stack's recursion budget; the depth guard must cut
    // this off with a parse error.
    for line in [
        "[".repeat(200_000),
        "{\"a\":".repeat(100_000),
        format!("{{\"cmd\":{}\"ping\"{}}}", "[".repeat(50_000), "]".repeat(50_000)),
    ] {
        assert!(parse_request(&line).is_err());
        assert_parse_is_total(&line);
    }
}

#[test]
fn valid_lines_still_parse() {
    // The fuzz harness's seed corpus must itself be accepted — guards
    // against the strategies silently drifting from the protocol.
    for line in valid_lines() {
        assert!(parse_request(&line).is_ok(), "{line}");
    }
}
