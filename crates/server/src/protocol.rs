//! The local-socket wire protocol: one JSON object per line, both ways.
//!
//! Requests:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"submit","job":{...JobSpec...}}
//! {"cmd":"status","id":"job-17"}
//! {"cmd":"stats"}
//! {"cmd":"watch"}                      // progress + frames, all jobs
//! {"cmd":"watch","id":"job-17"}        // one job's progress + frames
//! {"cmd":"subscribe"}                  // progress only, no frames
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; failures add `"error"`. `watch` and
//! `subscribe` switch the connection into streaming mode: after the ack
//! the server pushes one event object per line (`trial_*`,
//! `job_started`/`job_done`/`job_failed`, `frame`, `alert`, `dropped`)
//! until the client hangs up. The framing is
//! hand-rolled on the same [`jsonl`](fading_cr::sim::telemetry::jsonl)
//! parser the telemetry layer uses — no new dependencies, and the same
//! dialect on both ends.

use std::fmt::Write as _;

use fading_cr::jobspec::{JobSpec, JobSpecError};
use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Submit one job.
    Submit(Box<JobSpec>),
    /// Query one job's lifecycle state.
    Status {
        /// The job id to look up.
        id: String,
    },
    /// Service-level tallies (completed/failed/in-flight/queue depth).
    Stats,
    /// Stream progress events and periodic time-series frames until the
    /// connection closes.
    Watch {
        /// Restrict progress events to this job (`None` = all jobs).
        id: Option<String>,
    },
    /// Stream progress events only (no frames).
    Subscribe {
        /// Restrict progress events to this job (`None` = all jobs).
        id: Option<String>,
    },
    /// Ask the server to stop accepting work and exit when drained.
    Shutdown,
}

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet claimed.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Completed successfully.
    Done,
    /// Rejected or errored.
    Failed,
    /// No record of this id.
    Unknown,
}

impl JobState {
    /// The stable wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Unknown => "unknown",
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message (sent back verbatim in the error response).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| format!("malformed request: {e}"))?;
    let cmd = v
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing \"cmd\"".to_string())?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let job = v
                .get("job")
                .ok_or_else(|| "submit requires a \"job\" object".to_string())?;
            let spec = JobSpec::from_value(job).map_err(|e: JobSpecError| e.to_string())?;
            Ok(Request::Submit(Box::new(spec)))
        }
        "status" => {
            let id = v
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "status requires an \"id\"".to_string())?;
            Ok(Request::Status { id: id.to_string() })
        }
        "stats" => Ok(Request::Stats),
        "watch" | "subscribe" => {
            // `id` is optional, but when present it must be a string.
            let id = match v.get("id") {
                None => None,
                Some(j) => Some(
                    j.as_str()
                        .ok_or_else(|| format!("{cmd} \"id\" must be a string"))?
                        .to_string(),
                ),
            };
            if cmd == "watch" {
                Ok(Request::Watch { id })
            } else {
                Ok(Request::Subscribe { id })
            }
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// `{"ok":false,"error":...}` with the message escaped.
#[must_use]
pub fn error_response(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(msg))
}

/// `{"ok":true}` plus any extra pre-rendered `"key":value` pairs.
#[must_use]
pub fn ok_response(extra: &[(&str, String)]) -> String {
    let mut s = String::from("{\"ok\":true");
    for (k, v) in extra {
        let _ = write!(s, ",\"{k}\":{v}");
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert!(matches!(parse_request("{\"cmd\":\"ping\"}"), Ok(Request::Ping)));
        assert!(matches!(parse_request("{\"cmd\":\"stats\"}"), Ok(Request::Stats)));
        assert!(matches!(
            parse_request("{\"cmd\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        ));
        let status = parse_request("{\"cmd\":\"status\",\"id\":\"j1\"}").unwrap();
        match status {
            Request::Status { id } => assert_eq!(id, "j1"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_request("{\"cmd\":\"watch\"}"),
            Ok(Request::Watch { id: None })
        ));
        match parse_request("{\"cmd\":\"watch\",\"id\":\"j2\"}").unwrap() {
            Request::Watch { id } => assert_eq!(id.as_deref(), Some("j2")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_request("{\"cmd\":\"subscribe\"}"),
            Ok(Request::Subscribe { id: None })
        ));
        assert!(parse_request("{\"cmd\":\"watch\",\"id\":7}").is_err());
        let spec = JobSpec::example("sock-1");
        let line = format!("{{\"cmd\":\"submit\",\"job\":{}}}", spec.to_json());
        match parse_request(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(*parsed, spec),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_with_messages() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request("{\"cmd\":\"submit\"}").is_err());
        assert!(parse_request("{\"cmd\":\"submit\",\"job\":{\"id\":\"\"}}").is_err());
    }

    #[test]
    fn responses_are_parseable_json() {
        use fading_cr::sim::telemetry::jsonl::parse_json;
        let err = error_response("bad \"quoted\" thing\nline2");
        let v = parse_json(&err).unwrap();
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(JsonValue::as_str),
            Some("bad \"quoted\" thing\nline2")
        );
        let ok = ok_response(&[("id", "\"j1\"".to_string()), ("depth", "3".to_string())]);
        let v = parse_json(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("depth").and_then(JsonValue::as_f64), Some(3.0));
    }
}
