//! The `fading-top` dashboard: a line-at-a-time model of a watch stream
//! and an ANSI terminal renderer.
//!
//! The binary (`src/bin/fading_top.rs`) connects to a running
//! fading-server's control socket, sends `{"cmd":"watch"}`, and feeds
//! every streamed line into a [`Dashboard`] via
//! [`Dashboard::apply_line`]; each refresh tick it prints
//! [`Dashboard::render`] over the previous screen. The split keeps all
//! the parsing/layout logic in the library where unit tests can drive
//! it with canned event lines — the binary is a thin socket loop.
//!
//! Everything renders from the wire events alone (`job_started`,
//! `trial_*`, `frame`, `alert`, `dropped`, `job_done`, `job_failed`),
//! so the same model works against a live server, a replayed JSONL
//! capture, or the `--demo` generator.

// Pure display math: truncating casts and format!-into-String are fine
// here and keep the layout code readable.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::format_push_string
)]

use std::collections::BTreeMap;
use std::collections::VecDeque;

use fading_cr::sim::obs::timeseries::{frame_from_json, TsFrame};
use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};

/// How many recent frames the sparklines look back over.
const FRAME_HISTORY: usize = 32;
/// How many recent alerts the dashboard retains.
const ALERT_HISTORY: usize = 5;

/// Per-job progress accumulated from trial events.
#[derive(Debug, Default, Clone)]
pub struct JobView {
    /// Total trials the job announced at start (0 until `job_started`).
    pub trials_total: u64,
    /// Trials finished (resolved or not).
    pub finished: u64,
    /// Same-seed retries observed.
    pub retried: u64,
    /// Watchdog timeouts observed.
    pub timed_out: u64,
    /// Poisoned (panicked-out) trials observed.
    pub poisoned: u64,
    /// Sum of rounds over finished trials.
    pub rounds: u64,
    /// Seed of the most recent event, for the activity column.
    pub last_seed: u64,
    /// Terminal state, once a `job_done` / `job_failed` arrives.
    pub state: JobRunState,
}

/// Lifecycle of a job as seen over the stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum JobRunState {
    /// Trials are still arriving.
    #[default]
    Running,
    /// `job_done` arrived.
    Done,
    /// `job_failed` arrived.
    Failed,
}

impl JobView {
    fn terminal(&self) -> u64 {
        self.finished + self.timed_out + self.poisoned
    }
}

/// The dashboard model: feed wire lines in, render screens out.
#[derive(Debug, Default)]
pub struct Dashboard {
    jobs: BTreeMap<String, JobView>,
    frames: VecDeque<TsFrame>,
    alerts: VecDeque<String>,
    /// Total lines the server reported dropping for this subscriber.
    pub dropped: u64,
    /// Lines that failed to parse (kept visible so a protocol skew is
    /// noticed rather than silently ignored).
    pub unparsed: u64,
    t_ms: u64,
}

impl Dashboard {
    /// An empty dashboard.
    #[must_use]
    pub fn new() -> Self {
        Dashboard::default()
    }

    /// Jobs seen so far, in id order.
    #[must_use]
    pub fn jobs(&self) -> &BTreeMap<String, JobView> {
        &self.jobs
    }

    /// The newest time-series frame, if any arrived.
    #[must_use]
    pub fn latest_frame(&self) -> Option<&TsFrame> {
        self.frames.back()
    }

    /// Ingests one stream line, updating the model. Unknown events and
    /// malformed lines bump [`Dashboard::unparsed`] instead of erroring:
    /// a dashboard should degrade, not die, on protocol skew.
    pub fn apply_line(&mut self, line: &str) {
        let Ok(v) = parse_json(line) else {
            self.unparsed += 1;
            return;
        };
        let Some(event) = v.get("event").and_then(JsonValue::as_str) else {
            self.unparsed += 1;
            return;
        };
        let num = |key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        if let Some(t) = v.get("t_ms").and_then(JsonValue::as_f64) {
            self.t_ms = self.t_ms.max(t as u64);
        }
        match event {
            "frame" => {
                if let Ok(frame) = frame_from_json(line) {
                    self.t_ms = self.t_ms.max(frame.t_ms);
                    self.frames.push_back(frame);
                    while self.frames.len() > FRAME_HISTORY {
                        self.frames.pop_front();
                    }
                } else {
                    self.unparsed += 1;
                }
            }
            "alert" => {
                let rule = v.get("rule").and_then(JsonValue::as_str).unwrap_or("?");
                let value = v.get("value").and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
                let threshold = v
                    .get("threshold")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(f64::NAN);
                self.alerts
                    .push_back(format!("[{:>6}ms] {rule} {value:.3} > {threshold:.3}", num("t_ms")));
                while self.alerts.len() > ALERT_HISTORY {
                    self.alerts.pop_front();
                }
            }
            "dropped" => self.dropped += num("count"),
            "job_started" => {
                let job = self.job_mut(&v);
                job.trials_total = num("trials");
            }
            "job_done" => self.job_mut(&v).state = JobRunState::Done,
            "job_failed" => self.job_mut(&v).state = JobRunState::Failed,
            "trial_started" => self.job_mut(&v).last_seed = num("seed"),
            "trial_retried" => {
                let seed = num("seed");
                let job = self.job_mut(&v);
                job.retried += 1;
                job.last_seed = seed;
            }
            "trial_finished" => {
                let (seed, rounds) = (num("seed"), num("rounds"));
                let job = self.job_mut(&v);
                job.finished += 1;
                job.rounds += rounds;
                job.last_seed = seed;
            }
            "trial_timed_out" => {
                let seed = num("seed");
                let job = self.job_mut(&v);
                job.timed_out += 1;
                job.last_seed = seed;
            }
            "trial_poisoned" => {
                let seed = num("seed");
                let job = self.job_mut(&v);
                job.poisoned += 1;
                job.last_seed = seed;
            }
            _ => self.unparsed += 1,
        }
    }

    fn job_mut(&mut self, v: &JsonValue) -> &mut JobView {
        let id = v
            .get("job")
            .and_then(JsonValue::as_str)
            .unwrap_or("(local)")
            .to_string();
        self.jobs.entry(id).or_default()
    }

    /// Renders one full screen, prefixed with the ANSI home+clear
    /// sequence so successive renders repaint in place. Pass
    /// `ansi = false` for plain text (tests, piped output).
    #[must_use]
    pub fn render(&self, width: usize, ansi: bool) -> String {
        let width = width.clamp(40, 200);
        let mut out = String::new();
        if ansi {
            out.push_str("\x1b[H\x1b[2J");
        }
        let latest = self.frames.back();
        out.push_str(&format!(
            "fading-top  t={:>8}ms  queue={:<4} in-flight={:<3} jobs={}\n",
            self.t_ms,
            latest.map_or(0, |f| f.queue_depth),
            latest.map_or(0, |f| f.jobs_in_flight),
            self.jobs.len()
        ));
        out.push_str(&"─".repeat(width));
        out.push('\n');

        // Rates + sparklines over the retained frame window.
        let trial_rounds: Vec<u64> = self.frames.iter().map(|f| f.d_trial_rounds).collect();
        let trials: Vec<u64> = self.frames.iter().map(|f| f.d_trials).collect();
        out.push_str(&format!(
            "rounds/f {:>8}  {}\n",
            trial_rounds.last().copied().unwrap_or(0),
            sparkline(&trial_rounds)
        ));
        out.push_str(&format!(
            "trials/f {:>8}  {}\n",
            trials.last().copied().unwrap_or(0),
            sparkline(&trials)
        ));

        // Tier mix from the newest frame's engine-round deltas.
        if let Some(f) = latest {
            let tiers: [(&str, u64); 5] = [
                ("far", f.d_farfield_rounds),
                ("hier", f.d_hierarchical_rounds),
                ("cache", f.d_gain_cache_rounds),
                ("exact", f.d_exact_rounds),
                ("instr", f.d_instrumented_rounds),
            ];
            let total: u64 = tiers.iter().map(|(_, n)| n).sum();
            if total > 0 {
                out.push_str("tiers    ");
                for (name, n) in tiers {
                    if n > 0 {
                        out.push_str(&format!("{name}:{:.0}% ", n as f64 * 100.0 / total as f64));
                    }
                }
                out.push('\n');
            }
        }
        out.push_str(&"─".repeat(width));
        out.push('\n');

        // Per-job progress bars.
        for (id, job) in &self.jobs {
            let done = job.terminal();
            let total = job.trials_total.max(done);
            let tag = match job.state {
                JobRunState::Running => "run ",
                JobRunState::Done => "done",
                JobRunState::Failed => "FAIL",
            };
            let extras = {
                let mut s = String::new();
                if job.retried > 0 {
                    s.push_str(&format!(" retry={}", job.retried));
                }
                if job.timed_out > 0 {
                    s.push_str(&format!(" tmo={}", job.timed_out));
                }
                if job.poisoned > 0 {
                    s.push_str(&format!(" poison={}", job.poisoned));
                }
                s
            };
            out.push_str(&format!(
                "{tag} {:<20} {} {done:>5}/{total:<5} seed={}{extras}\n",
                truncate(id, 20),
                progress_bar(done, total, 24),
                job.last_seed
            ));
        }

        // Recent alerts + stream health.
        if !self.alerts.is_empty() {
            out.push_str(&"─".repeat(width));
            out.push('\n');
            for a in &self.alerts {
                out.push_str(&format!("ALERT {a}\n"));
            }
        }
        if self.dropped > 0 || self.unparsed > 0 {
            out.push_str(&format!(
                "stream: {} lines dropped by server, {} unparsed\n",
                self.dropped, self.unparsed
            ));
        }
        out
    }
}

/// Eight-level unicode sparkline of `values`, scaled to the window max.
#[must_use]
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| BARS[((v * 7).div_ceil(max) as usize).min(7)])
        .collect()
}

/// A `[████░░░░]`-style bar of `width` cells, `done/total` filled.
#[must_use]
pub fn progress_bar(done: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        0
    } else {
        ((done.min(total) as usize) * width) / (total as usize).max(1)
    };
    let mut bar = String::with_capacity(width + 2);
    bar.push('[');
    for i in 0..width {
        bar.push(if i < filled { '█' } else { '░' });
    }
    bar.push(']');
    bar
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_events_accumulate_into_job_views() {
        let mut d = Dashboard::new();
        d.apply_line("{\"event\":\"job_started\",\"job\":\"j1\",\"t_ms\":5,\"trials\":4}");
        d.apply_line("{\"job\":\"j1\",\"t_ms\":6,\"event\":\"trial_started\",\"seed\":0}");
        d.apply_line(
            "{\"job\":\"j1\",\"t_ms\":9,\"event\":\"trial_finished\",\"seed\":0,\"rounds\":12,\"resolved\":true,\"retries\":0}",
        );
        d.apply_line("{\"job\":\"j1\",\"t_ms\":10,\"event\":\"trial_retried\",\"seed\":1,\"retries\":1}");
        d.apply_line(
            "{\"job\":\"j1\",\"t_ms\":11,\"event\":\"trial_timed_out\",\"seed\":1,\"timeout_ms\":50,\"retries\":1}",
        );
        let job = &d.jobs()["j1"];
        assert_eq!(job.trials_total, 4);
        assert_eq!(job.finished, 1);
        assert_eq!(job.rounds, 12);
        assert_eq!(job.retried, 1);
        assert_eq!(job.timed_out, 1);
        assert_eq!(job.state, JobRunState::Running);
        assert_eq!(d.unparsed, 0);

        d.apply_line("{\"event\":\"job_done\",\"job\":\"j1\",\"t_ms\":12,\"succeeded\":3}");
        assert_eq!(d.jobs()["j1"].state, JobRunState::Done);
    }

    #[test]
    fn frames_alerts_and_drops_feed_the_render() {
        let mut d = Dashboard::new();
        d.apply_line(
            "{\"event\":\"frame\",\"t_ms\":1000,\"dt_ms\":500,\"d_trials\":3,\"d_trial_rounds\":40,\
             \"d_retried\":0,\"d_timed_out\":0,\"d_jobs_completed\":0,\"d_jobs_failed\":0,\
             \"d_engine_rounds\":40,\"d_farfield_rounds\":30,\"d_hierarchical_rounds\":0,\
             \"d_gain_cache_rounds\":0,\"d_exact_rounds\":10,\"d_instrumented_rounds\":0,\
             \"d_jammed_rounds\":0,\"d_fallback_listeners\":2,\"d_resolved_listeners\":90,\
             \"queue_depth\":7,\"jobs_in_flight\":1}",
        );
        d.apply_line(
            "{\"event\":\"alert\",\"rule\":\"queue_depth\",\"value\":7.0,\"threshold\":5.0,\"t_ms\":1000}",
        );
        d.apply_line("{\"event\":\"dropped\",\"count\":11}");
        d.apply_line("not json at all");
        assert_eq!(d.latest_frame().map(|f| f.queue_depth), Some(7));
        assert_eq!(d.dropped, 11);
        assert_eq!(d.unparsed, 1);

        let screen = d.render(60, false);
        assert!(screen.contains("queue=7"), "{screen}");
        assert!(screen.contains("ALERT"), "{screen}");
        assert!(screen.contains("queue_depth"), "{screen}");
        assert!(screen.contains("11 lines dropped"), "{screen}");
        // Plain render carries no escape codes; ANSI render does.
        assert!(!screen.contains('\x1b'));
        assert!(d.render(60, true).starts_with("\x1b[H\x1b[2J"));
    }

    #[test]
    fn sparkline_and_progress_bar_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[1, 4, 8]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        assert_eq!(progress_bar(0, 4, 4), "[░░░░]");
        assert_eq!(progress_bar(2, 4, 4), "[██░░]");
        assert_eq!(progress_bar(4, 4, 4), "[████]");
        assert_eq!(progress_bar(9, 4, 4), "[████]");
        assert_eq!(progress_bar(0, 0, 4), "[░░░░]");
    }
}
