//! Live event streaming: the subscriber hub, slow-consumer policy, and
//! SLO watch rules.
//!
//! A [`EventHub`] fans server-side event lines (per-job progress,
//! periodic time-series frames, SLO alerts) out to any number of
//! subscribers, each holding a **bounded** queue. The job loop publishes
//! with a `try_push` discipline: when a subscriber's queue is full the
//! line is dropped *for that subscriber* and counted — never blocking
//! the publisher — so a stalled `watch` client cannot slow a job worker,
//! let alone perturb results (the determinism drill pins this). When
//! room returns, the subscriber receives one
//! `{"event":"dropped","count":N}` notice summarizing the gap.
//!
//! The fast path is what keeps the no-subscriber overhead inside the
//! bench gate's 5% budget: [`EventHub::has_subscribers`] is a single
//! relaxed atomic load, and publishers skip even *formatting* an event
//! line when nobody is attached.
//!
//! [`SloWatch`] evaluates [`SloRules`] over the monitor's
//! [`TimeSeries`] window each tick, edge-triggered: an [`Alert`] is
//! emitted when a rule crosses from compliant to violated (and re-armed
//! when it recovers), not on every tick of a sustained violation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use fading_cr::sim::obs::timeseries::TimeSeries;
use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};

use crate::protocol::json_escape;

/// Default bound on one subscriber's pending-line queue. At ~100 bytes a
/// line this caps a stalled subscriber at ~100 KiB of retained lines.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 1024;

/// What one subscriber asked to receive.
#[derive(Debug, Clone, Default)]
pub struct Subscription {
    /// Only forward progress events for this job id (`None` = all jobs).
    pub job: Option<String>,
    /// Also forward periodic time-series frames.
    pub frames: bool,
    /// Queue bound; 0 means [`DEFAULT_SUBSCRIBER_CAPACITY`].
    pub capacity: usize,
}

impl Subscription {
    /// Everything: all jobs' progress plus frames.
    #[must_use]
    pub fn watch_all() -> Self {
        Subscription {
            job: None,
            frames: true,
            capacity: 0,
        }
    }
}

struct SubQueue {
    lines: VecDeque<String>,
    /// Lines dropped since the last `dropped` notice was enqueued.
    dropped_pending: u64,
}

struct SubscriberInner {
    queue: Mutex<SubQueue>,
    ready: Condvar,
    capacity: usize,
    frames: bool,
    job: Option<String>,
    closed: AtomicBool,
    dropped: AtomicU64,
}

impl SubscriberInner {
    /// Enqueue under the bound; full queue → drop and count.
    fn offer(&self, line: &str) {
        if self.closed.load(Ordering::Relaxed) {
            return;
        }
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.dropped_pending > 0 && q.lines.len() < self.capacity {
            let n = q.dropped_pending;
            q.dropped_pending = 0;
            q.lines
                .push_back(format!("{{\"event\":\"dropped\",\"count\":{n}}}"));
        }
        if q.lines.len() >= self.capacity {
            q.dropped_pending += 1;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            q.lines.push_back(line.to_string());
        }
        drop(q);
        self.ready.notify_one();
    }
}

/// A receiving handle onto one hub subscription. Dropping it without
/// [`Subscriber::close`] leaves the hub-side entry to be pruned on the
/// next publish.
pub struct Subscriber {
    inner: Arc<SubscriberInner>,
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("job", &self.inner.job)
            .field("frames", &self.inner.frames)
            .field("dropped", &self.inner.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Subscriber {
    /// Waits up to `timeout` for the next line. `None` on timeout or
    /// when closed with an empty queue.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<String> {
        let mut q = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(line) = q.lines.pop_front() {
            return Some(line);
        }
        if self.inner.closed.load(Ordering::Relaxed) {
            return None;
        }
        let (mut q, _timed_out) = self
            .inner
            .ready
            .wait_timeout(q, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        q.lines.pop_front()
    }

    /// Takes everything currently queued without waiting.
    #[must_use]
    pub fn drain(&self) -> Vec<String> {
        let mut q = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        q.lines.drain(..).collect()
    }

    /// Lines dropped against this subscriber so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Detaches from the hub; the entry is pruned on the next publish.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Relaxed);
        self.inner.ready.notify_one();
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        self.close();
    }
}

/// The fan-out hub. One per server; all methods are thread-safe.
#[derive(Default)]
pub struct EventHub {
    subscribers: Mutex<Vec<Arc<SubscriberInner>>>,
    active: AtomicUsize,
    dropped_total: AtomicU64,
}

impl std::fmt::Debug for EventHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventHub")
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("dropped_total", &self.dropped_total.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl EventHub {
    /// An empty hub.
    #[must_use]
    pub fn new() -> Self {
        EventHub::default()
    }

    /// One relaxed load — the publisher fast path. When `false`,
    /// callers skip formatting entirely.
    #[must_use]
    pub fn has_subscribers(&self) -> bool {
        self.active.load(Ordering::Relaxed) > 0
    }

    /// Total lines dropped against slow subscribers, hub-wide.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// Attaches a subscriber.
    #[must_use]
    pub fn subscribe(&self, sub: Subscription) -> Subscriber {
        let inner = Arc::new(SubscriberInner {
            queue: Mutex::new(SubQueue {
                lines: VecDeque::new(),
                dropped_pending: 0,
            }),
            ready: Condvar::new(),
            capacity: if sub.capacity == 0 {
                DEFAULT_SUBSCRIBER_CAPACITY
            } else {
                sub.capacity
            },
            frames: sub.frames,
            job: sub.job,
            closed: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        });
        let mut subs = self
            .subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        subs.push(Arc::clone(&inner));
        self.active.store(subs.len(), Ordering::Relaxed);
        drop(subs);
        Subscriber { inner }
    }

    fn deliver(&self, line: &str, wants: impl Fn(&SubscriberInner) -> bool) {
        let mut subs = self
            .subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut dropped_delta = 0;
        subs.retain(|s| {
            if s.closed.load(Ordering::Relaxed) {
                dropped_delta += 0; // pruned; its drop tally was already folded in
                return false;
            }
            if wants(s) {
                let before = s.dropped.load(Ordering::Relaxed);
                s.offer(line);
                dropped_delta += s.dropped.load(Ordering::Relaxed) - before;
            }
            true
        });
        self.active.store(subs.len(), Ordering::Relaxed);
        drop(subs);
        if dropped_delta > 0 {
            self.dropped_total.fetch_add(dropped_delta, Ordering::Relaxed);
        }
    }

    /// Publishes a per-job progress line to subscribers watching `job`
    /// (or everything).
    pub fn publish_progress(&self, job: &str, line: &str) {
        self.deliver(line, |s| s.job.as_deref().is_none_or(|j| j == job));
    }

    /// Publishes a time-series frame line to frame subscribers.
    pub fn publish_frame(&self, line: &str) {
        self.deliver(line, |s| s.frames);
    }

    /// Publishes an alert line to every subscriber.
    pub fn publish_alert(&self, line: &str) {
        self.deliver(line, |_| true);
    }
}

/// Splices `"job":…,"t_ms":…` into an event line produced by the sim
/// layer (`{"event":…}`), right after the opening brace. Parsers ignore
/// the extra keys; dashboards key on them.
#[must_use]
pub fn with_job_fields(line: &str, job: &str, t_ms: u64) -> String {
    match line.strip_prefix('{') {
        Some(rest) => format!("{{\"job\":\"{}\",\"t_ms\":{t_ms},{rest}", json_escape(job)),
        None => line.to_string(),
    }
}

// ---------------------------------------------------------------------------
// SLO watch rules
// ---------------------------------------------------------------------------

/// Service-level thresholds the monitor checks each tick. `None`
/// disables a rule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloRules {
    /// Alert when the windowed far-field fallback fraction exceeds this.
    pub fallback_fraction_max: Option<f64>,
    /// Alert when watchdog timeouts exceed this many per minute over the
    /// window (a timeout *spike*).
    pub timed_out_per_min_max: Option<f64>,
    /// Alert when the queue-depth gauge exceeds this (sustained queue
    /// growth — submissions outpacing workers).
    pub queue_depth_max: Option<u64>,
}

impl SloRules {
    /// `true` when every rule is disabled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fallback_fraction_max.is_none()
            && self.timed_out_per_min_max.is_none()
            && self.queue_depth_max.is_none()
    }
}

/// One typed SLO violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Which rule fired: `fallback_fraction`, `timed_out_spike`, or
    /// `queue_depth`.
    pub rule: String,
    /// The observed value.
    pub value: f64,
    /// The configured threshold it exceeded.
    pub threshold: f64,
    /// Milliseconds since the monitor's epoch.
    pub t_ms: u64,
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}

impl Alert {
    /// One-line JSON form: `{"event":"alert","rule":…,"value":…,
    /// "threshold":…,"t_ms":…}`. `f64`s use the workspace's `{:?}`
    /// round-trip formatting.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"event\":\"alert\",\"rule\":\"{}\",\"value\":{},\"threshold\":{},\"t_ms\":{}}}",
            json_escape(&self.rule),
            fmt_f64(self.value),
            fmt_f64(self.threshold),
            self.t_ms
        )
    }

    /// Parses the output of [`Alert::to_json`] (unknown keys ignored).
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed input.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn from_json(line: &str) -> Result<Alert, String> {
        let v = parse_json(line).map_err(|e| e.to_string())?;
        if v.get("event").and_then(JsonValue::as_str) != Some("alert") {
            return Err("not an alert event".to_string());
        }
        let num = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing or non-numeric {key:?}"))
        };
        Ok(Alert {
            rule: v
                .get("rule")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "missing \"rule\"".to_string())?
                .to_string(),
            value: num("value")?,
            threshold: num("threshold")?,
            t_ms: num("t_ms")? as u64,
        })
    }
}

/// Edge-triggered evaluator over a [`TimeSeries`] window. Keeps one
/// armed/violated latch per rule so a sustained violation alerts once,
/// then re-arms after recovery.
#[derive(Debug, Default)]
pub struct SloWatch {
    rules: SloRules,
    fallback_violated: bool,
    timeout_violated: bool,
    queue_violated: bool,
}

impl SloWatch {
    /// A watch over `rules`.
    #[must_use]
    pub fn new(rules: SloRules) -> Self {
        SloWatch {
            rules,
            ..SloWatch::default()
        }
    }

    /// The rules under watch.
    #[must_use]
    pub fn rules(&self) -> &SloRules {
        &self.rules
    }

    /// Evaluates every rule against the newest `window` frames of `ts`,
    /// returning alerts for rules that just crossed into violation.
    pub fn check(&mut self, ts: &TimeSeries, window: usize, t_ms: u64) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let rates = ts.rates(window);
        let mut edge = |violated: &mut bool, is_violation: bool, rule: &str, value: f64, threshold: f64| {
            if is_violation && !*violated {
                alerts.push(Alert {
                    rule: rule.to_string(),
                    value,
                    threshold,
                    t_ms,
                });
            }
            *violated = is_violation;
        };
        if let Some(max) = self.rules.fallback_fraction_max {
            edge(
                &mut self.fallback_violated,
                rates.fallback_fraction > max,
                "fallback_fraction",
                rates.fallback_fraction,
                max,
            );
        }
        if let Some(max) = self.rules.timed_out_per_min_max {
            let skip = ts.len().saturating_sub(window);
            let (mut timed_out, mut dt_ms) = (0u64, 0u64);
            for f in ts.frames().skip(skip) {
                timed_out += f.d_timed_out;
                dt_ms += f.dt_ms;
            }
            let per_min = if dt_ms == 0 {
                0.0
            } else {
                timed_out as f64 * 60_000.0 / dt_ms as f64
            };
            edge(
                &mut self.timeout_violated,
                per_min > max,
                "timed_out_spike",
                per_min,
                max,
            );
        }
        if let Some(max) = self.rules.queue_depth_max {
            let depth = ts.latest().map_or(0, |f| f.queue_depth);
            edge(
                &mut self.queue_violated,
                depth > max,
                "queue_depth",
                depth as f64,
                max as f64,
            );
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_cr::sim::obs::timeseries::TsSample;

    #[test]
    fn hub_fans_out_with_job_filtering() {
        let hub = EventHub::new();
        assert!(!hub.has_subscribers());
        let all = hub.subscribe(Subscription::watch_all());
        let only_a = hub.subscribe(Subscription {
            job: Some("a".to_string()),
            frames: false,
            capacity: 0,
        });
        assert!(hub.has_subscribers());

        hub.publish_progress("a", "{\"event\":\"x\"}");
        hub.publish_progress("b", "{\"event\":\"y\"}");
        hub.publish_frame("{\"event\":\"frame\"}");
        hub.publish_alert("{\"event\":\"alert\"}");

        assert_eq!(all.drain().len(), 4);
        let got = only_a.drain();
        assert_eq!(got.len(), 2, "job filter passes its job + alerts: {got:?}");
        assert!(got[0].contains("\"x\""));
        assert!(got[1].contains("alert"));
    }

    #[test]
    fn slow_consumer_drops_newest_and_reports_gap() {
        let hub = EventHub::new();
        let sub = hub.subscribe(Subscription {
            job: None,
            frames: false,
            capacity: 2,
        });
        for i in 0..5 {
            hub.publish_progress("j", &format!("{{\"n\":{i}}}"));
        }
        assert_eq!(sub.dropped(), 3);
        assert_eq!(hub.dropped_total(), 3);
        // Queue kept the oldest two lines (publisher never blocks).
        let got = sub.drain();
        assert_eq!(got, vec!["{\"n\":0}", "{\"n\":1}"]);
        // Now there is room again: the next publish first delivers the
        // gap notice, then the line.
        hub.publish_progress("j", "{\"n\":5}");
        let got = sub.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], "{\"event\":\"dropped\",\"count\":3}");
        assert_eq!(got[1], "{\"n\":5}");
    }

    #[test]
    fn closed_subscribers_are_pruned() {
        let hub = EventHub::new();
        let sub = hub.subscribe(Subscription::watch_all());
        sub.close();
        hub.publish_alert("{\"event\":\"alert\"}");
        assert!(!hub.has_subscribers());
        assert!(sub.recv_timeout(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn recv_timeout_delivers_and_times_out() {
        let hub = EventHub::new();
        let sub = hub.subscribe(Subscription::watch_all());
        hub.publish_alert("{\"a\":1}");
        assert_eq!(sub.recv_timeout(Duration::from_millis(10)).unwrap(), "{\"a\":1}");
        assert!(sub.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn job_field_splice_keeps_lines_parseable() {
        let spliced = with_job_fields("{\"event\":\"trial_started\",\"seed\":3}", "job \"7\"", 42);
        let v = parse_json(&spliced).unwrap();
        assert_eq!(v.get("job").and_then(JsonValue::as_str), Some("job \"7\""));
        assert_eq!(v.get("t_ms").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(v.get("seed").and_then(JsonValue::as_f64), Some(3.0));
    }

    #[test]
    fn alert_json_round_trips() {
        let a = Alert {
            rule: "queue_depth".to_string(),
            value: 17.0,
            threshold: 10.5,
            t_ms: 1234,
        };
        assert_eq!(Alert::from_json(&a.to_json()).unwrap(), a);
        assert!(Alert::from_json("{\"event\":\"frame\"}").is_err());
    }

    fn series_with(fallback: u64, resolved: u64, timed_out: u64, depth: u64) -> TimeSeries {
        let mut ts = TimeSeries::new(8);
        ts.record(TsSample::at(0));
        let mut s = TsSample::at(1000);
        s.fallback_listeners = fallback;
        s.resolved_listeners = resolved;
        s.timed_out = timed_out;
        s.queue_depth = depth;
        ts.record(s);
        ts
    }

    #[test]
    fn slo_watch_is_edge_triggered() {
        let rules = SloRules {
            fallback_fraction_max: Some(0.10),
            timed_out_per_min_max: Some(5.0),
            queue_depth_max: Some(3),
        };
        assert!(!rules.is_empty());
        assert!(SloRules::default().is_empty());
        let mut watch = SloWatch::new(rules);

        // All three rules violated at once: fallback 20/100, one timeout
        // in one second = 60/min, depth 9.
        let ts = series_with(20, 100, 1, 9);
        let alerts = watch.check(&ts, 8, 1000);
        let rules_fired: Vec<&str> = alerts.iter().map(|a| a.rule.as_str()).collect();
        assert_eq!(
            rules_fired,
            vec!["fallback_fraction", "timed_out_spike", "queue_depth"]
        );
        // Still violated on the next tick → no re-alert.
        assert!(watch.check(&ts, 8, 2000).is_empty());
        // Recovered → re-armed → violated again → alerts again.
        let healthy = series_with(1, 100, 0, 0);
        assert!(watch.check(&healthy, 8, 3000).is_empty());
        assert_eq!(watch.check(&ts, 8, 4000).len(), 3);
    }
}
