//! The job server: claim → validate → shard → record.
//!
//! A [`Server`] owns a [`JobQueue`] and runs a small pool of job workers.
//! Each claimed spec is validated into a `Scenario`, its trials are
//! sharded across threads through
//! [`run_trials_supervised_with_manifest`] — so panicked trials are
//! tallied instead of fatal, and a SIGKILL loses at most the in-flight
//! trials — and its artifacts land in the job's output directory:
//!
//! ```text
//! jobs/<id>/manifest.jsonl    append-only per-trial resume log
//! jobs/<id>/trials.jsonl      seed-ordered final results (byte-stable)
//! jobs/<id>/result.json       summary + supervision tally
//! jobs/<id>/events/<seed>.jsonl   per-trial RoundEvents (telemetry jobs)
//! ```
//!
//! `trials.jsonl` is written from the seed-ordered result vector, so a
//! crashed-and-resumed job produces a byte-identical file to an
//! uninterrupted one (manifests do not persist traces; service jobs run
//! at `TraceLevel::None`). Clients reach the server through the file
//! queue directly or via [`Server::listen`]'s JSONL socket; Prometheus
//! text is served by [`Server::serve_metrics`].
//!
//! Live observability rides on top (DESIGN.md §16): an [`EventHub`]
//! fans trial progress, periodic [`TsFrame`]s from the monitor thread,
//! and SLO [`Alert`](crate::stream::Alert)s out to `watch`/`subscribe`
//! connections. Publishing is strictly fire-and-forget — a slow or
//! stalled subscriber loses lines (counted), never slows a worker — so
//! job artifacts stay byte-identical with or without watchers attached.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fading_cr::jobspec::JobSpec;
use fading_cr::sim::montecarlo::{run_trials_supervised_with_manifest_observed, ShardedRun, Summary};
use fading_cr::sim::obs::timeseries::{frame_to_json, TimeSeries, TsFrame};
use fading_cr::sim::obs::{EngineCounters, NoopProgress, ProgressEvent, ProgressSink};
use fading_cr::sim::recover::{trial_line, SupervisorConfig, TrialManifest};
use fading_cr::sim::telemetry::jsonl::write_events_to_path;
use fading_cr::sim::telemetry::{MemorySink, MetricsRegistry, TelemetryDetail};
use fading_cr::sim::RunResult;

use crate::interrupt;
use crate::metrics::ServerMetrics;
use crate::protocol::{error_response, json_escape, ok_response, parse_request, JobState, Request};
use crate::queue::JobQueue;
use crate::stream::{with_job_fields, EventHub, SloRules, SloWatch, Subscription};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent job workers.
    pub workers: usize,
    /// Threads sharding the trials *within* one job.
    pub trial_threads: usize,
    /// Supervision policy for every trial.
    pub supervisor: SupervisorConfig,
    /// Queue poll interval when idle.
    pub poll_interval: Duration,
    /// Collect per-round span histograms (`MetricsRegistry`) from every
    /// trial and merge them into the scrape. Costs a few percent per
    /// round; off by default.
    pub collect_spans: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            trial_threads: 1,
            supervisor: SupervisorConfig {
                max_retries: 1,
                timeout: None,
            },
            poll_interval: Duration::from_millis(20),
            collect_spans: false,
        }
    }
}

/// When [`Server::run`] should return.
#[derive(Debug, Clone, Copy)]
pub struct ExitPolicy {
    /// Return once the queue is empty and nothing is in flight.
    pub drain: bool,
    /// Return after this much continuous idleness (no claim, nothing in
    /// flight).
    pub idle_exit: Option<Duration>,
}

impl ExitPolicy {
    /// Keep serving until stopped or interrupted.
    #[must_use]
    pub fn forever() -> Self {
        ExitPolicy {
            drain: false,
            idle_exit: None,
        }
    }

    /// Process what's queued, then return.
    #[must_use]
    pub fn drain() -> Self {
        ExitPolicy {
            drain: true,
            idle_exit: None,
        }
    }
}

/// Monitor-thread tunables (see [`Server::start_monitor`]).
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Sampling cadence for time-series frames and SLO checks.
    pub interval: Duration,
    /// SLO thresholds; all-`None` disables alerting but keeps frames.
    pub rules: SloRules,
    /// Ring-buffer capacity, in frames.
    pub ring_capacity: usize,
    /// How many recent frames windowed rates and rules look back over.
    pub rate_window: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval: Duration::from_millis(250),
            rules: SloRules::default(),
            ring_capacity: 512,
            rate_window: 16,
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    queue: JobQueue,
    metrics: ServerMetrics,
    stop: AtomicBool,
    drain: AtomicBool,
    hub: EventHub,
    started: Instant,
    timeseries: Mutex<TimeSeries>,
    monitor_stop: AtomicBool,
    monitor_running: AtomicBool,
}

/// The job server; cheap to clone (all state is shared).
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("root", &self.inner.queue.root())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Opens (or creates) a server over the queue at `root`.
    ///
    /// # Errors
    ///
    /// Queue-directory creation failures.
    pub fn open(root: &Path, cfg: ServerConfig) -> io::Result<Server> {
        let queue = JobQueue::open(root)?;
        Ok(Server {
            inner: Arc::new(Inner {
                cfg,
                queue,
                metrics: ServerMetrics::new(),
                stop: AtomicBool::new(false),
                drain: AtomicBool::new(false),
                hub: EventHub::new(),
                started: Instant::now(),
                timeseries: Mutex::new(TimeSeries::new(
                    MonitorConfig::default().ring_capacity,
                )),
                monitor_stop: AtomicBool::new(false),
                monitor_running: AtomicBool::new(false),
            }),
        })
    }

    /// The live-event hub (attach in-process subscribers directly; socket
    /// clients use the `watch`/`subscribe` verbs).
    #[must_use]
    pub fn hub(&self) -> &EventHub {
        &self.inner.hub
    }

    /// Milliseconds since this server instance was opened (the `t_ms`
    /// clock stamped onto every streamed event).
    #[must_use]
    pub fn t_ms(&self) -> u64 {
        u64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// A copy of the monitor's recorded frames, oldest first.
    #[must_use]
    pub fn timeseries_frames(&self) -> Vec<TsFrame> {
        self.inner
            .timeseries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .frames()
            .copied()
            .collect()
    }

    /// Starts the monitor thread: every `interval` it samples the metrics
    /// into the time-series ring, publishes a `frame` event, refreshes the
    /// queue-depth gauge, evaluates the SLO rules (publishing `alert`
    /// events and bumping the alert counters), and mirrors the hub's
    /// dropped-line total into the scrape. Idempotent: a second call while
    /// the monitor runs is a no-op. Runs detached until
    /// [`stop_monitor`](Self::stop_monitor) or process exit.
    pub fn start_monitor(&self, cfg: MonitorConfig) {
        if self.inner.monitor_running.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.monitor_stop.store(false, Ordering::SeqCst);
        {
            let mut ts = self
                .inner
                .timeseries
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *ts = TimeSeries::new(cfg.ring_capacity);
        }
        let server = self.clone();
        std::thread::spawn(move || server.monitor_loop(cfg));
    }

    /// Asks the monitor thread to exit after its current tick.
    pub fn stop_monitor(&self) {
        self.inner.monitor_stop.store(true, Ordering::SeqCst);
    }

    fn monitor_loop(&self, cfg: MonitorConfig) {
        let inner = &*self.inner;
        let mut watch = SloWatch::new(cfg.rules);
        // Baseline sample so the first sleep's frame has a predecessor.
        self.monitor_tick(&mut watch, cfg.rate_window);
        while !inner.monitor_stop.load(Ordering::SeqCst) && !inner.stop.load(Ordering::SeqCst) {
            std::thread::sleep(cfg.interval);
            self.monitor_tick(&mut watch, cfg.rate_window);
        }
        inner.monitor_running.store(false, Ordering::SeqCst);
    }

    fn monitor_tick(&self, watch: &mut SloWatch, rate_window: usize) {
        let inner = &*self.inner;
        if let Ok(depth) = inner.queue.depth() {
            inner.metrics.set_queue_depth(depth as u64);
        }
        inner.metrics.set_watch_dropped(inner.hub.dropped_total());
        let t_ms = self.t_ms();
        let sample = inner.metrics.ts_sample(t_ms);
        let (frame, alerts) = {
            let mut ts = inner
                .timeseries
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let frame = ts.record(sample);
            let alerts = watch.check(&ts, rate_window, t_ms);
            (frame, alerts)
        };
        if let Some(frame) = frame {
            if inner.hub.has_subscribers() {
                let body = frame_to_json(&frame);
                let line = body
                    .strip_prefix('{')
                    .map_or(body.clone(), |rest| format!("{{\"event\":\"frame\",{rest}"));
                inner.hub.publish_frame(&line);
            }
        }
        for alert in alerts {
            inner.metrics.record_alert(&alert.rule);
            inner.hub.publish_alert(&alert.to_json());
        }
    }

    /// The underlying queue.
    #[must_use]
    pub fn queue(&self) -> &JobQueue {
        &self.inner.queue
    }

    /// The aggregated metrics.
    #[must_use]
    pub fn metrics(&self) -> &ServerMetrics {
        &self.inner.metrics
    }

    /// Asks [`run`](Self::run) to return after the current jobs finish.
    pub fn request_stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// Moves specs stranded in `running/` by a dead incarnation back into
    /// the queue; their manifests make the re-run skip finished trials.
    /// Returns how many were recovered.
    ///
    /// # Errors
    ///
    /// IO failures listing or renaming.
    pub fn recover_stranded(&self) -> io::Result<usize> {
        let stranded = self.inner.queue.stranded()?;
        let n = stranded.len();
        for path in stranded {
            let name = path
                .file_name()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "nameless spec"))?;
            std::fs::rename(&path, self.inner.queue.incoming_dir().join(name))?;
        }
        Ok(n)
    }

    /// Looks up a job's lifecycle state across the queue directories.
    #[must_use]
    pub fn job_state(&self, id: &str) -> JobState {
        let q = &self.inner.queue;
        let name = format!("{id}.json");
        if q.done_dir().join(&name).exists() {
            JobState::Done
        } else if q.failed_dir().join(&name).exists() {
            JobState::Failed
        } else if q.running_dir().join(&name).exists() {
            JobState::Running
        } else if q.incoming_dir().join(&name).exists() {
            JobState::Queued
        } else {
            JobState::Unknown
        }
    }

    /// Runs the worker pool until the exit policy (or
    /// [`request_stop`](Self::request_stop), or an interrupt) says stop.
    /// Blocks the calling thread.
    pub fn run(&self, exit: ExitPolicy) {
        interrupt::install();
        let workers = self.inner.cfg.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(exit));
            }
        });
    }

    fn worker_loop(&self, exit: ExitPolicy) {
        let inner = &*self.inner;
        let mut idle_since = Instant::now();
        loop {
            if inner.stop.load(Ordering::SeqCst) || interrupt::interrupted() {
                return;
            }
            match inner.queue.claim_next() {
                Ok(Some(path)) => {
                    idle_since = Instant::now();
                    self.execute_spec_file(&path);
                }
                Ok(None) => {
                    let drained = inner.metrics.jobs_in_flight() == 0;
                    if (exit.drain || inner.drain.load(Ordering::SeqCst)) && drained {
                        return;
                    }
                    if let Some(limit) = exit.idle_exit {
                        if drained && idle_since.elapsed() >= limit {
                            return;
                        }
                    }
                    if !drained {
                        idle_since = Instant::now();
                    }
                    std::thread::sleep(inner.cfg.poll_interval);
                }
                Err(e) => {
                    eprintln!("queue poll error: {e}");
                    std::thread::sleep(inner.cfg.poll_interval);
                }
            }
            if let Ok(depth) = inner.queue.depth() {
                inner.metrics.set_queue_depth(depth as u64);
            }
        }
    }

    /// Runs one claimed spec file to completion and retires it.
    fn execute_spec_file(&self, running: &Path) {
        let inner = &*self.inner;
        let started = Instant::now();
        let text = match std::fs::read_to_string(running) {
            Ok(t) => t,
            Err(e) => {
                inner.metrics.record_rejected();
                let _ = inner.queue.finish(running, Some(&format!("unreadable spec: {e}")));
                return;
            }
        };
        let spec = match JobSpec::from_json(text.trim()) {
            Ok(s) => s,
            Err(e) => {
                inner.metrics.record_rejected();
                let _ = inner.queue.finish(running, Some(&e.to_string()));
                return;
            }
        };
        inner.metrics.record_started();
        if inner.hub.has_subscribers() {
            inner.hub.publish_progress(
                &spec.id,
                &format!(
                    "{{\"event\":\"job_started\",\"job\":\"{}\",\"t_ms\":{},\"trials\":{}}}",
                    json_escape(&spec.id),
                    self.t_ms(),
                    spec.trials
                ),
            );
        }
        let progress = ServerProgress {
            metrics: &inner.metrics,
            hub: &inner.hub,
            job: &spec.id,
            epoch: inner.started,
        };
        match run_job_observed(&inner.queue, &inner.cfg, &spec, &progress) {
            Ok(report) => {
                if inner.hub.has_subscribers() {
                    inner.hub.publish_progress(
                        &spec.id,
                        &format!(
                            "{{\"event\":\"job_done\",\"job\":\"{}\",\"t_ms\":{},\"succeeded\":{},\"resumed\":{}}}",
                            json_escape(&spec.id),
                            self.t_ms(),
                            report.run.summary.succeeded,
                            report.run.resumed
                        ),
                    );
                }
                inner.metrics.record_completed(
                    started.elapsed(),
                    &report.run.summary,
                    report.run.resumed,
                    &report.counters,
                    report.registry.as_ref(),
                );
                let _ = inner.queue.finish(running, None);
            }
            Err(e) => {
                if inner.hub.has_subscribers() {
                    inner.hub.publish_progress(
                        &spec.id,
                        &format!(
                            "{{\"event\":\"job_failed\",\"job\":\"{}\",\"t_ms\":{},\"error\":\"{}\"}}",
                            json_escape(&spec.id),
                            self.t_ms(),
                            json_escape(&e)
                        ),
                    );
                }
                inner.metrics.record_failed();
                let _ = inner.queue.finish(running, Some(&e));
            }
        }
    }

    /// Binds a JSONL control socket (see [`protocol`](crate::protocol))
    /// and serves it from a detached thread. Returns the bound address
    /// (bind to port 0 for an ephemeral one).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn listen(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = self.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let server = server.clone();
                std::thread::spawn(move || server.serve_connection(stream));
            }
        });
        Ok(local)
    }

    fn serve_connection(&self, stream: TcpStream) {
        let Ok(peer_read) = stream.try_clone() else {
            return;
        };
        let mut writer = stream;
        let reader = BufReader::new(peer_read);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            // `watch`/`subscribe` flip the connection into streaming mode
            // and never come back to request/response.
            match parse_request(&line) {
                Ok(Request::Watch { id }) => {
                    self.stream_events(&mut writer, id, true);
                    return;
                }
                Ok(Request::Subscribe { id }) => {
                    self.stream_events(&mut writer, id, false);
                    return;
                }
                parsed => {
                    let response = self.handle_request(parsed);
                    if writer
                        .write_all(format!("{response}\n").as_bytes())
                        .is_err()
                    {
                        break;
                    }
                }
            }
        }
    }

    /// The post-ack half of a `watch`/`subscribe` connection: pump hub
    /// lines to the socket until the client hangs up or the server stops.
    /// Idle stretches get a blank keepalive line (clients skip empty
    /// lines) so a vanished client is still detected within a few
    /// seconds even when no events flow.
    fn stream_events(&self, writer: &mut TcpStream, id: Option<String>, frames: bool) {
        let sub = self.inner.hub.subscribe(Subscription {
            job: id,
            frames,
            capacity: 0,
        });
        let ack = ok_response(&[("streaming", "true".to_string())]);
        if writer.write_all(format!("{ack}\n").as_bytes()).is_err() {
            return;
        }
        let mut idle_ticks = 0u32;
        loop {
            if let Some(line) = sub.recv_timeout(Duration::from_millis(250)) {
                idle_ticks = 0;
                if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
                    return;
                }
            } else {
                if self.inner.stop.load(Ordering::SeqCst) || interrupt::interrupted() {
                    return;
                }
                idle_ticks += 1;
                if idle_ticks >= 8 {
                    idle_ticks = 0;
                    if writer.write_all(b"\n").is_err() {
                        return;
                    }
                }
            }
        }
    }

    fn handle_request(&self, parsed: Result<Request, String>) -> String {
        let inner = &*self.inner;
        match parsed {
            Err(msg) => {
                inner.metrics.record_rejected();
                error_response(&msg)
            }
            Ok(Request::Ping) => ok_response(&[("pong", "true".to_string())]),
            Ok(Request::Submit(spec)) => match inner.queue.submit(&spec) {
                Ok(_) => {
                    inner.metrics.record_submitted();
                    ok_response(&[("id", format!("\"{}\"", spec.id))])
                }
                Err(e) => {
                    inner.metrics.record_rejected();
                    error_response(&format!("submit failed: {e}"))
                }
            },
            Ok(Request::Status { id }) => {
                let state = self.job_state(&id);
                ok_response(&[
                    ("id", format!("\"{}\"", crate::protocol::json_escape(&id))),
                    ("state", format!("\"{}\"", state.label())),
                ])
            }
            Ok(Request::Stats) => {
                let depths = inner.queue.state_depths().unwrap_or_default();
                let mut fields = vec![
                    ("completed", inner.metrics.jobs_completed().to_string()),
                    ("failed", inner.metrics.jobs_failed().to_string()),
                    ("in_flight", inner.metrics.jobs_in_flight().to_string()),
                    ("queue_depth", depths.incoming.to_string()),
                    (
                        "states",
                        format!(
                            "{{\"queued\":{},\"running\":{},\"done\":{},\"failed\":{}}}",
                            depths.incoming, depths.running, depths.done, depths.failed
                        ),
                    ),
                    ("watch_dropped", inner.hub.dropped_total().to_string()),
                ];
                if let Some((p50, p95, p99)) = inner.metrics.latency_quantiles() {
                    fields.push((
                        "latency_ms",
                        format!("{{\"p50\":{p50:?},\"p95\":{p95:?},\"p99\":{p99:?}}}"),
                    ));
                }
                ok_response(&fields)
            }
            // Streaming verbs are intercepted in `serve_connection`; seeing
            // one here means the transport can't stream (shouldn't happen
            // over the socket).
            Ok(Request::Watch { .. } | Request::Subscribe { .. }) => {
                error_response("watch/subscribe require a streaming connection")
            }
            Ok(Request::Shutdown) => {
                inner.drain.store(true, Ordering::SeqCst);
                ok_response(&[("draining", "true".to_string())])
            }
        }
    }

    /// Binds a minimal HTTP endpoint serving the Prometheus scrape body
    /// on every GET, from a detached thread. Returns the bound address.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve_metrics(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = self.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                // Drain the request head; the path is irrelevant (every
                // GET gets the scrape).
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let body = server.inner.metrics.render_prometheus();
                let head = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(body.as_bytes());
            }
        });
        Ok(local)
    }
}

/// The per-job progress sink: tallies every event into the live metrics
/// and — only when someone is watching — formats it onto the hub with
/// the job id and server clock spliced in. The hub path is try-push all
/// the way down, so this sink never blocks a trial thread.
struct ServerProgress<'a> {
    metrics: &'a ServerMetrics,
    hub: &'a EventHub,
    job: &'a str,
    epoch: Instant,
}

impl ProgressSink for ServerProgress<'_> {
    fn on_event(&self, event: &ProgressEvent) {
        self.metrics.record_progress(event);
        if self.hub.has_subscribers() {
            let t_ms = u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
            self.hub
                .publish_progress(self.job, &with_job_fields(&event.to_json(), self.job, t_ms));
        }
    }
}

/// What one completed job reports back.
#[derive(Debug)]
pub struct JobReport {
    /// The sharded-run outcome (results, supervision tally, resume count).
    pub run: ShardedRun,
    /// Engine counters merged over every trial run here.
    pub counters: EngineCounters,
    /// Span histograms, when [`ServerConfig::collect_spans`] is on.
    pub registry: Option<MetricsRegistry>,
}

/// Executes one validated spec: builds the scenario, shards the trials
/// through the supervised manifest runner, and writes the job artifacts.
///
/// # Errors
///
/// A human-readable failure reason (spec invalid, manifest IO/corruption,
/// or artifact write errors).
pub fn run_job(queue: &JobQueue, cfg: &ServerConfig, spec: &JobSpec) -> Result<JobReport, String> {
    run_job_observed(queue, cfg, spec, &NoopProgress)
}

/// [`run_job`] with a progress sink observing every trial event. The
/// unobserved form is this one with [`NoopProgress`] — one code path, so
/// attaching a sink cannot change results.
///
/// # Errors
///
/// Same as [`run_job`].
pub fn run_job_observed(
    queue: &JobQueue,
    cfg: &ServerConfig,
    spec: &JobSpec,
    progress: &dyn ProgressSink,
) -> Result<JobReport, String> {
    let scenario = Arc::new(spec.build_scenario().map_err(|e| e.to_string())?);
    let job_dir = queue.job_dir(&spec.id);
    std::fs::create_dir_all(&job_dir).map_err(|e| format!("creating job dir: {e}"))?;
    let mut manifest = TrialManifest::open(&job_dir.join("manifest.jsonl"))
        .map_err(|e| format!("opening manifest: {e}"))?;

    let counters_acc = Arc::new(Mutex::new(EngineCounters::default()));
    let registry_acc = Arc::new(Mutex::new(MetricsRegistry::new()));
    let events_dir = job_dir.join("events");
    if spec.telemetry {
        std::fs::create_dir_all(&events_dir).map_err(|e| format!("creating events dir: {e}"))?;
    }

    let trial_fn = {
        let scenario = Arc::clone(&scenario);
        let counters_acc = Arc::clone(&counters_acc);
        let registry_acc = Arc::clone(&registry_acc);
        let events_dir = events_dir.clone();
        let collect_spans = cfg.collect_spans;
        let telemetry = spec.telemetry;
        let max_rounds = spec.max_rounds;
        move |seed: u64| -> RunResult {
            let mut sim = scenario.simulation_with_seed(seed);
            if collect_spans {
                sim.set_metrics_enabled(true);
            }
            if telemetry {
                sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::counts())));
            }
            let result = sim.run_until_resolved(max_rounds);
            {
                let mut c = counters_acc.lock().unwrap_or_else(PoisonError::into_inner);
                c.merge(&sim.engine_counters());
            }
            if collect_spans {
                if let Some(m) = sim.metrics() {
                    let mut r = registry_acc.lock().unwrap_or_else(PoisonError::into_inner);
                    r.merge(m);
                }
            }
            if telemetry {
                if let Some(mem) = sim.take_telemetry_sink().and_then(MemorySink::recover) {
                    let path = events_dir.join(format!("{seed}.jsonl"));
                    if let Err(e) = write_events_to_path(&path, mem.events()) {
                        eprintln!("warning: telemetry stream for seed {seed} not written: {e}");
                    }
                }
            }
            result
        }
    };

    let run = run_trials_supervised_with_manifest_observed(
        spec.trials,
        cfg.trial_threads,
        spec.seed_base,
        &cfg.supervisor,
        &mut manifest,
        progress,
        trial_fn,
    )
    .map_err(|e| format!("trial fleet failed: {e}"))?;

    write_artifacts(&job_dir, spec, &run).map_err(|e| format!("writing artifacts: {e}"))?;
    let counters = *counters_acc.lock().unwrap_or_else(PoisonError::into_inner);
    let registry = cfg.collect_spans.then(|| {
        registry_acc
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    });
    Ok(JobReport {
        run,
        counters,
        registry,
    })
}

/// Formats an `f64` for the result JSON (always finite here).
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:?}")
    }
}

/// Writes `trials.jsonl` (seed-ordered, byte-stable across resumes) and
/// `result.json`.
fn write_artifacts(job_dir: &Path, spec: &JobSpec, run: &ShardedRun) -> io::Result<()> {
    let mut trials = String::new();
    let mut completed: Vec<RunResult> = Vec::with_capacity(run.results.len());
    for (i, slot) in run.results.iter().enumerate() {
        if let Some(result) = slot {
            trials.push_str(&trial_line(spec.seed_base + i as u64, result));
            trials.push('\n');
            completed.push(result.clone());
        }
    }
    std::fs::write(job_dir.join("trials.jsonl"), trials)?;

    let summary = Summary::from_results(&completed);
    let result_json = format!(
        "{{\"id\":\"{}\",\"trials\":{},\"resumed\":{},\"complete\":{},\"fleet\":{},\"summary\":{{\"trials\":{},\"success_rate\":{},\"mean_rounds\":{},\"std_rounds\":{},\"min_rounds\":{},\"median_rounds\":{},\"p95_rounds\":{},\"max_rounds\":{},\"mean_transmissions\":{}}}}}\n",
        spec.id,
        spec.trials,
        run.resumed,
        run.complete(),
        run.summary.to_json(),
        summary.trials,
        fmt_f64(summary.success_rate),
        fmt_f64(summary.mean_rounds),
        fmt_f64(summary.std_rounds),
        summary.min_rounds,
        fmt_f64(summary.median_rounds),
        fmt_f64(summary.p95_rounds),
        summary.max_rounds,
        fmt_f64(summary.mean_transmissions),
    );
    std::fs::write(job_dir.join("result.json"), result_json)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("fading-server-test")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn drain_runs_submitted_jobs_and_writes_artifacts() {
        let root = tmp_root("drain");
        let server = Server::open(&root, ServerConfig::default()).unwrap();
        let mut spec = JobSpec::example("drain-1");
        spec.trials = 3;
        spec.telemetry = true;
        server.queue().submit(&spec).unwrap();
        server.metrics().record_submitted();
        server.run(ExitPolicy::drain());

        assert_eq!(server.metrics().jobs_completed(), 1);
        assert!(server.queue().is_done("drain-1"));
        assert_eq!(server.job_state("drain-1"), JobState::Done);
        let job_dir = server.queue().job_dir("drain-1");
        let trials = std::fs::read_to_string(job_dir.join("trials.jsonl")).unwrap();
        assert_eq!(trials.lines().count(), 3);
        let result = std::fs::read_to_string(job_dir.join("result.json")).unwrap();
        assert!(result.contains("\"complete\":true"), "{result}");
        // Telemetry streamed one event file per trial seed.
        for i in 0..3 {
            let seed = spec.seed_base + i;
            assert!(job_dir.join("events").join(format!("{seed}.jsonl")).exists());
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn invalid_specs_are_rejected_into_failed() {
        let root = tmp_root("reject");
        let server = Server::open(&root, ServerConfig::default()).unwrap();
        std::fs::write(
            server.queue().incoming_dir().join("broken.json"),
            "{\"id\":\"broken\",\"n\":1}\n",
        )
        .unwrap();
        server.run(ExitPolicy::drain());
        assert!(server.queue().is_failed("broken"));
        assert_eq!(server.job_state("broken"), JobState::Failed);
        let err = std::fs::read_to_string(server.queue().failed_dir().join("broken.error")).unwrap();
        assert!(!err.trim().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn hub_subscribers_see_seed_ordered_progress_and_lifecycle() {
        let root = tmp_root("watch-unit");
        let server = Server::open(&root, ServerConfig::default()).unwrap();
        let sub = server.hub().subscribe(Subscription::watch_all());
        let mut spec = JobSpec::example("w1");
        spec.trials = 3;
        server.queue().submit(&spec).unwrap();
        server.run(ExitPolicy::drain());

        let lines = sub.drain();
        assert!(lines[0].contains("\"event\":\"job_started\""), "{lines:?}");
        assert!(
            lines.last().unwrap().contains("\"event\":\"job_done\""),
            "{lines:?}"
        );
        // With the default single trial thread, trial events arrive in
        // strict seed order: started/finished pairs for each seed.
        let trials: Vec<ProgressEvent> = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"trial_"))
            .map(|l| ProgressEvent::from_json(l).expect("spliced lines parse"))
            .collect();
        assert_eq!(trials.len(), 6);
        for (i, pair) in trials.chunks(2).enumerate() {
            let seed = spec.seed_base + i as u64;
            assert!(
                matches!(pair[0], ProgressEvent::TrialStarted { seed: s } if s == seed),
                "{pair:?}"
            );
            assert!(
                matches!(pair[1], ProgressEvent::TrialFinished { seed: s, .. } if s == seed),
                "{pair:?}"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn job_results_are_deterministic_across_reruns() {
        let cfg = ServerConfig::default();
        let root_a = tmp_root("det-a");
        let root_b = tmp_root("det-b");
        let mut spec = JobSpec::example("det");
        spec.trials = 4;
        for root in [&root_a, &root_b] {
            let server = Server::open(root, cfg.clone()).unwrap();
            server.queue().submit(&spec).unwrap();
            server.run(ExitPolicy::drain());
        }
        let a = std::fs::read(JobQueue::open(&root_a).unwrap().job_dir("det").join("trials.jsonl"))
            .unwrap();
        let b = std::fs::read(JobQueue::open(&root_b).unwrap().job_dir("det").join("trials.jsonl"))
            .unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same spec, byte-identical trials.jsonl");
        std::fs::remove_dir_all(&root_a).ok();
        std::fs::remove_dir_all(&root_b).ok();
    }
}
