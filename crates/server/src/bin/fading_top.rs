//! `fading-top` — a live terminal dashboard over a running fading-server.
//!
//! ```text
//! fading-top --addr 127.0.0.1:40123 [--interval-ms 500] [--frames N] [--plain]
//! fading-top --demo [--frames N]
//! ```
//!
//! Connects to the server's control socket, sends `{"cmd":"watch"}`, and
//! repaints a [`Dashboard`] from the streamed events: queue depths,
//! per-job progress bars, tier mix, rate sparklines, and recent SLO
//! alerts. `--frames N` exits after rendering N screens (for scripts and
//! tests); `--plain` skips the ANSI clear codes so output can be piped.
//! `--demo` renders a canned event sequence with no server at all.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use fading_server::top::Dashboard;

struct Args {
    addr: Option<String>,
    interval_ms: u64,
    frames: Option<u64>,
    plain: bool,
    demo: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fading-top --addr HOST:PORT [--interval-ms MS] [--frames N] [--plain]\n\
         \x20      fading-top --demo [--frames N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        interval_ms: 500,
        frames: None,
        plain: false,
        demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--interval-ms" => {
                args.interval_ms = value("--interval-ms").parse().unwrap_or_else(|_| usage());
            }
            "--frames" => args.frames = Some(value("--frames").parse().unwrap_or_else(|_| usage())),
            "--plain" => args.plain = true,
            "--demo" => args.demo = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

/// Canned stream: two jobs making progress, one frame, one alert — so the
/// dashboard can be eyeballed (and its transcript documented) offline.
fn demo_lines() -> Vec<String> {
    let mut lines = vec![
        "{\"event\":\"job_started\",\"job\":\"sweep-a\",\"t_ms\":10,\"trials\":6}".to_string(),
        "{\"event\":\"job_started\",\"job\":\"sweep-b\",\"t_ms\":12,\"trials\":4}".to_string(),
    ];
    for seed in 0..5u64 {
        lines.push(format!(
            "{{\"job\":\"sweep-a\",\"t_ms\":{},\"event\":\"trial_started\",\"seed\":{seed}}}",
            20 + seed * 10
        ));
        lines.push(format!(
            "{{\"job\":\"sweep-a\",\"t_ms\":{},\"event\":\"trial_finished\",\"seed\":{seed},\"rounds\":{},\"resolved\":true,\"retries\":0}}",
            25 + seed * 10,
            30 + seed * 7
        ));
    }
    lines.push(
        "{\"job\":\"sweep-b\",\"t_ms\":40,\"event\":\"trial_timed_out\",\"seed\":0,\"timeout_ms\":50,\"retries\":1}"
            .to_string(),
    );
    lines.push(
        "{\"event\":\"frame\",\"t_ms\":500,\"dt_ms\":250,\"d_trials\":5,\"d_trial_rounds\":180,\
         \"d_retried\":1,\"d_timed_out\":1,\"d_jobs_completed\":0,\"d_jobs_failed\":0,\
         \"d_engine_rounds\":180,\"d_farfield_rounds\":150,\"d_hierarchical_rounds\":0,\
         \"d_gain_cache_rounds\":20,\"d_exact_rounds\":10,\"d_instrumented_rounds\":0,\
         \"d_jammed_rounds\":0,\"d_fallback_listeners\":4,\"d_resolved_listeners\":96,\
         \"queue_depth\":2,\"jobs_in_flight\":2}"
            .to_string(),
    );
    lines.push(
        "{\"event\":\"alert\",\"rule\":\"timed_out_spike\",\"value\":12.0,\"threshold\":5.0,\"t_ms\":500}"
            .to_string(),
    );
    lines
}

fn main() -> ExitCode {
    let args = parse_args();
    let width = 72;

    if args.demo {
        let mut dash = Dashboard::new();
        for line in demo_lines() {
            dash.apply_line(&line);
        }
        let frames = args.frames.unwrap_or(1);
        for _ in 0..frames {
            print!("{}", dash.render(width, !args.plain && frames > 1));
            if frames > 1 {
                std::thread::sleep(Duration::from_millis(args.interval_ms));
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(addr) = args.addr.as_deref() else {
        eprintln!("--addr is required (or --demo)");
        usage();
    };
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(e) => {
            eprintln!("cannot clone socket: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stream.write_all(b"{\"cmd\":\"watch\"}\n").is_err() {
        eprintln!("cannot send watch request to {addr}");
        return ExitCode::FAILURE;
    }

    // Reader thread: socket lines → channel; the main loop repaints on a
    // timer so a quiet stream still refreshes the uptime/queue header.
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
        // Closing the channel tells the render loop the server hung up.
    });

    let mut dash = Dashboard::new();
    let mut painted = 0u64;
    loop {
        let deadline = std::time::Instant::now() + Duration::from_millis(args.interval_ms);
        loop {
            let now = std::time::Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                break;
            };
            match rx.recv_timeout(left) {
                Ok(line) => {
                    if !line.trim().is_empty() {
                        dash.apply_line(&line);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    print!("{}", dash.render(width, !args.plain));
                    println!("server closed the stream");
                    return ExitCode::SUCCESS;
                }
            }
        }
        print!("{}", dash.render(width, !args.plain));
        let _ = std::io::stdout().flush();
        painted += 1;
        if let Some(limit) = args.frames {
            if painted >= limit {
                return ExitCode::SUCCESS;
            }
        }
    }
}
