//! `fading-server` — the simulation job server binary.
//!
//! ```text
//! fading-server --queue <dir> [--addr 127.0.0.1:0] [--metrics-addr 127.0.0.1:0]
//!               [--workers N] [--trial-threads N] [--poll-ms MS]
//!               [--drain] [--idle-exit-ms MS] [--collect-spans]
//!               [--monitor-ms MS] [--slo-fallback-max F]
//!               [--slo-timeout-spike PER_MIN] [--slo-queue-max N]
//! ```
//!
//! When `--addr` is given the monitor thread starts automatically (at
//! `--monitor-ms`, default 250 ms) so `watch` connections receive
//! time-series frames; the `--slo-*` flags arm the corresponding watch
//! rules, whose alerts reach both the stream and the Prometheus scrape.
//!
//! On startup the server re-enqueues any spec stranded in `running/` by
//! a previous incarnation (their manifests make the re-run skip finished
//! trials), then announces its listeners on stdout:
//!
//! ```text
//! RECOVERED 2
//! LISTEN 127.0.0.1:40123
//! METRICS 127.0.0.1:40124
//! READY
//! ```
//!
//! so scripts can parse the ephemeral ports. `--drain` exits once the
//! queue is empty; `--idle-exit-ms` exits after that much continuous
//! idleness (both for CI). A first SIGINT/SIGTERM finishes in-flight
//! jobs and exits cleanly with code 130; a second forces immediate exit.

use std::process::ExitCode;
use std::time::Duration;

use fading_server::{interrupt, ExitPolicy, MonitorConfig, Server, ServerConfig, SloRules};

struct Args {
    queue: Option<String>,
    addr: Option<String>,
    metrics_addr: Option<String>,
    workers: usize,
    trial_threads: usize,
    poll_ms: u64,
    drain: bool,
    idle_exit_ms: Option<u64>,
    collect_spans: bool,
    selftest_interrupt: bool,
    monitor_ms: Option<u64>,
    slo: SloRules,
}

fn usage() -> ! {
    eprintln!(
        "usage: fading-server --queue <dir> [--addr HOST:PORT] [--metrics-addr HOST:PORT]\n\
         \x20                    [--workers N] [--trial-threads N] [--poll-ms MS]\n\
         \x20                    [--drain] [--idle-exit-ms MS] [--collect-spans]\n\
         \x20                    [--monitor-ms MS] [--slo-fallback-max F]\n\
         \x20                    [--slo-timeout-spike PER_MIN] [--slo-queue-max N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        queue: None,
        addr: None,
        metrics_addr: None,
        workers: 1,
        trial_threads: 1,
        poll_ms: 20,
        drain: false,
        idle_exit_ms: None,
        collect_spans: false,
        selftest_interrupt: false,
        monitor_ms: None,
        slo: SloRules::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage();
            })
        };
        match flag.as_str() {
            "--queue" => args.queue = Some(value("--queue")),
            "--addr" => args.addr = Some(value("--addr")),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--trial-threads" => {
                args.trial_threads = parse_num(&value("--trial-threads"), "--trial-threads");
            }
            "--poll-ms" => args.poll_ms = parse_num(&value("--poll-ms"), "--poll-ms"),
            "--idle-exit-ms" => {
                args.idle_exit_ms = Some(parse_num(&value("--idle-exit-ms"), "--idle-exit-ms"));
            }
            "--monitor-ms" => {
                args.monitor_ms = Some(parse_num(&value("--monitor-ms"), "--monitor-ms"));
            }
            "--slo-fallback-max" => {
                args.slo.fallback_fraction_max =
                    Some(parse_num(&value("--slo-fallback-max"), "--slo-fallback-max"));
            }
            "--slo-timeout-spike" => {
                args.slo.timed_out_per_min_max =
                    Some(parse_num(&value("--slo-timeout-spike"), "--slo-timeout-spike"));
            }
            "--slo-queue-max" => {
                args.slo.queue_depth_max =
                    Some(parse_num(&value("--slo-queue-max"), "--slo-queue-max"));
            }
            "--drain" => args.drain = true,
            "--collect-spans" => args.collect_spans = true,
            "--selftest-interrupt" => args.selftest_interrupt = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{name}: invalid number {s:?}");
        usage();
    })
}

/// Test harness for the interrupt drill: install the handler, announce
/// readiness, then on the first signal start a deliberately slow "flush"
/// so the test can land a second signal mid-flush and observe the forced
/// fast exit (the handler calls `_exit(130)` directly).
fn selftest_interrupt() -> ExitCode {
    interrupt::install();
    println!("READY");
    while !interrupt::interrupted() {
        std::thread::sleep(Duration::from_millis(5));
    }
    if interrupt::claim_flush() {
        println!("FLUSH-BEGIN");
        // Long enough for the drill to deliver the second signal.
        std::thread::sleep(Duration::from_millis(2000));
        println!("FLUSH-END");
    }
    ExitCode::from(u8::try_from(interrupt::INTERRUPT_EXIT_CODE).unwrap_or(130))
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.selftest_interrupt {
        return selftest_interrupt();
    }
    let Some(queue_root) = args.queue.as_deref() else {
        eprintln!("--queue is required");
        usage();
    };

    let cfg = ServerConfig {
        workers: args.workers.max(1),
        trial_threads: args.trial_threads.max(1),
        poll_interval: Duration::from_millis(args.poll_ms.max(1)),
        collect_spans: args.collect_spans,
        ..ServerConfig::default()
    };
    let server = match Server::open(std::path::Path::new(queue_root), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open queue at {queue_root}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match server.recover_stranded() {
        Ok(n) => println!("RECOVERED {n}"),
        Err(e) => {
            eprintln!("stranded-spec recovery failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(addr) = args.addr.as_deref() {
        match server.listen(addr) {
            Ok(local) => println!("LISTEN {local}"),
            Err(e) => {
                eprintln!("cannot listen on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(addr) = args.metrics_addr.as_deref() {
        match server.serve_metrics(addr) {
            Ok(local) => println!("METRICS {local}"),
            Err(e) => {
                eprintln!("cannot serve metrics on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Start the monitor whenever the control socket is up (watchers need
    // frames) or the operator asked for it / armed SLO rules explicitly.
    if args.addr.is_some() || args.monitor_ms.is_some() || !args.slo.is_empty() {
        server.start_monitor(MonitorConfig {
            interval: Duration::from_millis(args.monitor_ms.unwrap_or(250).max(10)),
            rules: args.slo,
            ..MonitorConfig::default()
        });
    }
    println!("READY");

    let exit = ExitPolicy {
        drain: args.drain,
        idle_exit: args.idle_exit_ms.map(Duration::from_millis),
    };
    server.run(exit);

    if interrupt::interrupted() {
        if interrupt::claim_flush() {
            eprintln!("interrupted; in-flight jobs finished, exiting");
        }
        return ExitCode::from(u8::try_from(interrupt::INTERRUPT_EXIT_CODE).unwrap_or(130));
    }
    ExitCode::SUCCESS
}
