//! Server-wide metrics, aggregated across jobs and served as Prometheus
//! text.
//!
//! The scrape body is composed from the existing `obs::export` writers —
//! [`counters_to_prometheus`] for the merged engine counters,
//! [`registry_to_prometheus`] for the merged span histograms — plus
//! service-level series rendered here in the same format: job/trial
//! tallies, the [`FleetSummary`] supervision counters, queue-depth and
//! in-flight gauges, and a job-latency [`Histogram`]. Everything round-
//! trips through the paired [`parse_prometheus`] parser, which CI uses to
//! check the scrape.
//!
//! [`parse_prometheus`]: fading_cr::sim::obs::export::prometheus::parse_prometheus

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use fading_cr::sim::obs::export::prometheus::{counters_to_prometheus, registry_to_prometheus};
use fading_cr::sim::obs::timeseries::TsSample;
use fading_cr::sim::obs::{EngineCounters, ProgressEvent};
use fading_cr::sim::recover::FleetSummary;
use fading_cr::sim::telemetry::{Histogram, MetricsRegistry};

use crate::protocol::json_escape;

/// Aggregated service metrics behind one lock (server threads record,
/// the scrape endpoint renders).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_failed: u64,
    jobs_rejected: u64,
    trials_completed: u64,
    trials_resumed: u64,
    fleet: FleetSummary,
    counters: EngineCounters,
    registry: MetricsRegistry,
    job_latency_ms: Histogram,
    queue_depth: u64,
    jobs_in_flight: u64,
    // Live trial-granularity counters fed by `record_progress` as events
    // happen, not at job completion — these make the monitor's
    // time-series frames move while a big fleet is still running.
    live_trials: u64,
    live_trial_rounds: u64,
    live_retried: u64,
    live_timed_out: u64,
    /// SLO alerts fired, keyed by rule name.
    alerts: BTreeMap<String, u64>,
    /// Watch lines dropped against slow subscribers (mirrors the hub).
    watch_dropped: u64,
}

impl ServerMetrics {
    /// A fresh, all-zero tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a spec accepted into the queue.
    pub fn record_submitted(&self) {
        self.lock().jobs_submitted += 1;
    }

    /// Records a spec rejected before execution (parse/validation).
    pub fn record_rejected(&self) {
        self.lock().jobs_rejected += 1;
    }

    /// Records a worker picking a job up.
    pub fn record_started(&self) {
        self.lock().jobs_in_flight += 1;
    }

    /// Records a completed job: its submit→complete latency, supervision
    /// tally, resumed-trial count, and merged engine metrics.
    pub fn record_completed(
        &self,
        latency: Duration,
        fleet: &FleetSummary,
        resumed: u64,
        counters: &EngineCounters,
        registry: Option<&MetricsRegistry>,
    ) {
        let mut m = self.lock();
        m.jobs_completed += 1;
        m.jobs_in_flight = m.jobs_in_flight.saturating_sub(1);
        m.trials_completed += fleet.succeeded;
        m.trials_resumed += resumed;
        m.fleet.merge(fleet);
        m.counters.merge(counters);
        if let Some(r) = registry {
            m.registry.merge(r);
        }
        m.job_latency_ms.record(latency.as_secs_f64() * 1e3);
    }

    /// Records a job that errored during execution.
    pub fn record_failed(&self) {
        let mut m = self.lock();
        m.jobs_failed += 1;
        m.jobs_in_flight = m.jobs_in_flight.saturating_sub(1);
    }

    /// Updates the queue-depth gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        self.lock().queue_depth = depth;
    }

    /// Records one live trial-progress event (called from the progress
    /// sink on every event of every running job).
    pub fn record_progress(&self, event: &ProgressEvent) {
        let mut m = self.lock();
        match event {
            ProgressEvent::TrialStarted { .. } => {}
            ProgressEvent::TrialRetried { .. } => m.live_retried += 1,
            ProgressEvent::TrialFinished { rounds, .. } => {
                m.live_trials += 1;
                m.live_trial_rounds += rounds;
            }
            ProgressEvent::TrialTimedOut { .. } => {
                m.live_trials += 1;
                m.live_timed_out += 1;
            }
            ProgressEvent::TrialPoisoned { .. } => m.live_trials += 1,
        }
    }

    /// Records one fired SLO alert under its rule name.
    pub fn record_alert(&self, rule: &str) {
        *self.lock().alerts.entry(rule.to_string()).or_insert(0) += 1;
    }

    /// Mirrors the hub's total of lines dropped against slow watch
    /// subscribers (monotonic; the monitor refreshes it each tick).
    pub fn set_watch_dropped(&self, total: u64) {
        self.lock().watch_dropped = total;
    }

    /// Snapshots everything a time-series frame needs, stamped `t_ms`.
    /// Trial counters are live (from `record_progress`); engine-tier
    /// counters advance when jobs complete and merge their
    /// [`EngineCounters`].
    #[must_use]
    pub fn ts_sample(&self, t_ms: u64) -> TsSample {
        let m = self.lock();
        let mut s = TsSample::at(t_ms);
        s.trials = m.live_trials;
        s.trial_rounds = m.live_trial_rounds;
        s.retried = m.live_retried;
        s.timed_out = m.live_timed_out;
        s.jobs_completed = m.jobs_completed;
        s.jobs_failed = m.jobs_failed;
        s.observe_counters(&m.counters);
        s.queue_depth = m.queue_depth;
        s.jobs_in_flight = m.jobs_in_flight;
        s
    }

    /// Upper bounds on the p50/p95/p99 job latencies in milliseconds,
    /// `None` until a job has completed.
    #[must_use]
    pub fn latency_quantiles(&self) -> Option<(f64, f64, f64)> {
        let m = self.lock();
        Some((
            m.job_latency_ms.quantile_upper_bound(0.50)?,
            m.job_latency_ms.quantile_upper_bound(0.95)?,
            m.job_latency_ms.quantile_upper_bound(0.99)?,
        ))
    }

    /// Completed-job count (used by pollers and the idle-exit check).
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.lock().jobs_completed
    }

    /// Failed-job count.
    #[must_use]
    pub fn jobs_failed(&self) -> u64 {
        self.lock().jobs_failed
    }

    /// In-flight job count.
    #[must_use]
    pub fn jobs_in_flight(&self) -> u64 {
        self.lock().jobs_in_flight
    }

    /// Renders the full scrape body (see the module docs for what's in
    /// it). The output parses with `parse_prometheus`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let m = self.lock();
        let mut out = String::with_capacity(4096);

        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "fading_jobs_submitted_total",
            "Specs accepted into the queue.",
            m.jobs_submitted,
        );
        counter(
            "fading_jobs_completed_total",
            "Jobs that ran to completion.",
            m.jobs_completed,
        );
        counter(
            "fading_jobs_failed_total",
            "Jobs that errored during execution.",
            m.jobs_failed,
        );
        counter(
            "fading_jobs_rejected_total",
            "Submissions rejected before execution.",
            m.jobs_rejected,
        );
        counter(
            "fading_trials_completed_total",
            "Trials completed across all jobs.",
            m.trials_completed,
        );
        counter(
            "fading_trials_resumed_total",
            "Trials satisfied from manifests without re-running.",
            m.trials_resumed,
        );
        counter(
            "fading_fleet_trials_total",
            "Supervised trials tallied (FleetSummary.trials).",
            m.fleet.trials,
        );
        counter(
            "fading_fleet_succeeded_total",
            "Supervised trials that succeeded (FleetSummary.succeeded).",
            m.fleet.succeeded,
        );
        counter(
            "fading_fleet_retried_total",
            "Trial retries performed (FleetSummary.retried).",
            m.fleet.retried,
        );
        counter(
            "fading_fleet_timed_out_total",
            "Trials that hit the watchdog timeout (FleetSummary.timed_out).",
            m.fleet.timed_out,
        );
        counter(
            "fading_fleet_poisoned_total",
            "Trials that exhausted retries panicking (FleetSummary.poisoned).",
            m.fleet.poisoned,
        );

        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "fading_queue_depth",
            "Unclaimed submissions in the queue.",
            m.queue_depth,
        );
        gauge(
            "fading_jobs_in_flight",
            "Jobs currently executing.",
            m.jobs_in_flight,
        );

        let _ = writeln!(
            out,
            "# HELP fading_watch_dropped_total Stream lines dropped against slow watch subscribers."
        );
        let _ = writeln!(out, "# TYPE fading_watch_dropped_total counter");
        let _ = writeln!(out, "fading_watch_dropped_total {}", m.watch_dropped);
        let _ = writeln!(out, "# HELP fading_alerts_total SLO alerts fired, by rule.");
        let _ = writeln!(out, "# TYPE fading_alerts_total counter");
        for (rule, count) in &m.alerts {
            let _ = writeln!(
                out,
                "fading_alerts_total{{rule=\"{}\"}} {count}",
                json_escape(rule)
            );
        }

        out.push_str(&fading_cr::sim::obs::export::prometheus::histogram_to_prometheus(
            "fading_job_latency_ms",
            "Submit-to-complete latency per job, milliseconds.",
            &m.job_latency_ms,
        ));
        out.push_str(&counters_to_prometheus(&m.counters));
        out.push_str(&registry_to_prometheus(&m.registry));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_cr::sim::obs::export::prometheus::parse_prometheus;

    fn sample(samples: &[fading_cr::sim::obs::export::prometheus::PromSample], name: &str) -> f64 {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    }

    #[test]
    fn scrape_parses_with_paired_parser_and_tallies() {
        let metrics = ServerMetrics::new();
        metrics.record_submitted();
        metrics.record_submitted();
        metrics.record_started();
        let mut fleet = FleetSummary::default();
        fleet.trials = 4;
        fleet.succeeded = 4;
        metrics.record_completed(
            Duration::from_millis(12),
            &fleet,
            1,
            &EngineCounters::default(),
            None,
        );
        metrics.record_started();
        metrics.record_failed();
        metrics.set_queue_depth(5);

        let text = metrics.render_prometheus();
        let samples = parse_prometheus(&text).expect("scrape must parse");
        assert_eq!(sample(&samples, "fading_jobs_submitted_total"), 2.0);
        assert_eq!(sample(&samples, "fading_jobs_completed_total"), 1.0);
        assert_eq!(sample(&samples, "fading_jobs_failed_total"), 1.0);
        assert_eq!(sample(&samples, "fading_queue_depth"), 5.0);
        assert_eq!(sample(&samples, "fading_jobs_in_flight"), 0.0);
        assert_eq!(sample(&samples, "fading_fleet_succeeded_total"), 4.0);
        assert_eq!(sample(&samples, "fading_trials_resumed_total"), 1.0);
        assert_eq!(sample(&samples, "fading_job_latency_ms_count"), 1.0);
    }

    #[test]
    fn progress_events_feed_live_counters_and_samples() {
        let metrics = ServerMetrics::new();
        assert!(metrics.latency_quantiles().is_none());
        metrics.record_progress(&ProgressEvent::TrialStarted { seed: 1 });
        metrics.record_progress(&ProgressEvent::TrialFinished {
            seed: 1,
            rounds: 40,
            resolved: true,
            retries: 0,
        });
        metrics.record_progress(&ProgressEvent::TrialRetried { seed: 2, retries: 1 });
        metrics.record_progress(&ProgressEvent::TrialTimedOut {
            seed: 2,
            timeout_ms: 50,
            retries: 1,
        });
        metrics.set_queue_depth(3);

        let s = metrics.ts_sample(500);
        assert_eq!(s.t_ms, 500);
        assert_eq!(s.trials, 2);
        assert_eq!(s.trial_rounds, 40);
        assert_eq!(s.retried, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.queue_depth, 3);

        metrics.record_completed(
            Duration::from_millis(20),
            &FleetSummary::default(),
            0,
            &EngineCounters::default(),
            None,
        );
        let (p50, p95, p99) = metrics.latency_quantiles().expect("one job recorded");
        assert!(p50 >= 20.0 && p95 >= p50 && p99 >= p95, "{p50} {p95} {p99}");
    }

    #[test]
    fn alerts_and_watch_drops_reach_the_scrape() {
        let metrics = ServerMetrics::new();
        metrics.record_alert("queue_depth");
        metrics.record_alert("queue_depth");
        metrics.record_alert("fallback_fraction");
        metrics.set_watch_dropped(7);

        let text = metrics.render_prometheus();
        let samples = parse_prometheus(&text).expect("scrape must parse");
        assert_eq!(sample(&samples, "fading_watch_dropped_total"), 7.0);
        let alerts: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "fading_alerts_total")
            .collect();
        assert_eq!(alerts.len(), 2);
        assert_eq!(
            alerts
                .iter()
                .find(|s| s.label("rule") == Some("queue_depth"))
                .map(|s| s.value),
            Some(2.0)
        );
    }
}
