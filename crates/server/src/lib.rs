//! Simulation-as-a-service: a persistent job server over the fading-
//! channel simulator.
//!
//! The crate turns the library's batch entry points into a long-running
//! service. Clients drop [`JobSpec`](fading_cr::jobspec::JobSpec) files
//! into a queue directory (or push them over a local JSONL socket); the
//! [`server`] claims each spec, validates it into a `Scenario`, shards
//! its trials across a supervised worker pool with a per-job resume
//! manifest, streams per-trial telemetry into the job's output
//! directory, and serves aggregate Prometheus metrics on a scrape
//! endpoint.
//!
//! Module map:
//!
//! - [`queue`] — the atomic on-disk job queue (incoming/running/done/
//!   failed + per-job output dirs).
//! - [`protocol`] — the JSONL socket request/response framing.
//! - [`server`] — the worker pool, job execution, and the socket and
//!   metrics listeners.
//! - [`metrics`] — service-level tallies rendered as Prometheus text.
//! - [`stream`] — the live-observability fan-out: bounded subscriber
//!   queues behind `subscribe`/`watch`, slow-consumer drop-and-count,
//!   and edge-triggered SLO watch rules.
//! - [`top`] — the `fading-top` terminal dashboard renderer.
//! - [`interrupt`] — process-global idempotent SIGINT/SIGTERM handling
//!   (the one place in the workspace allowed to touch `unsafe`).
//!
//! Crash safety is layered: a SIGKILL mid-fleet loses only in-flight
//! trials (the manifest has everything finished), the spec itself stays
//! in `running/` and is re-enqueued on restart, and the re-run produces
//! byte-identical `trials.jsonl` output because results are recorded
//! seed-ordered from deterministic per-seed RNG streams.

#![deny(unsafe_code)] // narrowly allowed inside `interrupt` only
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::missing_panics_doc)]
#![allow(clippy::cast_precision_loss)]

pub mod interrupt;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stream;
pub mod top;

pub use metrics::ServerMetrics;
pub use protocol::{JobState, Request};
pub use queue::{JobQueue, StateDepths};
pub use server::{ExitPolicy, JobReport, MonitorConfig, Server, ServerConfig};
pub use stream::{Alert, EventHub, SloRules, SloWatch, Subscriber, Subscription};
