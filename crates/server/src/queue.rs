//! The on-disk job queue.
//!
//! A queue root holds five well-known directories:
//!
//! ```text
//! <root>/incoming/<id>.json   submitted specs, one JSON line each
//! <root>/running/<id>.json    specs a worker has claimed
//! <root>/done/<id>.json       specs whose job completed
//! <root>/failed/<id>.json     specs rejected or whose job errored
//! <root>/jobs/<id>/           per-job outputs (manifest, trials, result)
//! ```
//!
//! Submission is atomic (write to a dot-tmp name, then rename), so a
//! polling server never reads a half-written spec. Claiming renames
//! `incoming/ → running/`, which doubles as the crash record: whatever is
//! in `running/` when the server restarts was in flight when it died and
//! is simply re-claimed — the per-job [`TrialManifest`] makes the re-run
//! skip every trial that already finished.
//!
//! [`TrialManifest`]: fading_cr::sim::recover::TrialManifest

use std::io;
use std::path::{Path, PathBuf};

use fading_cr::jobspec::JobSpec;

/// Whether a directory entry is a queued spec. Matching is deliberately
/// exact: the queue itself writes lowercase `<id>.json` names, and
/// dot-prefixed names are in-flight submit temporaries.
#[allow(clippy::case_sensitive_file_extension_comparisons)]
fn is_spec_name(name: &str) -> bool {
    name.ends_with(".json") && !name.starts_with('.')
}

/// Spec counts per lifecycle directory, as returned by
/// [`JobQueue::state_depths`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateDepths {
    /// Submitted, not yet claimed.
    pub incoming: u64,
    /// Claimed by a worker.
    pub running: u64,
    /// Completed successfully.
    pub done: u64,
    /// Rejected or errored.
    pub failed: u64,
}

/// Handle to a queue root (all five directories created on open).
#[derive(Debug, Clone)]
pub struct JobQueue {
    root: PathBuf,
}

impl JobQueue {
    /// Opens (creating if necessary) the queue rooted at `root`.
    ///
    /// # Errors
    ///
    /// Any directory-creation failure.
    pub fn open(root: &Path) -> io::Result<JobQueue> {
        let q = JobQueue {
            root: root.to_path_buf(),
        };
        for dir in [
            q.incoming_dir(),
            q.running_dir(),
            q.done_dir(),
            q.failed_dir(),
            q.jobs_dir(),
        ] {
            std::fs::create_dir_all(dir)?;
        }
        Ok(q)
    }

    /// The queue root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of not-yet-claimed submissions.
    #[must_use]
    pub fn incoming_dir(&self) -> PathBuf {
        self.root.join("incoming")
    }

    /// Directory of claimed, in-flight specs.
    #[must_use]
    pub fn running_dir(&self) -> PathBuf {
        self.root.join("running")
    }

    /// Directory of completed specs.
    #[must_use]
    pub fn done_dir(&self) -> PathBuf {
        self.root.join("done")
    }

    /// Directory of rejected or errored specs.
    #[must_use]
    pub fn failed_dir(&self) -> PathBuf {
        self.root.join("failed")
    }

    /// Parent directory of the per-job output directories.
    #[must_use]
    pub fn jobs_dir(&self) -> PathBuf {
        self.root.join("jobs")
    }

    /// The output directory for job `id` (created by the worker).
    #[must_use]
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.jobs_dir().join(id)
    }

    /// Submits a spec: writes `incoming/<id>.json` atomically.
    ///
    /// # Errors
    ///
    /// IO failures; `AlreadyExists` when a spec with this id is already
    /// queued or running or finished.
    pub fn submit(&self, spec: &JobSpec) -> io::Result<PathBuf> {
        let name = format!("{}.json", spec.id);
        for dir in [
            self.incoming_dir(),
            self.running_dir(),
            self.done_dir(),
            self.failed_dir(),
        ] {
            if dir.join(&name).exists() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("job id {:?} already present in {}", spec.id, dir.display()),
                ));
            }
        }
        let target = self.incoming_dir().join(&name);
        let tmp = self.incoming_dir().join(format!(".{name}.tmp"));
        std::fs::write(&tmp, format!("{}\n", spec.to_json()))?;
        std::fs::rename(&tmp, &target)?;
        Ok(target)
    }

    /// Claims the next submission (lexicographically first file name, so
    /// claiming order is stable): renames it into `running/` and returns
    /// the running path. `None` when the queue is empty.
    ///
    /// # Errors
    ///
    /// IO failures other than the claimed file disappearing underneath us
    /// (a concurrent claimant), which is retried.
    pub fn claim_next(&self) -> io::Result<Option<PathBuf>> {
        loop {
            let mut names: Vec<String> = Vec::new();
            for entry in std::fs::read_dir(self.incoming_dir())? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if is_spec_name(&name) {
                    names.push(name);
                }
            }
            let Some(name) = names.into_iter().min() else {
                return Ok(None);
            };
            let from = self.incoming_dir().join(&name);
            let to = self.running_dir().join(&name);
            match std::fs::rename(&from, &to) {
                Ok(()) => return Ok(Some(to)),
                // Lost the race to another claimant; look again.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Specs stranded in `running/` by a previous incarnation, oldest
    /// name first. The restarting server re-executes these before
    /// claiming new work; their manifests skip the finished trials.
    ///
    /// # Errors
    ///
    /// IO failures reading the directory.
    pub fn stranded(&self) -> io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(self.running_dir())? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if is_spec_name(&name) {
                paths.push(entry.path());
            }
        }
        paths.sort();
        Ok(paths)
    }

    /// Retires a running spec into `done/` (or `failed/`), recording the
    /// failure reason alongside when one is given.
    ///
    /// # Errors
    ///
    /// IO failures renaming or writing the error file.
    pub fn finish(&self, running: &Path, error: Option<&str>) -> io::Result<PathBuf> {
        let name = running
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "spec path has no name"))?;
        let dest_dir = if error.is_none() {
            self.done_dir()
        } else {
            self.failed_dir()
        };
        let dest = dest_dir.join(name);
        std::fs::rename(running, &dest)?;
        if let Some(msg) = error {
            let err_path = dest.with_extension("error");
            std::fs::write(err_path, format!("{msg}\n"))?;
        }
        Ok(dest)
    }

    /// Number of not-yet-claimed submissions (the queue-depth gauge).
    ///
    /// # Errors
    ///
    /// IO failures reading the directory.
    pub fn depth(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in std::fs::read_dir(self.incoming_dir())? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if is_spec_name(&name) {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Spec counts across all four lifecycle directories (the thick
    /// `stats` reply).
    ///
    /// # Errors
    ///
    /// IO failures reading any of the directories.
    pub fn state_depths(&self) -> io::Result<StateDepths> {
        let count = |dir: PathBuf| -> io::Result<u64> {
            let mut n = 0;
            for entry in std::fs::read_dir(dir)? {
                let name = entry?.file_name().to_string_lossy().into_owned();
                if is_spec_name(&name) {
                    n += 1;
                }
            }
            Ok(n)
        };
        Ok(StateDepths {
            incoming: count(self.incoming_dir())?,
            running: count(self.running_dir())?,
            done: count(self.done_dir())?,
            failed: count(self.failed_dir())?,
        })
    }

    /// Whether job `id` has retired into `done/`.
    #[must_use]
    pub fn is_done(&self, id: &str) -> bool {
        self.done_dir().join(format!("{id}.json")).exists()
    }

    /// Whether job `id` has retired into `failed/`.
    #[must_use]
    pub fn is_failed(&self, id: &str) -> bool {
        self.failed_dir().join(format!("{id}.json")).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("fading-server-queue-test")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn submit_claim_finish_lifecycle() {
        let root = tmp_root("lifecycle");
        let q = JobQueue::open(&root).unwrap();
        assert_eq!(q.depth().unwrap(), 0);
        q.submit(&JobSpec::example("b-second")).unwrap();
        q.submit(&JobSpec::example("a-first")).unwrap();
        assert_eq!(q.depth().unwrap(), 2);

        let claimed = q.claim_next().unwrap().unwrap();
        assert!(claimed.ends_with("running/a-first.json"), "{claimed:?}");
        assert_eq!(q.depth().unwrap(), 1);
        let spec = JobSpec::from_json(
            std::fs::read_to_string(&claimed).unwrap().trim(),
        )
        .unwrap();
        assert_eq!(spec.id, "a-first");

        q.finish(&claimed, None).unwrap();
        assert!(q.is_done("a-first"));
        let second = q.claim_next().unwrap().unwrap();
        assert_eq!(
            q.state_depths().unwrap(),
            StateDepths { incoming: 0, running: 1, done: 1, failed: 0 }
        );
        q.finish(&second, Some("boom")).unwrap();
        assert!(q.is_failed("b-second"));
        assert_eq!(
            q.state_depths().unwrap(),
            StateDepths { incoming: 0, running: 0, done: 1, failed: 1 }
        );
        let err = std::fs::read_to_string(q.failed_dir().join("b-second.error")).unwrap();
        assert_eq!(err, "boom\n");
        assert!(q.claim_next().unwrap().is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn duplicate_ids_are_rejected_across_states() {
        let root = tmp_root("dupes");
        let q = JobQueue::open(&root).unwrap();
        q.submit(&JobSpec::example("dup")).unwrap();
        let again = q.submit(&JobSpec::example("dup"));
        assert_eq!(again.unwrap_err().kind(), io::ErrorKind::AlreadyExists);
        let claimed = q.claim_next().unwrap().unwrap();
        assert_eq!(q.submit(&JobSpec::example("dup")).unwrap_err().kind(),
            io::ErrorKind::AlreadyExists, "running ids still reserved");
        q.finish(&claimed, None).unwrap();
        assert_eq!(q.submit(&JobSpec::example("dup")).unwrap_err().kind(),
            io::ErrorKind::AlreadyExists, "done ids still reserved");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stranded_running_specs_survive_reopen() {
        let root = tmp_root("stranded");
        let q = JobQueue::open(&root).unwrap();
        q.submit(&JobSpec::example("orphan")).unwrap();
        let claimed = q.claim_next().unwrap().unwrap();
        drop(q);
        // A "restart": reopen the same root and find the orphan.
        let q2 = JobQueue::open(&root).unwrap();
        let stranded = q2.stranded().unwrap();
        assert_eq!(stranded, vec![claimed]);
        std::fs::remove_dir_all(&root).ok();
    }
}
