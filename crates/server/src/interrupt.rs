//! Process-global, idempotent SIGINT/SIGTERM interception.
//!
//! This is the workspace's one home for signal handling; the bench
//! binaries re-export it (`fading_bench::interrupt`), so a server that
//! embeds an experiment harness — or any other layering of long-running
//! components — shares a single handler instead of fighting over
//! `signal(2)` registration. Three guarantees:
//!
//! 1. **Idempotent installation.** [`install`] registers the OS handler
//!    exactly once per process (guarded by a [`Once`]); every later call
//!    from any crate is a no-op, so nested components can all call it
//!    defensively.
//! 2. **Single flush.** Components that write partial output on shutdown
//!    gate the write on [`claim_flush`], which hands out exactly one
//!    token per process — the outermost and innermost layer can both have
//!    a flush path without the output being written twice.
//! 3. **Second signal forces exit.** The first SIGINT/SIGTERM only flips
//!    the [`interrupted`] flag: binaries poll it at safe points (never
//!    mid-trial, so determinism is untouched), flush, and exit with
//!    status [`INTERRUPT_EXIT_CODE`]. A *second* signal means the user is
//!    done waiting for that graceful path: the handler calls the
//!    async-signal-safe `_exit(130)` immediately rather than re-entering
//!    a flush that is evidently stuck.
//!
//! No external crates: the handler goes through the raw C `signal(2)`
//! entry point, declared here directly. The handler body is an atomic
//! swap plus (on the second signal) `_exit`, both async-signal-safe. On
//! non-unix targets installation is a no-op and [`interrupted`] never
//! fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static INSTALL: Once = Once::new();
static INTERRUPTED: AtomicBool = AtomicBool::new(false);
static FLUSH_CLAIMED: AtomicBool = AtomicBool::new(false);

/// Exit status conventionally reported by processes stopped by SIGINT.
pub const INTERRUPT_EXIT_CODE: i32 = 130;

/// `true` once a SIGINT or SIGTERM has been received (always `false` on
/// non-unix targets or before [`install`]).
#[must_use]
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Claims the process-wide shutdown-flush token: returns `true` exactly
/// once per process. Every component with an on-interrupt flush path must
/// gate it on this, so stacked components (server around an embedded
/// harness, harness around a probe) never write partial output twice.
#[must_use]
pub fn claim_flush() -> bool {
    !FLUSH_CLAIMED.swap(true, Ordering::SeqCst)
}

/// Installs the SIGINT/SIGTERM handler. Process-global and idempotent:
/// the first call from any crate registers the handler, every later call
/// is a no-op (no re-registration, no handler chaining). No-op off unix.
pub fn install() {
    INSTALL.call_once(imp::install);
}

#[cfg(unix)]
mod imp {
    use super::{Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // The only libc surface we need: `signal(2)` to register, `_exit(2)`
    // for the forced second-signal exit (async-signal-safe, unlike
    // `std::process::exit` which runs atexit handlers).
    #[allow(unsafe_code)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    extern "C" fn on_signal(_signum: i32) {
        if INTERRUPTED.swap(true, Ordering::SeqCst) {
            // Second signal: the graceful flush path is taking too long
            // (or is wedged). Exit now without re-entering it.
            #[allow(unsafe_code)]
            // SAFETY: `_exit` is async-signal-safe and never returns.
            unsafe {
                _exit(super::INTERRUPT_EXIT_CODE);
            }
        }
    }

    pub fn install() {
        #[allow(unsafe_code)]
        // SAFETY: `on_signal` only performs an atomic swap and possibly
        // `_exit`, both async-signal-safe; the handler pointer outlives
        // the process.
        unsafe {
            let handler = on_signal as *const () as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        // Installing from several layers (as server + embedded harness
        // do) must neither error nor flip the flag.
        install();
        install();
        install();
        assert!(!interrupted());
    }

    #[test]
    fn flush_token_is_handed_out_exactly_once() {
        // First claimant wins; every nested component after it skips its
        // own flush. (Process-global, hence a single test observing both
        // sides of the swap.)
        let first = claim_flush();
        let second = claim_flush();
        let third = claim_flush();
        assert!(first);
        assert!(!second);
        assert!(!third);
    }
}
