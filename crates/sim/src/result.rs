//! Run results and execution traces.

use serde::{Deserialize, Serialize};

use fading_channel::NodeId;

/// How much detail a simulation records per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Record nothing (fastest; the default).
    #[default]
    None,
    /// Record per-round aggregate counts ([`RoundRecord`] without ids).
    Counts,
    /// Record counts plus the full transmitter id list per round.
    Full,
}

/// Aggregate record of one simulated round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: u64,
    /// Number of nodes that **participated** in the round: active, awake
    /// (past any scheduled late wake-up), measured after the round's churn
    /// events were applied — exactly `transmitters + listeners`. For runs
    /// without late-wake churn this equals the active count at the start
    /// of the round.
    pub active_before: usize,
    /// Number of nodes that transmitted.
    pub transmitters: usize,
    /// Number of nodes knocked out (deactivated) by this round's receptions.
    pub knocked_out: usize,
    /// Transmitter ids (only at [`TraceLevel::Full`]).
    pub transmitter_ids: Option<Vec<NodeId>>,
}

/// The recorded history of a run, at the requested [`TraceLevel`].
///
/// Traces are bounded: a run that never resolves (and so hits its round
/// cap) would otherwise grow one record per round without limit at
/// [`TraceLevel::Full`]. The simulation stops recording after
/// [`Trace::DEFAULT_RECORD_CAP`] records (configurable via
/// [`Simulation::set_trace_capacity`]) with **keep-first** semantics — the
/// earliest rounds are the ones retained, since they carry the active-set
/// decay the analyses consume — and sets [`Trace::truncated`].
///
/// [`Simulation::set_trace_capacity`]: crate::Simulation::set_trace_capacity
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    rounds: Vec<RoundRecord>,
    truncated: bool,
}

impl Trace {
    /// Default maximum number of [`RoundRecord`]s retained per run.
    pub const DEFAULT_RECORD_CAP: usize = 65_536;

    /// Reassembles a trace from checkpointed parts (snapshot restore).
    pub(crate) fn from_parts(rounds: Vec<RoundRecord>, truncated: bool) -> Self {
        Trace { rounds, truncated }
    }

    /// Appends `record` unless `cap` records are already held, in which
    /// case the record is dropped and the trace is marked truncated.
    pub(crate) fn push_capped(&mut self, cap: usize, record: RoundRecord) {
        if self.rounds.len() < cap {
            self.rounds.push(record);
        } else {
            self.truncated = true;
        }
    }

    /// Per-round records, in order.
    #[must_use]
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// `true` if the run executed more rounds than the trace capacity, so
    /// later records were dropped (keep-first).
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

/// How a run ended, as an explicit enum (every run falls into exactly one
/// case — there is no silent third state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Some round had exactly one active transmitter.
    Resolved {
        /// The 1-based resolving round.
        round: u64,
        /// The solo transmitter, when known (always `Some` for results
        /// produced by a simulation run).
        winner: Option<NodeId>,
    },
    /// The round budget ran out before any round resolved.
    RoundCapExhausted {
        /// Rounds actually executed (the budget).
        rounds_executed: u64,
    },
}

impl RunOutcome {
    /// `true` iff contention was resolved.
    #[must_use]
    pub fn is_resolved(&self) -> bool {
        matches!(self, RunOutcome::Resolved { .. })
    }
}

/// The outcome of [`Simulation::run_until_resolved`].
///
/// [`Simulation::run_until_resolved`]: crate::Simulation::run_until_resolved
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    resolved_at: Option<u64>,
    rounds_executed: u64,
    initial_nodes: usize,
    final_active: usize,
    winner: Option<NodeId>,
    total_transmissions: u64,
    trace: Trace,
}

impl RunResult {
    pub(crate) fn new(
        resolved_at: Option<u64>,
        rounds_executed: u64,
        initial_nodes: usize,
        final_active: usize,
        winner: Option<NodeId>,
        total_transmissions: u64,
        trace: Trace,
    ) -> Self {
        RunResult {
            resolved_at,
            rounds_executed,
            initial_nodes,
            final_active,
            winner,
            total_transmissions,
            trace,
        }
    }

    /// `true` iff contention was resolved (some round had exactly one active
    /// transmitter) within the round budget.
    #[must_use]
    pub fn resolved(&self) -> bool {
        self.resolved_at.is_some()
    }

    /// The 1-based round in which contention was resolved, if it was.
    #[must_use]
    pub fn resolved_at(&self) -> Option<u64> {
        self.resolved_at
    }

    /// Rounds actually executed (equals `resolved_at` on success, or the
    /// budget on failure).
    #[must_use]
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Number of nodes at the start of the run.
    #[must_use]
    pub fn initial_nodes(&self) -> usize {
        self.initial_nodes
    }

    /// Number of nodes still active when the run ended.
    #[must_use]
    pub fn final_active(&self) -> usize {
        self.final_active
    }

    /// The node whose solo transmission resolved contention, if resolved.
    #[must_use]
    pub fn winner(&self) -> Option<NodeId> {
        self.winner
    }

    /// Total transmissions across all nodes and rounds — the run's energy
    /// cost in the standard unit-per-broadcast model (always tracked,
    /// independent of the trace level).
    #[must_use]
    pub fn total_transmissions(&self) -> u64 {
        self.total_transmissions
    }

    /// The recorded trace (empty at [`TraceLevel::None`]).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The run's ending as an explicit [`RunOutcome`]: either it resolved
    /// in a specific round, or it exhausted its round cap. Useful where a
    /// bare `Option<u64>` would be ambiguous about *why* there is no round.
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        match self.resolved_at {
            Some(round) => RunOutcome::Resolved {
                round,
                winner: self.winner,
            },
            None => RunOutcome::RoundCapExhausted {
                rounds_executed: self.rounds_executed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let mut trace = Trace::default();
        trace.push_capped(
            Trace::DEFAULT_RECORD_CAP,
            RoundRecord {
                round: 1,
                active_before: 4,
                transmitters: 2,
                knocked_out: 1,
                transmitter_ids: Some(vec![0, 3]),
            },
        );
        let r = RunResult::new(Some(5), 5, 4, 2, Some(3), 9, trace.clone());
        assert!(r.resolved());
        assert_eq!(r.resolved_at(), Some(5));
        assert_eq!(r.rounds_executed(), 5);
        assert_eq!(r.initial_nodes(), 4);
        assert_eq!(r.final_active(), 2);
        assert_eq!(r.winner(), Some(3));
        assert_eq!(r.total_transmissions(), 9);
        assert_eq!(r.trace(), &trace);
        assert_eq!(r.trace().len(), 1);
        assert!(!r.trace().is_empty());
    }

    #[test]
    fn unresolved_result() {
        let r = RunResult::new(None, 100, 10, 7, None, 0, Trace::default());
        assert!(!r.resolved());
        assert_eq!(r.resolved_at(), None);
        assert_eq!(r.winner(), None);
        assert!(r.trace().is_empty());
    }

    #[test]
    fn trace_level_default_is_none() {
        assert_eq!(TraceLevel::default(), TraceLevel::None);
    }

    #[test]
    fn push_capped_keeps_first_records_and_flags_truncation() {
        let rec = |round| RoundRecord {
            round,
            active_before: 2,
            transmitters: 2,
            knocked_out: 0,
            transmitter_ids: None,
        };
        let mut trace = Trace::default();
        assert!(!trace.truncated());
        for round in 1..=5 {
            trace.push_capped(3, rec(round));
        }
        assert_eq!(trace.len(), 3);
        assert!(trace.truncated());
        let kept: Vec<u64> = trace.rounds().iter().map(|r| r.round).collect();
        assert_eq!(kept, vec![1, 2, 3], "keep-first semantics");
        // Under the cap, the flag stays clear.
        let mut small = Trace::default();
        small.push_capped(3, rec(1));
        assert!(!small.truncated());
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn outcome_distinguishes_resolution_from_cap_exhaustion() {
        let resolved = RunResult::new(Some(5), 5, 4, 2, Some(3), 9, Trace::default());
        assert_eq!(
            resolved.outcome(),
            RunOutcome::Resolved { round: 5, winner: Some(3) }
        );
        assert!(resolved.outcome().is_resolved());

        let capped = RunResult::new(None, 100, 10, 7, None, 0, Trace::default());
        assert_eq!(
            capped.outcome(),
            RunOutcome::RoundCapExhausted { rounds_executed: 100 }
        );
        assert!(!capped.outcome().is_resolved());
    }
}
