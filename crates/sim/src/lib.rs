//! # fading-sim
//!
//! A synchronous, round-based wireless network simulator for contention
//! resolution, driving node-local protocols over the channel models of
//! [`fading_channel`].
//!
//! The model follows Section 2 of *Contention Resolution on a Fading
//! Channel* (Fineman, Gilbert, Kuhn, Newport — PODC 2016): time is divided
//! into synchronous rounds; in each round a node either transmits at fixed
//! power or listens (half-duplex); reception is decided by the channel
//! model. The **contention resolution problem is solved in the first round
//! in which exactly one active node transmits**.
//!
//! * [`Protocol`] — the node-local state machine interface.
//! * [`Simulation`] — owns a deployment, a channel, and one protocol
//!   instance per node; steps rounds until resolution.
//! * [`RunResult`] / [`Trace`] — what happened, at selectable detail.
//! * [`montecarlo`] — seeded parallel trial running and summaries.
//! * [`faults`] — deterministic adversarial fault injection (jammers,
//!   noise bursts, churn, Gilbert–Elliott burst loss), attached to a run
//!   via [`Simulation::set_fault_plan`].
//! * [`telemetry`] — structured per-round observability: [`RoundEvent`]
//!   streams to pluggable [`TelemetrySink`]s, JSONL export, and a
//!   [`MetricsRegistry`] of latency/interference/knockout statistics,
//!   attached via [`Simulation::set_telemetry_sink`]. Attaching a sink
//!   never changes a run's outcome.
//! * [`obs`] — profiling-grade observability: a hand-rolled span
//!   [`Tracer`] over the step loop (attach via
//!   [`Simulation::set_tracer`]), unified [`EngineCounters`] for the
//!   resolve tiers and the far-field decision ladder
//!   ([`Simulation::engine_counters`]), and Prometheus / Chrome-trace /
//!   flamegraph exporters.
//! * [`recover`] — fault-tolerant execution: checksummed
//!   checkpoint/resume ([`Simulation::snapshot`] / [`Simulation::restore`]),
//!   supervised trials with panic isolation and a watchdog
//!   ([`montecarlo::run_trials_supervised`]), resume manifests
//!   ([`montecarlo::run_trials_with_manifest`]), and opt-in self-checking
//!   engines with graceful tier degradation
//!   ([`Simulation::set_self_check`]).
//!
//! Everything is deterministic given the master seed: node RNGs are derived
//! by SplitMix64 from `(seed, node id)`, the channel RNG from `seed`, and
//! fault injection from its own `seed` lane.
//!
//! # Example
//!
//! ```
//! use fading_channel::{SinrChannel, SinrParams};
//! use fading_geom::Deployment;
//! use fading_sim::{Action, Protocol, Reception, Simulation};
//! use rand::{rngs::SmallRng, Rng};
//!
//! /// The paper's algorithm in eight lines (the production version lives in
//! /// `fading-protocols`).
//! #[derive(Debug)]
//! struct Simple { active: bool }
//! impl Protocol for Simple {
//!     fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
//!         if rng.gen_bool(0.25) { Action::Transmit } else { Action::Listen }
//!     }
//!     fn feedback(&mut self, _round: u64, reception: &Reception) {
//!         if reception.is_message() { self.active = false; }
//!     }
//!     fn is_active(&self) -> bool { self.active }
//!     fn name(&self) -> &'static str { "simple" }
//! }
//!
//! let deployment = Deployment::uniform_square(32, 20.0, 1);
//! let channel = SinrChannel::new(SinrParams::default_single_hop());
//! let mut sim = Simulation::new(deployment, Box::new(channel), 99, |_id| {
//!     Box::new(Simple { active: true })
//! });
//! let result = sim.run_until_resolved(10_000);
//! assert!(result.resolved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod action;
pub mod faults;
pub mod montecarlo;
pub mod obs;
mod pool;
mod protocol;
pub mod recover;
mod result;
mod rng;
mod simulation;
pub mod telemetry;

pub use action::Action;
pub use faults::{FaultError, FaultPlan};
pub use obs::{
    EngineCounters, MemoryProgress, NoopProgress, ProgressEvent, ProgressSink, Rates,
    ResolvePath, SpanGuard, SpanRecord, TimeSeries, Tracer, TsFrame, TsSample,
};
pub use pool::StealPool;
pub use protocol::{Protocol, ProtocolStateError};
pub use recover::{
    FleetSummary, PanicKind, SimSnapshot, SnapshotError, SupervisedRun, SupervisorConfig,
    TrialManifest, TrialOutcome,
};
pub use result::{RoundRecord, RunOutcome, RunResult, Trace, TraceLevel};
pub use rng::{channel_rng, fault_rng, node_rng, self_check_rng, split_mix64};
pub use simulation::{SimError, Simulation, StepOutcome, HIERARCHICAL_AUTO_THRESHOLD};
pub use telemetry::{
    MemorySink, MetricsRegistry, NoopSink, RoundEvent, TelemetryDetail, TelemetrySink,
};

// Re-export the vocabulary types callers always need alongside the simulator.
pub use fading_channel::{ActiveInterference, Channel, GainCache, NodeId, Reception};
