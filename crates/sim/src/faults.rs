//! Composable, deterministic fault injection.
//!
//! A [`FaultPlan`] bundles every adversarial perturbation the simulator can
//! apply to a run:
//!
//! * **Jammers** ([`Jammer`]) — adversarial transmitters at fixed positions
//!   that are *not* nodes: they inject interference power into every
//!   listener's SINR denominator during scheduled burst rounds, but never
//!   count toward resolution. A jammer follows a periodic duty cycle and may
//!   carry a total energy *budget* (a cap on its lifetime active rounds),
//!   matching the bounded-adversary models of the jamming literature.
//! * **Noise bursts** ([`NoiseBurst`]) — intervals of rounds in which the
//!   ambient noise floor `N` is scaled by a factor; overlapping bursts
//!   multiply.
//! * **Churn** ([`ChurnEvent`]) — late wake-ups, crash-stop failures, and
//!   revivals of crashed nodes at scheduled rounds.
//! * **Burst loss** ([`GilbertElliott`]) — a channel-wide two-state Markov
//!   model that generalizes the i.i.d. drops of
//!   [`fading_channel::LossySinrChannel`]: the channel alternates between a
//!   *good* and a *bad* state with per-round transition probabilities, and
//!   each decoded message is dropped with the state's drop probability.
//!
//! Everything in a plan is a **pure function of the round number and the
//! run's master seed**: jammer and burst schedules are closed-form, churn is
//! an explicit event list, and the Gilbert–Elliott chain draws from a
//! dedicated [`fault_rng`](crate::fault_rng) lane. Attaching an *empty* plan
//! is therefore byte-identical to attaching no plan at all, and every
//! faulted run is reproducible across thread counts and gain-cache settings.
//!
//! # Example
//!
//! ```
//! use fading_geom::Point;
//! use fading_sim::faults::{ChurnEvent, FaultPlan, GilbertElliott, Jammer, NoiseBurst};
//!
//! let plan = FaultPlan::new()
//!     .with_jammer(Jammer::new(Point::new(5.0, 5.0), 1e9, 10, 8, 4, Some(40))?)
//!     .with_noise_burst(NoiseBurst::new(50, 20, 4.0)?)
//!     .with_churn(ChurnEvent::crash(30, 3)?)
//!     .with_churn(ChurnEvent::revive(60, 3)?)
//!     .with_loss(GilbertElliott::new(0.05, 0.25, 0.0, 0.8)?);
//! assert!(!plan.is_empty());
//! plan.validate_for(16)?;
//! # Ok::<(), fading_sim::faults::FaultError>(())
//! ```

use serde::{Deserialize, Serialize};

use fading_channel::NodeId;
use fading_geom::Point;
use rand::rngs::SmallRng;
use rand::Rng;

/// Why a fault-plan component or attachment was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A probability parameter was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A noise-scale factor was not finite and strictly positive.
    InvalidScale {
        /// Offending value.
        value: f64,
    },
    /// A jammer power was not finite and strictly positive.
    InvalidPower {
        /// Offending value.
        value: f64,
    },
    /// A jammer period was zero, or its burst length was zero or exceeded
    /// the period.
    InvalidDutyCycle {
        /// The period.
        period: u64,
        /// The burst length.
        burst_len: u64,
    },
    /// A schedule referenced round 0 (rounds are 1-based) or an empty
    /// burst.
    RoundZero,
    /// A churn event named a node id outside the deployment.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The deployment size.
        len: usize,
    },
    /// A fault plan was attached after the simulation had already stepped.
    PlanAttachedMidRun {
        /// The round count at the attempted attachment.
        round: u64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` must lie in [0, 1], got {value}")
            }
            FaultError::InvalidScale { value } => {
                write!(f, "noise scale must be finite and > 0, got {value}")
            }
            FaultError::InvalidPower { value } => {
                write!(f, "jammer power must be finite and > 0, got {value}")
            }
            FaultError::InvalidDutyCycle { period, burst_len } => {
                write!(
                    f,
                    "duty cycle needs 1 ≤ burst_len ≤ period, got burst_len {burst_len} of period {period}"
                )
            }
            FaultError::RoundZero => {
                write!(f, "fault schedules are 1-based: round/length must be ≥ 1")
            }
            FaultError::NodeOutOfRange { node, len } => {
                write!(f, "churn names node {node} but the deployment has {len} nodes")
            }
            FaultError::PlanAttachedMidRun { round } => {
                write!(f, "fault plan attached after {round} rounds; attach before stepping")
            }
        }
    }
}

impl std::error::Error for FaultError {}

fn check_probability(name: &'static str, value: f64) -> Result<(), FaultError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(FaultError::InvalidProbability { name, value })
    }
}

/// An adversarial jammer: a fixed-position interference source with a
/// periodic duty cycle and an optional lifetime energy budget.
///
/// During each of its active rounds the jammer adds
/// `channel.interferer_gain(position, node, power)` to every listener's
/// interference sum — for SINR-family channels that is the standard
/// path-loss gain `power / d^α`. A jammer is active in round `r` iff
///
/// 1. `r ≥ start`,
/// 2. `(r − start) mod period < burst_len`, and
/// 3. fewer than `budget` active rounds precede `r` (when a budget is set).
///
/// With `burst_len == period` the jammer is continuous from `start` until
/// its budget runs out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jammer {
    position: Point,
    power: f64,
    start: u64,
    period: u64,
    burst_len: u64,
    budget: Option<u64>,
}

impl Jammer {
    /// Creates a jammer at `position` transmitting with `power`, active
    /// from round `start` (1-based) for the first `burst_len` rounds of
    /// every `period`-round cycle, for at most `budget` total active rounds
    /// (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidPower`] unless `power` is finite and positive;
    /// [`FaultError::RoundZero`] if `start == 0`;
    /// [`FaultError::InvalidDutyCycle`] unless `1 ≤ burst_len ≤ period`.
    pub fn new(
        position: Point,
        power: f64,
        start: u64,
        period: u64,
        burst_len: u64,
        budget: Option<u64>,
    ) -> Result<Self, FaultError> {
        if !(power.is_finite() && power > 0.0) {
            return Err(FaultError::InvalidPower { value: power });
        }
        if start == 0 {
            return Err(FaultError::RoundZero);
        }
        if burst_len == 0 || burst_len > period {
            return Err(FaultError::InvalidDutyCycle { period, burst_len });
        }
        Ok(Jammer {
            position,
            power,
            start,
            period,
            burst_len,
            budget,
        })
    }

    /// A jammer that is active in **every** round from `start` on (no duty
    /// cycle, no budget).
    ///
    /// # Errors
    ///
    /// Same as [`Jammer::new`].
    pub fn continuous(position: Point, power: f64, start: u64) -> Result<Self, FaultError> {
        Jammer::new(position, power, start, 1, 1, None)
    }

    /// The jammer's fixed position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// The jammer's transmission power.
    #[must_use]
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Whether the jammer transmits in (1-based) round `round`.
    #[must_use]
    pub fn is_active(&self, round: u64) -> bool {
        if round < self.start {
            return false;
        }
        let t = round - self.start;
        let phase = t % self.period;
        if phase >= self.burst_len {
            return false;
        }
        match self.budget {
            None => true,
            // Active rounds spent before `round`: burst_len per completed
            // cycle plus the phase within the current burst.
            Some(b) => (t / self.period) * self.burst_len + phase < b,
        }
    }
}

/// A noise burst: rounds `start .. start + len` (1-based, half-open) scale
/// the channel's ambient noise `N` by `factor`. Overlapping bursts multiply.
///
/// Factors above 1 model environmental interference spikes; factors in
/// `(0, 1)` model unusually quiet intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseBurst {
    start: u64,
    len: u64,
    factor: f64,
}

impl NoiseBurst {
    /// Creates a burst covering rounds `start .. start + len`.
    ///
    /// # Errors
    ///
    /// [`FaultError::RoundZero`] if `start` or `len` is zero;
    /// [`FaultError::InvalidScale`] unless `factor` is finite and positive.
    pub fn new(start: u64, len: u64, factor: f64) -> Result<Self, FaultError> {
        if start == 0 || len == 0 {
            return Err(FaultError::RoundZero);
        }
        if !(factor.is_finite() && factor > 0.0) {
            return Err(FaultError::InvalidScale { value: factor });
        }
        Ok(NoiseBurst { start, len, factor })
    }

    /// Whether the burst covers (1-based) round `round`.
    #[must_use]
    pub fn covers(&self, round: u64) -> bool {
        round >= self.start && round - self.start < self.len
    }

    /// The noise multiplier.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

/// A channel-wide Gilbert–Elliott burst-loss model.
///
/// The channel holds one of two states, *good* or *bad*. Once per round the
/// state advances (good → bad with `p_enter`, bad → good with `p_exit`),
/// then every message decoded that round is independently dropped with the
/// state's drop probability. With `p_enter = p_exit` and equal drop
/// probabilities this degenerates to the i.i.d. loss of
/// [`fading_channel::LossySinrChannel`]; unequal transition probabilities
/// produce the *correlated* loss bursts real channels exhibit.
///
/// The chain starts in the good state and draws exclusively from the
/// simulator's dedicated fault RNG lane, so the channel's own random stream
/// (e.g. Rayleigh fades) is untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    p_enter: f64,
    p_exit: f64,
    drop_good: f64,
    drop_bad: f64,
}

impl GilbertElliott {
    /// Creates a burst-loss model. All four parameters are probabilities.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidProbability`] if any parameter is outside
    /// `[0, 1]` or not finite.
    pub fn new(
        p_enter: f64,
        p_exit: f64,
        drop_good: f64,
        drop_bad: f64,
    ) -> Result<Self, FaultError> {
        check_probability("p_enter", p_enter)?;
        check_probability("p_exit", p_exit)?;
        check_probability("drop_good", drop_good)?;
        check_probability("drop_bad", drop_bad)?;
        Ok(GilbertElliott {
            p_enter,
            p_exit,
            drop_good,
            drop_bad,
        })
    }

    /// Advances the chain one round and returns the new state
    /// (`true` = bad/burst state).
    #[must_use]
    pub fn advance(&self, in_burst: bool, rng: &mut SmallRng) -> bool {
        if in_burst {
            !rng.gen_bool(self.p_exit)
        } else {
            rng.gen_bool(self.p_enter)
        }
    }

    /// The per-message drop probability in the given state.
    #[must_use]
    pub fn drop_prob(&self, in_burst: bool) -> f64 {
        if in_burst {
            self.drop_bad
        } else {
            self.drop_good
        }
    }
}

/// What a churn event does to its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The node sleeps through every round before the event round: it
    /// neither transmits nor listens, and cannot win, until it wakes.
    LateWake,
    /// The node crash-stops at the start of the event round: it is forced
    /// inactive regardless of its protocol state.
    Crash,
    /// A previously crashed node re-joins at the start of the event round.
    /// Revival cannot resurrect a node whose **own protocol** has
    /// deactivated (a knocked-out node stays knocked out) — it only undoes
    /// a [`ChurnKind::Crash`].
    Revive,
}

/// One scheduled churn event: `kind` applied to `node` at the start of
/// (1-based) round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// The 1-based round at whose start the event fires.
    pub round: u64,
    /// The affected node.
    pub node: NodeId,
    /// What happens.
    pub kind: ChurnKind,
}

impl ChurnEvent {
    fn new(round: u64, node: NodeId, kind: ChurnKind) -> Result<Self, FaultError> {
        if round == 0 {
            return Err(FaultError::RoundZero);
        }
        Ok(ChurnEvent { round, node, kind })
    }

    /// `node` stays asleep until round `round`.
    ///
    /// # Errors
    ///
    /// [`FaultError::RoundZero`] if `round == 0`.
    pub fn late_wake(round: u64, node: NodeId) -> Result<Self, FaultError> {
        ChurnEvent::new(round, node, ChurnKind::LateWake)
    }

    /// `node` crash-stops at the start of round `round`.
    ///
    /// # Errors
    ///
    /// [`FaultError::RoundZero`] if `round == 0`.
    pub fn crash(round: u64, node: NodeId) -> Result<Self, FaultError> {
        ChurnEvent::new(round, node, ChurnKind::Crash)
    }

    /// A crashed `node` re-joins at the start of round `round`.
    ///
    /// # Errors
    ///
    /// [`FaultError::RoundZero`] if `round == 0`.
    pub fn revive(round: u64, node: NodeId) -> Result<Self, FaultError> {
        ChurnEvent::new(round, node, ChurnKind::Revive)
    }
}

/// A complete, composable fault schedule for one run.
///
/// Build with the `with_*` methods (components validate at construction),
/// then attach to a simulation with
/// [`Simulation::set_fault_plan`](crate::Simulation::set_fault_plan) before
/// the first step. An empty (default) plan perturbs nothing and leaves the
/// run byte-identical to an unfaulted one.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    jammers: Vec<Jammer>,
    noise_bursts: Vec<NoiseBurst>,
    churn: Vec<ChurnEvent>,
    loss: Option<GilbertElliott>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a jammer.
    #[must_use]
    pub fn with_jammer(mut self, jammer: Jammer) -> Self {
        self.jammers.push(jammer);
        self
    }

    /// Adds a noise burst.
    #[must_use]
    pub fn with_noise_burst(mut self, burst: NoiseBurst) -> Self {
        self.noise_bursts.push(burst);
        self
    }

    /// Adds a churn event.
    #[must_use]
    pub fn with_churn(mut self, event: ChurnEvent) -> Self {
        self.churn.push(event);
        self
    }

    /// Sets the Gilbert–Elliott burst-loss model (replacing any previous).
    #[must_use]
    pub fn with_loss(mut self, loss: GilbertElliott) -> Self {
        self.loss = Some(loss);
        self
    }

    /// `true` if the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jammers.is_empty()
            && self.noise_bursts.is_empty()
            && self.churn.is_empty()
            && self.loss.is_none()
    }

    /// The jammers.
    #[must_use]
    pub fn jammers(&self) -> &[Jammer] {
        &self.jammers
    }

    /// The noise bursts.
    #[must_use]
    pub fn noise_bursts(&self) -> &[NoiseBurst] {
        &self.noise_bursts
    }

    /// The churn events, in insertion order.
    #[must_use]
    pub fn churn(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// The burst-loss model, if any.
    #[must_use]
    pub fn loss(&self) -> Option<&GilbertElliott> {
        self.loss.as_ref()
    }

    /// The combined noise multiplier for (1-based) round `round`: the
    /// product of the factors of all covering bursts (1.0 when none).
    #[must_use]
    pub fn noise_scale(&self, round: u64) -> f64 {
        self.noise_bursts
            .iter()
            .filter(|b| b.covers(round))
            .map(NoiseBurst::factor)
            .product()
    }

    /// `true` if any jammer transmits in round `round`.
    #[must_use]
    pub fn any_jammer_active(&self, round: u64) -> bool {
        self.jammers.iter().any(|j| j.is_active(round))
    }

    /// Checks the plan against a deployment of `n` nodes.
    ///
    /// # Errors
    ///
    /// [`FaultError::NodeOutOfRange`] if a churn event names a node `≥ n`.
    pub fn validate_for(&self, n: usize) -> Result<(), FaultError> {
        for ev in &self.churn {
            if ev.node >= n {
                return Err(FaultError::NodeOutOfRange { node: ev.node, len: n });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn jammer_rejects_bad_power() {
        for power in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = Jammer::new(Point::ORIGIN, power, 1, 1, 1, None).unwrap_err();
            assert!(matches!(err, FaultError::InvalidPower { .. }), "{power}: {err}");
        }
    }

    #[test]
    fn jammer_rejects_round_zero_start() {
        assert_eq!(
            Jammer::new(Point::ORIGIN, 1.0, 0, 1, 1, None).unwrap_err(),
            FaultError::RoundZero
        );
    }

    #[test]
    fn jammer_rejects_bad_duty_cycle() {
        // Zero-length burst.
        assert!(matches!(
            Jammer::new(Point::ORIGIN, 1.0, 1, 4, 0, None).unwrap_err(),
            FaultError::InvalidDutyCycle { .. }
        ));
        // Burst longer than the period.
        assert!(matches!(
            Jammer::new(Point::ORIGIN, 1.0, 1, 4, 5, None).unwrap_err(),
            FaultError::InvalidDutyCycle { .. }
        ));
        // Zero period (implies burst_len > period for any valid burst_len).
        assert!(matches!(
            Jammer::new(Point::ORIGIN, 1.0, 1, 0, 1, None).unwrap_err(),
            FaultError::InvalidDutyCycle { .. }
        ));
    }

    #[test]
    fn jammer_duty_cycle_schedule() {
        // Start round 10, 3-on / 2-off.
        let j = Jammer::new(Point::ORIGIN, 1.0, 10, 5, 3, None).unwrap();
        assert!(!j.is_active(9));
        for (round, expect) in [
            (10, true),
            (11, true),
            (12, true),
            (13, false),
            (14, false),
            (15, true),
            (17, true),
            (18, false),
        ] {
            assert_eq!(j.is_active(round), expect, "round {round}");
        }
    }

    #[test]
    fn jammer_budget_caps_active_rounds() {
        // 2-on / 2-off with budget 3: active rounds are 1, 2, 5 — never 6+.
        let j = Jammer::new(Point::ORIGIN, 1.0, 1, 4, 2, Some(3)).unwrap();
        let active: Vec<u64> = (1..=20).filter(|&r| j.is_active(r)).collect();
        assert_eq!(active, vec![1, 2, 5]);
    }

    #[test]
    fn continuous_jammer_never_pauses() {
        let j = Jammer::continuous(Point::ORIGIN, 2.0, 3).unwrap();
        assert!(!j.is_active(2));
        assert!((3..100).all(|r| j.is_active(r)));
        assert_eq!(j.power(), 2.0);
        assert_eq!(j.position(), Point::ORIGIN);
    }

    #[test]
    fn noise_burst_rejects_bad_parameters() {
        assert_eq!(NoiseBurst::new(0, 5, 2.0).unwrap_err(), FaultError::RoundZero);
        assert_eq!(NoiseBurst::new(5, 0, 2.0).unwrap_err(), FaultError::RoundZero);
        for factor in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                NoiseBurst::new(1, 1, factor).unwrap_err(),
                FaultError::InvalidScale { .. }
            ));
        }
    }

    #[test]
    fn noise_burst_coverage_is_half_open() {
        let b = NoiseBurst::new(10, 3, 2.0).unwrap();
        assert!(!b.covers(9));
        assert!(b.covers(10));
        assert!(b.covers(12));
        assert!(!b.covers(13));
    }

    #[test]
    fn overlapping_bursts_multiply() {
        let plan = FaultPlan::new()
            .with_noise_burst(NoiseBurst::new(5, 10, 2.0).unwrap())
            .with_noise_burst(NoiseBurst::new(10, 10, 3.0).unwrap());
        assert_eq!(plan.noise_scale(4), 1.0);
        assert_eq!(plan.noise_scale(7), 2.0);
        assert_eq!(plan.noise_scale(12), 6.0);
        assert_eq!(plan.noise_scale(16), 3.0);
        assert_eq!(plan.noise_scale(20), 1.0);
    }

    #[test]
    fn gilbert_elliott_rejects_bad_probabilities() {
        for bad in [-0.1, 1.1, f64::NAN] {
            assert!(matches!(
                GilbertElliott::new(bad, 0.5, 0.0, 1.0).unwrap_err(),
                FaultError::InvalidProbability { name: "p_enter", .. }
            ));
            assert!(matches!(
                GilbertElliott::new(0.5, bad, 0.0, 1.0).unwrap_err(),
                FaultError::InvalidProbability { name: "p_exit", .. }
            ));
            assert!(matches!(
                GilbertElliott::new(0.5, 0.5, bad, 1.0).unwrap_err(),
                FaultError::InvalidProbability { name: "drop_good", .. }
            ));
            assert!(matches!(
                GilbertElliott::new(0.5, 0.5, 0.0, bad).unwrap_err(),
                FaultError::InvalidProbability { name: "drop_bad", .. }
            ));
        }
    }

    #[test]
    fn gilbert_elliott_extremes_are_absorbing() {
        let ge = GilbertElliott::new(1.0, 0.0, 0.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut state = false;
        for _ in 0..10 {
            state = ge.advance(state, &mut rng);
            assert!(state, "p_enter=1, p_exit=0 must absorb into the bad state");
        }
        assert_eq!(ge.drop_prob(false), 0.0);
        assert_eq!(ge.drop_prob(true), 1.0);
    }

    #[test]
    fn gilbert_elliott_burst_lengths_are_geometric() {
        // With p_exit = 0.25 the mean burst length is 4 rounds.
        let ge = GilbertElliott::new(0.1, 0.25, 0.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut bursts = Vec::new();
        let mut state = false;
        let mut current = 0u64;
        for _ in 0..200_000 {
            state = ge.advance(state, &mut rng);
            if state {
                current += 1;
            } else if current > 0 {
                bursts.push(current);
                current = 0;
            }
        }
        let mean = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean burst length {mean}");
    }

    #[test]
    fn churn_events_reject_round_zero() {
        assert_eq!(ChurnEvent::late_wake(0, 1).unwrap_err(), FaultError::RoundZero);
        assert_eq!(ChurnEvent::crash(0, 1).unwrap_err(), FaultError::RoundZero);
        assert_eq!(ChurnEvent::revive(0, 1).unwrap_err(), FaultError::RoundZero);
    }

    #[test]
    fn validate_for_checks_node_range() {
        let plan = FaultPlan::new().with_churn(ChurnEvent::crash(5, 7).unwrap());
        assert!(plan.validate_for(8).is_ok());
        assert_eq!(
            plan.validate_for(7).unwrap_err(),
            FaultError::NodeOutOfRange { node: 7, len: 7 }
        );
    }

    #[test]
    fn empty_plan_is_empty_and_neutral() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.validate_for(0).is_ok());
        assert_eq!(plan.noise_scale(1), 1.0);
        assert!(!plan.any_jammer_active(1));
        assert!(plan.loss().is_none());
    }

    #[test]
    fn plan_builder_accumulates_components() {
        let plan = FaultPlan::new()
            .with_jammer(Jammer::new(Point::new(1.0, 2.0), 5.0, 3, 4, 2, Some(10)).unwrap())
            .with_noise_burst(NoiseBurst::new(2, 3, 1.5).unwrap())
            .with_churn(ChurnEvent::late_wake(4, 0).unwrap())
            .with_churn(ChurnEvent::crash(6, 1).unwrap())
            .with_loss(GilbertElliott::new(0.1, 0.2, 0.0, 0.9).unwrap());
        assert!(!plan.is_empty());
        assert_eq!(plan.jammers().len(), 1);
        assert_eq!(plan.noise_bursts().len(), 1);
        assert_eq!(plan.churn().len(), 2);
        assert!(plan.loss().is_some());
        assert_eq!(plan.churn()[0].kind, ChurnKind::LateWake);
        assert_eq!(plan.clone(), plan);
    }

    #[test]
    fn error_messages_name_the_problem() {
        let msgs = [
            FaultError::InvalidProbability { name: "p_enter", value: 2.0 }.to_string(),
            FaultError::InvalidScale { value: -1.0 }.to_string(),
            FaultError::InvalidPower { value: 0.0 }.to_string(),
            FaultError::InvalidDutyCycle { period: 2, burst_len: 3 }.to_string(),
            FaultError::RoundZero.to_string(),
            FaultError::NodeOutOfRange { node: 9, len: 4 }.to_string(),
            FaultError::PlanAttachedMidRun { round: 3 }.to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[0].contains("p_enter"));
        assert!(msgs[5].contains('9'));
    }
}
