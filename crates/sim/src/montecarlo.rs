//! Seeded, parallel Monte-Carlo trial running.
//!
//! The paper's guarantees are "with high probability"; empirically that
//! means running many independent seeded trials and summarizing the
//! distribution of rounds-to-resolution. Trials are embarrassingly
//! parallel: [`run_trials`] fans seeds out over a `std::thread::scope`
//! while keeping results in seed order, so parallel and serial execution
//! produce byte-identical output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::obs::progress::{NoopProgress, ProgressSink};
use crate::recover::{
    supervise_trial_observed, FleetSummary, SnapshotError, SupervisedRun, SupervisorConfig,
    TrialFn, TrialManifest, TrialOutcome,
};
use crate::RunResult;

/// Runs `trials` independent trials with seeds `seed_base..seed_base+trials`,
/// using up to `threads` worker threads (clamped to at least 1), and returns
/// the results **in seed order**.
///
/// `f` maps a seed to a completed [`RunResult`]; it typically builds a fresh
/// `Simulation` per call. Because every trial derives all randomness from
/// its seed, the output is independent of the thread count.
///
/// # Example
///
/// ```
/// use fading_channel::{SinrChannel, SinrParams};
/// use fading_geom::Deployment;
/// use fading_sim::{montecarlo, Action, Protocol, Reception, Simulation};
/// use rand::{rngs::SmallRng, Rng};
///
/// #[derive(Debug)]
/// struct Simple { active: bool }
/// impl Protocol for Simple {
///     fn act(&mut self, _r: u64, rng: &mut SmallRng) -> Action {
///         if rng.gen_bool(0.25) { Action::Transmit } else { Action::Listen }
///     }
///     fn feedback(&mut self, _r: u64, rx: &Reception) {
///         if rx.is_message() { self.active = false; }
///     }
///     fn is_active(&self) -> bool { self.active }
///     fn name(&self) -> &'static str { "simple" }
/// }
///
/// let results = montecarlo::run_trials(8, 4, 100, |seed| {
///     let d = Deployment::uniform_square(16, 10.0, seed);
///     let ch = SinrChannel::new(SinrParams::default_single_hop());
///     Simulation::new(d, Box::new(ch), seed, |_| Box::new(Simple { active: true }))
///         .run_until_resolved(10_000)
/// });
/// let summary = montecarlo::Summary::from_results(&results);
/// assert_eq!(summary.trials, 8);
/// assert!(summary.success_rate > 0.9);
/// ```
pub fn run_trials<F>(trials: usize, threads: usize, seed_base: u64, f: F) -> Vec<RunResult>
where
    F: Fn(u64) -> RunResult + Sync,
{
    run_trials_with(trials, threads, seed_base, |seed| (f(seed), ()))
        .into_iter()
        .map(|(result, ())| result)
        .collect()
}

/// Like [`run_trials`], but each trial returns a [`RunResult`] **plus** an
/// arbitrary per-trial payload `T` (telemetry events, per-trial
/// measurements, …), still merged **in seed order** regardless of the
/// thread count.
///
/// This is how telemetry-collecting experiment drivers stay deterministic:
/// each worker recovers its own trial's sink inside `f` and hands the
/// events back as the payload, and the seed-ordered merge makes the
/// combined stream independent of scheduling.
pub fn run_trials_with<F, T>(trials: usize, threads: usize, seed_base: u64, f: F) -> Vec<(RunResult, T)>
where
    F: Fn(u64) -> (RunResult, T) + Sync,
    T: Send,
{
    let threads = threads.max(1).min(trials.max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(RunResult, T)>>> =
        Mutex::new((0..trials).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let result = f(seed_base + i as u64);
                // A worker that panicked inside `f` poisons the lock while
                // never writing its slot; recover the guard so the other
                // workers' completed trials aren't thrown away with it
                // (the scope still propagates the panic itself).
                results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)[i] = Some(result);
            });
        }
    });
    // `thread::scope` has already joined every worker (re-raising any
    // panic), so at this point each slot was written exactly once.
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| unreachable!("trial {i} finished without storing a result"))
        })
        .collect()
}

/// Like [`run_trials`], but every trial runs under the
/// [`recover::supervisor`](crate::recover::supervisor): panics are caught
/// and classified, panicked trials are retried (same seed) up to
/// `cfg.max_retries` times, and — when `cfg.timeout` is set — a hung
/// trial becomes a typed [`TrialOutcome::TimedOut`] instead of wedging
/// the pool. One poisoned trial no longer takes the whole batch down.
///
/// Outcomes come back **in seed order** with a [`FleetSummary`] tally
/// (`succeeded`/`retried`/`timed_out`/`poisoned`). Successful results are
/// available via [`SupervisedRun::results`].
///
/// `f` must be `Send + Sync + 'static` because the watchdog path hands it
/// to a detached thread; with `cfg.timeout == None` trials run inline
/// under `catch_unwind` only, which keeps supervision overhead within the
/// bench gate's 2% budget.
pub fn run_trials_supervised<F>(
    trials: usize,
    threads: usize,
    seed_base: u64,
    cfg: &SupervisorConfig,
    f: F,
) -> SupervisedRun
where
    F: Fn(u64) -> RunResult + Send + Sync + 'static,
{
    run_trials_supervised_observed(trials, threads, seed_base, cfg, &NoopProgress, f)
}

/// [`run_trials_supervised`] with live progress: every trial transition
/// (started / retried / finished / timed-out / poisoned) is delivered to
/// `sink` as a typed [`ProgressEvent`](crate::obs::ProgressEvent) from
/// the worker thread supervising that trial, as it happens.
///
/// The sink only observes — outcomes, ordering, and the returned
/// [`SupervisedRun`] are byte-identical to the unobserved runner
/// (`run_trials_supervised` *is* this function with a
/// [`NoopProgress`](crate::obs::NoopProgress) sink). Events from
/// different seeds interleave by scheduling; within one seed the sequence
/// is always started → retried\* → terminal.
pub fn run_trials_supervised_observed<F>(
    trials: usize,
    threads: usize,
    seed_base: u64,
    cfg: &SupervisorConfig,
    sink: &dyn ProgressSink,
    f: F,
) -> SupervisedRun
where
    F: Fn(u64) -> RunResult + Send + Sync + 'static,
{
    let trial: Arc<TrialFn> = Arc::new(f);
    let threads = threads.max(1).min(trials.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<TrialOutcome>>> = Mutex::new((0..trials).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let outcome = supervise_trial_observed(cfg, seed_base + i as u64, &trial, sink);
                // `supervise_trial` never unwinds, but mirror
                // `run_trials_with`'s poison recovery for uniformity.
                slots
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)[i] = Some(outcome);
            });
        }
    });
    let outcomes: Vec<TrialOutcome> = slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.unwrap_or_else(|| unreachable!("trial {i} finished without storing an outcome"))
        })
        .collect();
    let mut summary = FleetSummary::default();
    for outcome in &outcomes {
        summary.record(outcome);
    }
    SupervisedRun { outcomes, summary }
}

/// Like [`run_trials`], but completed trials are recorded in (and resumed
/// from) a [`TrialManifest`]: trials whose seed is already on record are
/// **skipped**, and every freshly-completed trial is appended and synced
/// to the manifest *as it finishes* — so a crash or SIGKILL mid-batch
/// loses at most the trials that were in flight.
///
/// Returns the results for **all** `trials` seeds in seed order, resumed
/// and fresh alike, each read back from the manifest store. Manifests do
/// not persist traces, so a resumed batch is byte-identical to an
/// uninterrupted one exactly when trials run at
/// [`TraceLevel::None`](crate::TraceLevel::None) (the fleet default).
///
/// # Errors
///
/// [`SnapshotError::Io`] when appending to the manifest fails;
/// [`SnapshotError::Corrupt`] if the manifest ends up missing a completed
/// trial (cannot happen through this API).
pub fn run_trials_with_manifest<F>(
    trials: usize,
    threads: usize,
    seed_base: u64,
    manifest: &mut TrialManifest,
    f: F,
) -> Result<Vec<RunResult>, SnapshotError>
where
    F: Fn(u64) -> RunResult + Sync,
{
    let pending: Vec<u64> = (0..trials as u64)
        .map(|i| seed_base + i)
        .filter(|&seed| !manifest.is_done(seed))
        .collect();
    let threads = threads.max(1).min(pending.len().max(1));
    let next = AtomicUsize::new(0);
    // Workers compute trials in parallel but append under one lock, so
    // each manifest line lands intact. The first IO failure is latched;
    // later completions still compute but stop recording.
    let sink: Mutex<(&mut TrialManifest, Option<SnapshotError>)> = Mutex::new((manifest, None));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pending.len() {
                    break;
                }
                let seed = pending[i];
                let result = f(seed);
                let mut guard = sink.lock().unwrap_or_else(PoisonError::into_inner);
                let (manifest, err) = &mut *guard;
                if err.is_none() {
                    if let Err(e) = manifest.record(seed, &result) {
                        *err = Some(e);
                    }
                }
            });
        }
    });
    let (manifest, err) = sink.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = err {
        return Err(e);
    }
    (0..trials as u64)
        .map(|i| {
            let seed = seed_base + i;
            manifest.get(seed).cloned().ok_or_else(|| SnapshotError::Corrupt {
                detail: format!("manifest missing completed trial for seed {seed}"),
            })
        })
        .collect()
}

/// The outcome of one supervised, manifest-backed shard of trials: the
/// seed-ordered results (where available), the supervision tally, and how
/// many trials were resumed from disk instead of re-run.
#[derive(Debug)]
pub struct ShardedRun {
    /// Per-seed results in seed order; `None` where the trial poisoned or
    /// timed out and therefore never reached the manifest.
    pub results: Vec<Option<RunResult>>,
    /// Supervision tally over **all** `trials` seeds; resumed trials count
    /// as succeeded (they completed in an earlier incarnation).
    pub summary: FleetSummary,
    /// How many trials were satisfied from the manifest without re-running.
    pub resumed: u64,
}

impl ShardedRun {
    /// `true` when every trial has a result on record.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.results.iter().all(Option::is_some)
    }
}

/// The full service-path trial runner: combines [`run_trials_supervised`]
/// (panic capture, same-seed retries, watchdog timeouts) with
/// [`run_trials_with_manifest`] (skip completed seeds, append+sync each
/// fresh success). This is what a long-running job server shards work
/// through: a SIGKILL loses at most the in-flight trials, and a poisoned
/// trial is tallied instead of taking the job down.
///
/// Trials already in `manifest` are counted as succeeded without re-running;
/// only successful outcomes are recorded (a panicked or timed-out trial
/// leaves no manifest line, so a later resume retries it from scratch).
///
/// # Errors
///
/// [`SnapshotError::Io`] when appending to the manifest fails; the first
/// failure is latched and aborts recording (in-flight trials still finish).
pub fn run_trials_supervised_with_manifest<F>(
    trials: usize,
    threads: usize,
    seed_base: u64,
    cfg: &SupervisorConfig,
    manifest: &mut TrialManifest,
    f: F,
) -> Result<ShardedRun, SnapshotError>
where
    F: Fn(u64) -> RunResult + Send + Sync + 'static,
{
    run_trials_supervised_with_manifest_observed(
        trials,
        threads,
        seed_base,
        cfg,
        manifest,
        &NoopProgress,
        f,
    )
}

/// [`run_trials_supervised_with_manifest`] with live progress delivered
/// to `progress`, exactly as in [`run_trials_supervised_observed`].
///
/// Resumed trials (seeds already in the manifest) emit **no** events —
/// they completed in an earlier incarnation; only freshly-run seeds are
/// observed. The sink cannot perturb results: the service-path
/// determinism drill pins a watched run byte-identical to an unwatched
/// one, stalled subscriber included.
///
/// # Errors
///
/// [`SnapshotError::Io`] when appending to the manifest fails; the first
/// failure is latched and aborts recording (in-flight trials still finish).
pub fn run_trials_supervised_with_manifest_observed<F>(
    trials: usize,
    threads: usize,
    seed_base: u64,
    cfg: &SupervisorConfig,
    manifest: &mut TrialManifest,
    progress: &dyn ProgressSink,
    f: F,
) -> Result<ShardedRun, SnapshotError>
where
    F: Fn(u64) -> RunResult + Send + Sync + 'static,
{
    let trial: Arc<TrialFn> = Arc::new(f);
    let pending: Vec<u64> = (0..trials as u64)
        .map(|i| seed_base + i)
        .filter(|&seed| !manifest.is_done(seed))
        .collect();
    let resumed = (trials - pending.len()) as u64;
    let threads = threads.max(1).min(pending.len().max(1));
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Option<TrialOutcome>>> =
        Mutex::new((0..pending.len()).map(|_| None).collect());
    // As in `run_trials_with_manifest`: compute in parallel, append under
    // one lock so each line lands intact, latch the first IO failure.
    let sink: Mutex<(&mut TrialManifest, Option<SnapshotError>)> = Mutex::new((manifest, None));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pending.len() {
                    break;
                }
                let outcome = supervise_trial_observed(cfg, pending[i], &trial, progress);
                if let Some(result) = outcome.result() {
                    let mut guard = sink.lock().unwrap_or_else(PoisonError::into_inner);
                    let (manifest, err) = &mut *guard;
                    if err.is_none() {
                        if let Err(e) = manifest.record(pending[i], result) {
                            *err = Some(e);
                        }
                    }
                }
                outcomes
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)[i] = Some(outcome);
            });
        }
    });
    let (manifest, err) = sink.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = err {
        return Err(e);
    }
    let mut summary = FleetSummary {
        trials: resumed,
        succeeded: resumed,
        ..FleetSummary::default()
    };
    for outcome in outcomes
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .flatten()
    {
        summary.record(outcome);
    }
    let results = (0..trials as u64)
        .map(|i| manifest.get(seed_base + i).cloned())
        .collect();
    Ok(ShardedRun {
        results,
        summary,
        resumed,
    })
}

/// Distribution summary of a batch of trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Total number of trials.
    pub trials: usize,
    /// Fraction of trials that resolved within their round budget.
    pub success_rate: f64,
    /// Mean rounds-to-resolution over the *resolved* trials.
    pub mean_rounds: f64,
    /// Sample standard deviation of rounds over the resolved trials.
    pub std_rounds: f64,
    /// Minimum rounds over the resolved trials.
    pub min_rounds: u64,
    /// Median rounds over the resolved trials.
    pub median_rounds: f64,
    /// 95th-percentile rounds over the resolved trials.
    pub p95_rounds: f64,
    /// Maximum rounds over the resolved trials.
    pub max_rounds: u64,
    /// Mean total transmissions (energy) per trial, over **all** trials
    /// (0.0 when summarizing raw round counts via [`Summary::from_rounds`]).
    pub mean_transmissions: f64,
}

impl Summary {
    /// Summarizes a batch. Unresolved trials count against
    /// [`Summary::success_rate`] but are excluded from the round statistics.
    ///
    /// Returns an all-zero summary for an empty batch.
    #[must_use]
    pub fn from_results(results: &[RunResult]) -> Self {
        let rounds: Vec<u64> = results.iter().filter_map(RunResult::resolved_at).collect();
        let mut summary = Self::from_rounds(&rounds, results.len());
        if !results.is_empty() {
            summary.mean_transmissions = results
                .iter()
                .map(|r| r.total_transmissions() as f64)
                .sum::<f64>()
                / results.len() as f64;
        }
        summary
    }

    /// Summarizes raw per-trial round counts (`rounds` holds only resolved
    /// trials; `trials` is the total attempted).
    #[must_use]
    pub fn from_rounds(rounds: &[u64], trials: usize) -> Self {
        if rounds.is_empty() {
            return Summary {
                trials,
                success_rate: 0.0,
                mean_rounds: 0.0,
                std_rounds: 0.0,
                min_rounds: 0,
                median_rounds: 0.0,
                p95_rounds: 0.0,
                max_rounds: 0,
                mean_transmissions: 0.0,
            };
        }
        let mut sorted = rounds.to_vec();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let mean = sorted.iter().map(|&r| r as f64).sum::<f64>() / n;
        let var = if sorted.len() > 1 {
            sorted
                .iter()
                .map(|&r| (r as f64 - mean).powi(2))
                .sum::<f64>()
                / (n - 1.0)
        } else {
            0.0
        };
        Summary {
            trials,
            success_rate: n / trials.max(1) as f64,
            mean_rounds: mean,
            std_rounds: var.sqrt(),
            min_rounds: sorted[0],
            median_rounds: percentile(&sorted, 50.0),
            p95_rounds: percentile(&sorted, 95.0),
            max_rounds: sorted.last().copied().unwrap_or_default(),
            mean_transmissions: 0.0,
        }
    }
}

/// Computes the interpolation coordinates for the `q`-th percentile of a
/// length-`len` sorted sample: `(lo, hi, frac)` such that the value is
/// `sorted[lo] * (1 - frac) + sorted[hi] * frac`.
fn percentile_coords(len: usize, q: f64) -> (usize, usize, f64) {
    assert!(len > 0, "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "q must be in [0, 100]");
    let pos = q / 100.0 * (len - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    (lo, hi, pos - lo as f64)
}

/// Linear-interpolated percentile of a **sorted** slice (`q` in `[0, 100]`).
///
/// This is the workspace's **canonical** quantile: position
/// `q/100 · (len − 1)` with linear interpolation between the bracketing
/// order statistics (the "type 7" estimator). `fading_analysis::stats`
/// re-exports it so every crate computes medians and p95s identically.
/// (The deliberately *different* `hitting::WinDistribution::quantile` —
/// an upper empirical quantile over failure mass — is documented there.)
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[u64], q: f64) -> f64 {
    let (lo, hi, frac) = percentile_coords(sorted.len(), q);
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

/// [`percentile`] over a sorted `f64` slice (same canonical estimator).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
#[must_use]
pub fn percentile_f64(sorted: &[f64], q: f64) -> f64 {
    let (lo, hi, frac) = percentile_coords(sorted.len(), q);
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Trace;

    fn result_with_rounds(rounds: Option<u64>) -> RunResult {
        RunResult::new(
            rounds,
            rounds.unwrap_or(100),
            8,
            1,
            None,
            0,
            Trace::default(),
        )
    }

    #[test]
    fn run_trials_is_in_seed_order_and_thread_invariant() {
        let f = |seed: u64| result_with_rounds(Some(seed + 1));
        let serial = run_trials(16, 1, 0, f);
        let parallel = run_trials(16, 8, 0, f);
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.resolved_at(), Some(i as u64 + 1));
            assert_eq!(a.resolved_at(), b.resolved_at());
        }
    }

    #[test]
    fn run_trials_applies_seed_base() {
        let results = run_trials(3, 2, 100, |seed| result_with_rounds(Some(seed)));
        let got: Vec<_> = results.iter().map(|r| r.resolved_at().unwrap()).collect();
        assert_eq!(got, vec![100, 101, 102]);
    }

    #[test]
    fn summary_statistics() {
        let results: Vec<RunResult> = [1u64, 2, 3, 4, 100]
            .iter()
            .map(|&r| result_with_rounds(Some(r)))
            .chain(std::iter::once(result_with_rounds(None)))
            .collect();
        let s = Summary::from_results(&results);
        assert_eq!(s.trials, 6);
        assert!((s.success_rate - 5.0 / 6.0).abs() < 1e-12);
        assert!((s.mean_rounds - 22.0).abs() < 1e-12);
        assert_eq!(s.min_rounds, 1);
        assert_eq!(s.max_rounds, 100);
        assert_eq!(s.median_rounds, 3.0);
    }

    #[test]
    fn summary_of_empty_batch() {
        let s = Summary::from_results(&[]);
        assert_eq!(s.trials, 0);
        assert_eq!(s.success_rate, 0.0);
        assert_eq!(s.mean_rounds, 0.0);
    }

    #[test]
    fn summary_single_trial_has_zero_std() {
        let s = Summary::from_results(&[result_with_rounds(Some(7))]);
        assert_eq!(s.std_rounds, 0.0);
        assert_eq!(s.median_rounds, 7.0);
        assert_eq!(s.p95_rounds, 7.0);
    }

    fn result_with_transmissions(rounds: Option<u64>, transmissions: u64) -> RunResult {
        RunResult::new(
            rounds,
            rounds.unwrap_or(100),
            8,
            1,
            None,
            transmissions,
            Trace::default(),
        )
    }

    #[test]
    fn all_unresolved_batch_has_zero_success_but_counts_trials() {
        let results: Vec<RunResult> = (0..4).map(|_| result_with_rounds(None)).collect();
        let s = Summary::from_results(&results);
        assert_eq!(s.trials, 4);
        assert_eq!(s.success_rate, 0.0);
        // No resolved trials: every round statistic is the zero sentinel.
        assert_eq!(s.mean_rounds, 0.0);
        assert_eq!(s.std_rounds, 0.0);
        assert_eq!(s.min_rounds, 0);
        assert_eq!(s.median_rounds, 0.0);
        assert_eq!(s.p95_rounds, 0.0);
        assert_eq!(s.max_rounds, 0);
    }

    #[test]
    fn all_unresolved_batch_still_averages_transmissions() {
        // Energy is spent whether or not the run resolves, so
        // mean_transmissions covers *all* trials — including a batch with
        // zero successes.
        let results = vec![
            result_with_transmissions(None, 10),
            result_with_transmissions(None, 30),
        ];
        let s = Summary::from_results(&results);
        assert_eq!(s.success_rate, 0.0);
        assert!((s.mean_transmissions - 20.0).abs() < 1e-12);
    }

    #[test]
    fn p95_on_two_element_slice_interpolates() {
        // pos = 0.95 · (2 − 1): 5% of the low value, 95% of the high one.
        assert!((percentile(&[10, 20], 95.0) - 19.5).abs() < 1e-12);
        let s = Summary::from_rounds(&[10, 20], 2);
        assert!((s.p95_rounds - 19.5).abs() < 1e-12);
        assert!((s.median_rounds - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mean_transmissions_over_mixed_resolved_and_unresolved() {
        // Round statistics come from resolved trials only;
        // mean_transmissions averages over the whole batch.
        let results = vec![
            result_with_transmissions(Some(5), 12),
            result_with_transmissions(None, 40),
            result_with_transmissions(Some(7), 8),
        ];
        let s = Summary::from_results(&results);
        assert_eq!(s.trials, 3);
        assert!((s.success_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_rounds - 6.0).abs() < 1e-12);
        assert!((s.mean_transmissions - 20.0).abs() < 1e-12);
    }

    #[test]
    fn from_rounds_leaves_transmissions_zero() {
        let s = Summary::from_rounds(&[3, 4, 5], 3);
        assert_eq!(s.mean_transmissions, 0.0);
        assert_eq!(s.success_rate, 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10u64, 20, 30, 40];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 100.0), 40.0);
        assert_eq!(percentile(&sorted, 50.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1], 101.0);
    }

    #[test]
    fn percentile_f64_agrees_with_u64_version() {
        for sorted in [vec![7u64], vec![1, 2], vec![3, 3, 9], vec![1, 2, 2, 2, 10]] {
            let as_f64: Vec<f64> = sorted.iter().map(|&v| v as f64).collect();
            for q in [0.0, 25.0, 50.0, 90.0, 95.0, 100.0] {
                assert_eq!(percentile(&sorted, q), percentile_f64(&as_f64, q), "{sorted:?} q={q}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_f64_rejects_empty() {
        let _ = percentile_f64(&[], 50.0);
    }

    #[test]
    fn run_trials_supervised_isolates_panics_and_keeps_seed_order() {
        let cfg = SupervisorConfig::default();
        let run = run_trials_supervised(8, 4, 10, &cfg, |seed| {
            assert!(seed != 13, "injected poison for seed 13");
            result_with_rounds(Some(seed))
        });
        assert_eq!(run.outcomes.len(), 8);
        assert_eq!(run.summary.trials, 8);
        assert_eq!(run.summary.succeeded, 7);
        assert_eq!(run.summary.poisoned, 1);
        assert_eq!(run.summary.timed_out, 0);
        // Default config retries a panicked trial once before poisoning.
        assert_eq!(run.summary.retried, 1);
        for (i, outcome) in run.outcomes.iter().enumerate() {
            assert_eq!(outcome.seed(), 10 + i as u64, "outcomes stay seed-ordered");
            assert_eq!(outcome.is_success(), outcome.seed() != 13);
        }
        let results = run.results();
        assert_eq!(results.len(), 7);
        assert_eq!(results[0].resolved_at(), Some(10));
    }

    #[test]
    fn run_trials_supervised_matches_unsupervised_results() {
        let f = |seed: u64| result_with_rounds(Some(seed * 3 + 1));
        let plain = run_trials(6, 2, 40, f);
        let supervised = run_trials_supervised(6, 2, 40, &SupervisorConfig::default(), f);
        let resumed: Vec<&RunResult> = supervised.results();
        assert_eq!(resumed.len(), plain.len());
        for (a, b) in plain.iter().zip(resumed) {
            assert_eq!(a, b, "supervision must not change a healthy trial");
        }
    }

    #[test]
    fn run_trials_with_manifest_skips_completed_trials_on_resume() {
        use std::sync::atomic::AtomicUsize;

        let dir = std::env::temp_dir().join("fading-sim-montecarlo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        std::fs::remove_file(&path).ok();

        let calls = AtomicUsize::new(0);
        let f = |seed: u64| {
            calls.fetch_add(1, Ordering::SeqCst);
            result_with_rounds(Some(seed + 1))
        };

        // First pass: only 3 of 6 trials "complete" before the crash.
        let mut first = crate::TrialManifest::open(&path).unwrap();
        let partial = run_trials_with_manifest(3, 2, 50, &mut first, f).unwrap();
        assert_eq!(partial.len(), 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        drop(first);

        // Resume: the full batch only runs the 3 missing seeds.
        let mut resumed = crate::TrialManifest::open(&path).unwrap();
        assert_eq!(resumed.completed(), 3);
        let full = run_trials_with_manifest(6, 2, 50, &mut resumed, f).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 6, "completed seeds are not re-run");
        assert_eq!(full.len(), 6);
        for (i, r) in full.iter().enumerate() {
            assert_eq!(r.resolved_at(), Some(50 + i as u64 + 1), "seed order preserved");
        }

        // A fresh uninterrupted run over a clean manifest produces the
        // identical result vector.
        let clean = dir.join("fresh.jsonl");
        std::fs::remove_file(&clean).ok();
        let mut fresh = crate::TrialManifest::open(&clean).unwrap();
        let uninterrupted = run_trials_with_manifest(6, 2, 50, &mut fresh, f).unwrap();
        assert_eq!(uninterrupted, full, "resumed == uninterrupted");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&clean).ok();
    }

    #[test]
    fn supervised_manifest_run_resumes_and_tallies_failures() {
        let dir = std::env::temp_dir().join("fading-sim-supmanifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.jsonl");
        std::fs::remove_file(&path).ok();
        let cfg = SupervisorConfig {
            max_retries: 0,
            timeout: None,
        };
        // Seed 72 always panics; everything else succeeds.
        let f = |seed: u64| {
            assert_ne!(seed, 72, "poisoned trial");
            result_with_rounds(Some(seed + 1))
        };

        let mut first = crate::TrialManifest::open(&path).unwrap();
        let run = run_trials_supervised_with_manifest(4, 2, 70, &cfg, &mut first, f).unwrap();
        assert_eq!(run.summary.trials, 4);
        assert_eq!(run.summary.succeeded, 3);
        assert_eq!(run.summary.poisoned, 1);
        assert_eq!(run.resumed, 0);
        assert!(!run.complete());
        assert!(run.results[2].is_none(), "poisoned seed has no result");
        drop(first);

        // Resume with a healthy trial fn: only the poisoned seed re-runs
        // (`resumed` counts the seeds satisfied straight from the manifest).
        let mut second = crate::TrialManifest::open(&path).unwrap();
        let run2 =
            run_trials_supervised_with_manifest(4, 2, 70, &cfg, &mut second, |seed: u64| {
                result_with_rounds(Some(seed + 1))
            })
            .unwrap();
        assert_eq!(run2.resumed, 3);
        assert_eq!(run2.summary.succeeded, 4);
        assert!(run2.complete());
        let rounds: Vec<_> = run2
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().resolved_at().unwrap())
            .collect();
        assert_eq!(rounds, vec![71, 72, 73, 74], "seed order preserved");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn observed_runner_matches_unobserved_and_orders_events_per_seed() {
        use crate::obs::progress::{MemoryProgress, ProgressEvent};
        let f = |seed: u64| result_with_rounds(Some(seed + 2));
        let cfg = SupervisorConfig::default();
        let plain = run_trials_supervised(10, 4, 30, &cfg, f);
        let sink = MemoryProgress::new();
        let observed = run_trials_supervised_observed(10, 4, 30, &cfg, &sink, f);
        assert_eq!(plain.summary, observed.summary);
        for (a, b) in plain.outcomes.iter().zip(&observed.outcomes) {
            assert_eq!(a.seed(), b.seed());
            assert_eq!(a.result(), b.result(), "a sink must not perturb results");
        }
        let events = sink.take();
        assert_eq!(events.len(), 20, "started + finished per trial");
        for seed in 30..40u64 {
            let per_seed: Vec<&ProgressEvent> =
                events.iter().filter(|e| e.seed() == seed).collect();
            assert_eq!(per_seed.len(), 2);
            assert!(matches!(per_seed[0], ProgressEvent::TrialStarted { .. }));
            assert!(matches!(
                per_seed[1],
                ProgressEvent::TrialFinished { rounds, resolved: true, retries: 0, .. }
                    if *rounds == seed + 2
            ));
        }
    }

    #[test]
    fn observed_manifest_runner_skips_events_for_resumed_seeds() {
        use crate::obs::progress::MemoryProgress;
        let dir = std::env::temp_dir().join("fading-sim-observed-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.jsonl");
        std::fs::remove_file(&path).ok();
        let cfg = SupervisorConfig::default();
        let f = |seed: u64| result_with_rounds(Some(seed + 1));

        let mut first = crate::TrialManifest::open(&path).unwrap();
        let sink = MemoryProgress::new();
        let run = run_trials_supervised_with_manifest_observed(3, 2, 90, &cfg, &mut first, &sink, f)
            .unwrap();
        assert!(run.complete());
        assert_eq!(sink.take().len(), 6);
        drop(first);

        // Resume over the same manifest: all 5 seeds satisfied means only
        // the 2 fresh ones emit events.
        let mut second = crate::TrialManifest::open(&path).unwrap();
        let run2 =
            run_trials_supervised_with_manifest_observed(5, 2, 90, &cfg, &mut second, &sink, f)
                .unwrap();
        assert_eq!(run2.resumed, 3);
        let events = sink.take();
        assert_eq!(events.len(), 4, "resumed seeds are silent");
        assert!(events.iter().all(|e| e.seed() >= 93));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_trials_with_carries_payloads_in_seed_order() {
        let f = |seed: u64| (result_with_rounds(Some(seed + 1)), format!("payload-{seed}"));
        let serial = run_trials_with(12, 1, 5, f);
        let parallel = run_trials_with(12, 8, 5, f);
        assert_eq!(serial.len(), 12);
        for (i, ((ra, pa), (rb, pb))) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(ra.resolved_at(), Some(5 + i as u64 + 1));
            assert_eq!(pa, &format!("payload-{}", 5 + i as u64));
            assert_eq!((ra, pa), (rb, pb), "thread count must not affect payload order");
        }
    }
}
