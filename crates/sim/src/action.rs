//! Per-round node actions.

use serde::{Deserialize, Serialize};

/// What a node does in one synchronous round.
///
/// The model is half-duplex with fixed power: a node either transmits (at
/// the global power `P`) or listens. Message payloads carry no information
/// relevant to contention resolution (receiving *any* message is the
/// knockout signal), so actions carry no payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Broadcast at the fixed power.
    Transmit,
    /// Stay silent and observe the channel.
    Listen,
}

impl Action {
    /// `true` iff this action is [`Action::Transmit`].
    #[must_use]
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_transmit() {
        assert!(Action::Transmit.is_transmit());
        assert!(!Action::Listen.is_transmit());
    }
}
