//! Serializable, checksummed simulation snapshots.
//!
//! A [`SimSnapshot`] captures every piece of *mutable* run state a
//! [`Simulation`](crate::Simulation) owns — round counter, all RNG lanes
//! (including the fault lane's cursor), active/knockout masks, per-node
//! protocol states, fault-plan progress, engine-tier toggles and counter
//! totals, and the trace — but none of the *constructed* state (positions,
//! channel, protocol factory, fault plan). Restoring therefore requires
//! rebuilding an identically-configured simulation first; a fingerprint
//! over the construction inputs catches mismatches before any state is
//! loaded, and an FNV-1a checksum over the encoded payload catches
//! corruption. The byte format is hand-rolled little-endian (no external
//! serialization dependency), versioned, and rejected loudly on any
//! mismatch — a snapshot never restores garbage.

use std::io::Write as _;
use std::path::Path;

use crate::protocol::ProtocolStateError;
use crate::result::RoundRecord;
use crate::EngineCounters;
use fading_channel::FarFieldStats;

/// Format magic: the first four bytes of every snapshot file.
const MAGIC: [u8; 4] = *b"FSNP";

/// Current snapshot format version. Bumped on any layout change; older
/// readers reject newer snapshots with [`SnapshotError::VersionMismatch`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be encoded, decoded, or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The byte stream is not a valid snapshot: bad magic, truncation,
    /// a failed checksum, or an out-of-range field.
    Corrupt {
        /// What exactly was wrong.
        detail: String,
    },
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the stream.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The snapshot is well-formed but does not belong to the simulation
    /// it is being restored into (different deployment, seed, channel,
    /// fault plan, or a non-fresh target).
    Incompatible {
        /// What exactly did not line up.
        detail: String,
    },
    /// A protocol instance rejected its checkpointed state words.
    ProtocolState(ProtocolStateError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Corrupt { detail } => write!(f, "snapshot corrupt: {detail}"),
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            SnapshotError::Incompatible { detail } => {
                write!(f, "snapshot incompatible with this simulation: {detail}")
            }
            SnapshotError::ProtocolState(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::ProtocolState(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<ProtocolStateError> for SnapshotError {
    fn from(e: ProtocolStateError) -> Self {
        SnapshotError::ProtocolState(e)
    }
}

/// FNV-1a 64-bit hash — used both for the payload checksum and for the
/// construction-input fingerprint. Not cryptographic; it guards against
/// accidental corruption and accidental mismatches, not adversaries.
#[must_use]
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A complete, self-contained capture of a simulation's mutable state.
///
/// Produced by [`Simulation::snapshot`](crate::Simulation::snapshot) and
/// consumed by [`Simulation::restore`](crate::Simulation::restore); see
/// DESIGN.md §13 for the restore protocol and the byte-identity guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    pub(crate) n: u64,
    pub(crate) seed: u64,
    pub(crate) fingerprint: u64,
    pub(crate) round: u64,
    pub(crate) total_transmissions: u64,
    pub(crate) resolved_at: Option<u64>,
    pub(crate) winner: Option<u64>,
    pub(crate) active: Vec<bool>,
    pub(crate) node_rngs: Vec<[u64; 4]>,
    pub(crate) chan_rng: [u64; 4],
    pub(crate) fault_rng: [u64; 4],
    pub(crate) self_check_samples: u64,
    pub(crate) self_check_rng: [u64; 4],
    pub(crate) protocol_states: Vec<Vec<u64>>,
    pub(crate) churn_cursor: u64,
    pub(crate) loss_in_burst: bool,
    pub(crate) trace_level: u8,
    pub(crate) trace_cap: u64,
    pub(crate) trace_truncated: bool,
    pub(crate) trace_rounds: Vec<RoundRecord>,
    pub(crate) cache_enabled: bool,
    pub(crate) farfield_enabled: bool,
    pub(crate) hierarchical_enabled: bool,
    pub(crate) resolve_threads: u64,
    pub(crate) counters: EngineCounters,
    pub(crate) farfield_stats: Option<FarFieldStats>,
    pub(crate) hierarchical_stats: Option<FarFieldStats>,
}

impl SimSnapshot {
    /// Number of nodes in the captured deployment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// `true` when the captured deployment has no nodes (never produced
    /// by a real simulation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The master seed of the captured run.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rounds completed when the snapshot was taken.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The construction-input fingerprint (deployment, seed, channel,
    /// fault-plan shape) the restore target must reproduce.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Encodes the snapshot: magic, version, payload length, payload,
    /// FNV-1a checksum, all little-endian.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u64(self.n);
        w.u64(self.seed);
        w.u64(self.fingerprint);
        w.u64(self.round);
        w.u64(self.total_transmissions);
        w.opt_u64(self.resolved_at);
        w.opt_u64(self.winner);
        w.u64(self.active.len() as u64);
        for &a in &self.active {
            w.bool(a);
        }
        w.u64(self.node_rngs.len() as u64);
        for s in &self.node_rngs {
            w.rng(s);
        }
        w.rng(&self.chan_rng);
        w.rng(&self.fault_rng);
        w.u64(self.self_check_samples);
        w.rng(&self.self_check_rng);
        w.u64(self.protocol_states.len() as u64);
        for s in &self.protocol_states {
            w.u64(s.len() as u64);
            for &word in s {
                w.u64(word);
            }
        }
        w.u64(self.churn_cursor);
        w.bool(self.loss_in_burst);
        w.u8(self.trace_level);
        w.u64(self.trace_cap);
        w.bool(self.trace_truncated);
        w.u64(self.trace_rounds.len() as u64);
        for r in &self.trace_rounds {
            w.u64(r.round);
            w.u64(r.active_before as u64);
            w.u64(r.transmitters as u64);
            w.u64(r.knocked_out as u64);
            match &r.transmitter_ids {
                None => w.u8(0),
                Some(ids) => {
                    w.u8(1);
                    w.u64(ids.len() as u64);
                    for &id in ids {
                        w.u64(id as u64);
                    }
                }
            }
        }
        w.bool(self.cache_enabled);
        w.bool(self.farfield_enabled);
        w.bool(self.hierarchical_enabled);
        w.u64(self.resolve_threads);
        w.counters(&self.counters);
        w.opt_stats(self.farfield_stats.as_ref());
        w.opt_stats(self.hierarchical_stats.as_ref());

        let payload = w.buf;
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Decodes a snapshot, verifying magic, version, length, and checksum.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on bad magic, truncation, a checksum
    /// mismatch, or out-of-range fields; [`SnapshotError::VersionMismatch`]
    /// when the stream was written by a different format version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let corrupt = |detail: &str| SnapshotError::Corrupt {
            detail: detail.to_string(),
        };
        if bytes.len() < 16 {
            return Err(corrupt("shorter than the fixed header"));
        }
        if bytes[..4] != MAGIC {
            return Err(corrupt("bad magic (not a snapshot file)"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]) as usize;
        let expected_total = 16usize
            .checked_add(payload_len)
            .and_then(|v| v.checked_add(8))
            .ok_or_else(|| corrupt("payload length overflows"))?;
        if bytes.len() != expected_total {
            return Err(corrupt("payload length does not match file size"));
        }
        let payload = &bytes[16..16 + payload_len];
        let stored = u64::from_le_bytes(
            bytes[16 + payload_len..]
                .try_into()
                .map_err(|_| corrupt("checksum truncated"))?,
        );
        if fnv1a64(payload) != stored {
            return Err(corrupt("checksum mismatch"));
        }

        let mut r = Reader::new(payload);
        let n = r.u64()?;
        let seed = r.u64()?;
        let fingerprint = r.u64()?;
        let round = r.u64()?;
        let total_transmissions = r.u64()?;
        let resolved_at = r.opt_u64()?;
        let winner = r.opt_u64()?;
        let active_len = r.len_for(n, "active mask")?;
        let mut active = Vec::with_capacity(active_len);
        for _ in 0..active_len {
            active.push(r.bool()?);
        }
        let rng_len = r.len_for(n, "node rng states")?;
        let mut node_rngs = Vec::with_capacity(rng_len);
        for _ in 0..rng_len {
            node_rngs.push(r.rng()?);
        }
        let chan_rng = r.rng()?;
        let fault_rng = r.rng()?;
        let self_check_samples = r.u64()?;
        let self_check_rng = r.rng()?;
        let proto_len = r.len_for(n, "protocol states")?;
        let mut protocol_states = Vec::with_capacity(proto_len);
        for _ in 0..proto_len {
            let words = r.u64()? as usize;
            if words > r.remaining_words() {
                return Err(corrupt("protocol state longer than the payload"));
            }
            let mut state = Vec::with_capacity(words);
            for _ in 0..words {
                state.push(r.u64()?);
            }
            protocol_states.push(state);
        }
        let churn_cursor = r.u64()?;
        let loss_in_burst = r.bool()?;
        let trace_level = r.u8()?;
        if trace_level > 2 {
            return Err(corrupt("trace level out of range"));
        }
        let trace_cap = r.u64()?;
        let trace_truncated = r.bool()?;
        let n_records = r.u64()? as usize;
        if n_records > r.remaining_words() {
            return Err(corrupt("trace longer than the payload"));
        }
        let mut trace_rounds = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let round = r.u64()?;
            let active_before = r.usize()?;
            let transmitters = r.usize()?;
            let knocked_out = r.usize()?;
            let transmitter_ids = match r.u8()? {
                0 => None,
                1 => {
                    let ids_len = r.u64()? as usize;
                    if ids_len > r.remaining_words() {
                        return Err(corrupt("transmitter id list longer than the payload"));
                    }
                    let mut ids = Vec::with_capacity(ids_len);
                    for _ in 0..ids_len {
                        ids.push(r.usize()?);
                    }
                    Some(ids)
                }
                _ => return Err(corrupt("bad option tag in trace record")),
            };
            trace_rounds.push(RoundRecord {
                round,
                active_before,
                transmitters,
                knocked_out,
                transmitter_ids,
            });
        }
        let cache_enabled = r.bool()?;
        let farfield_enabled = r.bool()?;
        let hierarchical_enabled = r.bool()?;
        let resolve_threads = r.u64()?;
        let counters = r.counters()?;
        let farfield_stats = r.opt_stats()?;
        let hierarchical_stats = r.opt_stats()?;
        r.finish()?;

        Ok(SimSnapshot {
            n,
            seed,
            fingerprint,
            round,
            total_transmissions,
            resolved_at,
            winner,
            active,
            node_rngs,
            chan_rng,
            fault_rng,
            self_check_samples,
            self_check_rng,
            protocol_states,
            churn_cursor,
            loss_in_burst,
            trace_level,
            trace_cap,
            trace_truncated,
            trace_rounds,
            cache_enabled,
            farfield_enabled,
            hierarchical_enabled,
            resolve_threads,
            counters,
            farfield_stats,
            hierarchical_stats,
        })
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a
    /// `<path>.tmp` sibling first and are renamed into place, so a process
    /// killed mid-write leaves the previous checkpoint intact rather than
    /// a torn file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn write_to_path(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be read, plus every
    /// decode error of [`SimSnapshot::from_bytes`].
    pub fn read_from_path(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        SimSnapshot::from_bytes(&bytes)
    }
}

/// Little-endian byte sink for the payload encoding.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn rng(&mut self, s: &[u64; 4]) {
        for &w in s {
            self.u64(w);
        }
    }
    fn stats(&mut self, s: &FarFieldStats) {
        self.u64(s.rounds);
        self.u64(s.empty_round_silences);
        self.u64(s.nonfinite_fallbacks);
        self.u64(s.noise_floor_silences);
        self.u64(s.no_near_winner_fallbacks);
        self.u64(s.far_rival_fallbacks);
        self.u64(s.bracket_decisions);
        self.u64(s.bracket_straddle_fallbacks);
    }
    fn opt_stats(&mut self, s: Option<&FarFieldStats>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.stats(s);
            }
        }
    }
    fn counters(&mut self, c: &EngineCounters) {
        self.u64(c.rounds);
        self.u64(c.farfield_rounds);
        self.u64(c.hierarchical_rounds);
        self.u64(c.gain_cache_rounds);
        self.u64(c.exact_rounds);
        self.u64(c.instrumented_rounds);
        self.bool(c.gain_cache_built);
        self.u64(c.gain_cache_bypassed_rounds);
        self.u64(c.perturbed_rounds);
        self.u64(c.jammed_rounds);
        self.u64(c.noise_scaled_rounds);
        self.u64(c.ge_dropped);
        self.u64(c.churn_applied);
        self.u64(c.self_check_rounds);
        self.u64(c.self_check_samples);
        self.u64(c.self_check_violations);
        self.u64(c.tier_demotions);
        self.stats(&c.farfield);
    }
}

/// Checked little-endian reader over the payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn corrupt(detail: &str) -> SnapshotError {
        SnapshotError::Corrupt {
            detail: detail.to_string(),
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| Self::corrupt("offset overflow"))?;
        if end > self.buf.len() {
            return Err(Self::corrupt("payload truncated"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(
            b.try_into().map_err(|_| Self::corrupt("short u64"))?,
        ))
    }

    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| Self::corrupt("value exceeds usize"))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Self::corrupt("bad bool")),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(Self::corrupt("bad option tag")),
        }
    }

    fn rng(&mut self) -> Result<[u64; 4], SnapshotError> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }

    /// A per-node collection length must equal the declared node count —
    /// anything else is corruption, caught before allocating.
    fn len_for(&mut self, n: u64, what: &str) -> Result<usize, SnapshotError> {
        let len = self.u64()?;
        if len != n {
            return Err(Self::corrupt(&format!(
                "{what} length {len} does not match node count {n}"
            )));
        }
        usize::try_from(len).map_err(|_| Self::corrupt("node count exceeds usize"))
    }

    /// Upper bound on how many more u64 words the payload can hold; used
    /// to reject absurd length prefixes before `Vec::with_capacity`.
    fn remaining_words(&self) -> usize {
        (self.buf.len() - self.pos) / 8
    }

    fn stats(&mut self) -> Result<FarFieldStats, SnapshotError> {
        Ok(FarFieldStats {
            rounds: self.u64()?,
            empty_round_silences: self.u64()?,
            nonfinite_fallbacks: self.u64()?,
            noise_floor_silences: self.u64()?,
            no_near_winner_fallbacks: self.u64()?,
            far_rival_fallbacks: self.u64()?,
            bracket_decisions: self.u64()?,
            bracket_straddle_fallbacks: self.u64()?,
        })
    }

    fn opt_stats(&mut self) -> Result<Option<FarFieldStats>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.stats()?)),
            _ => Err(Self::corrupt("bad option tag")),
        }
    }

    fn counters(&mut self) -> Result<EngineCounters, SnapshotError> {
        Ok(EngineCounters {
            rounds: self.u64()?,
            farfield_rounds: self.u64()?,
            hierarchical_rounds: self.u64()?,
            gain_cache_rounds: self.u64()?,
            exact_rounds: self.u64()?,
            instrumented_rounds: self.u64()?,
            gain_cache_built: self.bool()?,
            gain_cache_bypassed_rounds: self.u64()?,
            perturbed_rounds: self.u64()?,
            jammed_rounds: self.u64()?,
            noise_scaled_rounds: self.u64()?,
            ge_dropped: self.u64()?,
            churn_applied: self.u64()?,
            self_check_rounds: self.u64()?,
            self_check_samples: self.u64()?,
            self_check_violations: self.u64()?,
            tier_demotions: self.u64()?,
            farfield: self.stats()?,
        })
    }

    fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::corrupt("trailing bytes after the last field"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimSnapshot {
        SimSnapshot {
            n: 3,
            seed: 42,
            fingerprint: 0xDEAD_BEEF,
            round: 17,
            total_transmissions: 99,
            resolved_at: None,
            winner: None,
            active: vec![true, false, true],
            node_rngs: vec![[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12]],
            chan_rng: [13, 14, 15, 16],
            fault_rng: [17, 18, 19, 20],
            self_check_samples: 2,
            self_check_rng: [21, 22, 23, 24],
            protocol_states: vec![vec![1], vec![], vec![3, 4, 5]],
            churn_cursor: 1,
            loss_in_burst: true,
            trace_level: 2,
            trace_cap: 100,
            trace_truncated: false,
            trace_rounds: vec![RoundRecord {
                round: 1,
                active_before: 3,
                transmitters: 2,
                knocked_out: 1,
                transmitter_ids: Some(vec![0, 2]),
            }],
            cache_enabled: true,
            farfield_enabled: false,
            hierarchical_enabled: false,
            resolve_threads: 4,
            counters: EngineCounters {
                rounds: 17,
                gain_cache_rounds: 17,
                gain_cache_built: true,
                ..EngineCounters::default()
            },
            farfield_stats: Some(FarFieldStats {
                rounds: 5,
                bracket_decisions: 40,
                ..FarFieldStats::default()
            }),
            hierarchical_stats: None,
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let snap = sample();
        let mut bytes = snap.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match SimSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::Corrupt { detail }) => {
                assert!(detail.contains("checksum"), "unexpected detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 15, bytes.len() - 1] {
            assert!(SimSnapshot::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SimSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 0xFF;
        assert!(matches!(
            SimSnapshot::from_bytes(&bytes),
            Err(SnapshotError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join("fading-sim-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fsnp");
        let snap = sample();
        snap.write_to_path(&path).unwrap();
        let back = SimSnapshot::read_from_path(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = SnapshotError::VersionMismatch {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = SnapshotError::Incompatible {
            detail: "seed differs".into(),
        };
        assert!(e.to_string().contains("seed differs"));
    }
}
