//! Experiment-level resume manifests.
//!
//! A [`TrialManifest`] is an append-only JSONL file recording one
//! completed trial per line. Re-opening the manifest after a crash (or a
//! SIGKILL) and handing it back to
//! [`run_trials_with_manifest`](crate::montecarlo::run_trials_with_manifest)
//! skips every trial already on disk, so an interrupted Monte-Carlo batch
//! resumes from where it died instead of burning its compute again.
//!
//! Manifest lines persist the run *summary* (outcome, rounds, winner,
//! transmissions) but **not** the trace — resumable fleets run at
//! [`TraceLevel::None`](crate::TraceLevel::None), where the stored
//! summary reconstructs the `RunResult` exactly. Each line is flushed and
//! synced as its trial completes, so at most the in-flight trials are
//! lost to a kill.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::recover::snapshot::SnapshotError;
use crate::result::{RunResult, Trace};

/// An append-only record of completed trials, keyed by seed.
#[derive(Debug)]
pub struct TrialManifest {
    path: PathBuf,
    completed: BTreeMap<u64, RunResult>,
    torn_tail: bool,
}

impl TrialManifest {
    /// Opens (or creates) the manifest at `path`, loading every completed
    /// trial already recorded there.
    ///
    /// A manifest whose **final** line does not parse is treated as a torn
    /// append — the expected wreckage of a SIGKILL landing mid-`record` —
    /// not as corruption: the partial record is truncated away (with a
    /// warning on stderr), the trial it would have recorded simply re-runs,
    /// and [`torn_tail`](Self::torn_tail) reports the repair. Damage
    /// *before* the final line can't be produced by a torn append and still
    /// fails loudly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file exists but cannot be read (or a
    /// torn tail cannot be truncated); [`SnapshotError::Corrupt`] when a
    /// non-final line does not parse — a damaged manifest fails loudly
    /// rather than silently re-running or skipping trials.
    pub fn open(path: &Path) -> Result<Self, SnapshotError> {
        let mut completed = BTreeMap::new();
        let mut torn_tail = false;
        match std::fs::read_to_string(path) {
            Ok(contents) => {
                // `record` writes each `line\n` in a single append, so a kill
                // can only leave a *strict prefix* of the final record — a
                // last line with no trailing newline. Track byte offsets so
                // that torn tail can be truncated off in place, keeping the
                // file append-clean.
                let ends_with_newline = contents.ends_with('\n');
                let mut records: Vec<(usize, usize, &str)> = Vec::new();
                let mut offset = 0usize;
                for (lineno, line) in contents.split('\n').enumerate() {
                    if !line.trim().is_empty() {
                        records.push((lineno, offset, line));
                    }
                    offset += line.len() + 1;
                }
                let last_start = records.last().map(|&(_, start, _)| start);
                for &(lineno, start, line) in &records {
                    let is_tail = Some(start) == last_start && !ends_with_newline;
                    match parse_line(line) {
                        Some((seed, result)) => {
                            completed.insert(seed, result);
                            if is_tail {
                                // Complete record that lost only its newline:
                                // keep it, but restore the separator so the
                                // next append starts on a fresh line.
                                let mut f = std::fs::OpenOptions::new()
                                    .append(true)
                                    .open(path)?;
                                f.write_all(b"\n")?;
                                f.sync_all()?;
                            }
                        }
                        None if is_tail => {
                            eprintln!(
                                "warning: manifest {} ends in a torn record ({} bytes); \
                                 truncating and re-running that trial",
                                path.display(),
                                contents.len() - start,
                            );
                            let f = std::fs::OpenOptions::new().write(true).open(path)?;
                            f.set_len(start as u64)?;
                            f.sync_all()?;
                            torn_tail = true;
                        }
                        None => {
                            return Err(SnapshotError::Corrupt {
                                detail: format!(
                                    "manifest line {} is not a valid trial record",
                                    lineno + 1
                                ),
                            });
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(SnapshotError::Io(e)),
        }
        Ok(TrialManifest {
            path: path.to_path_buf(),
            completed,
            torn_tail,
        })
    }

    /// Whether [`open`](Self::open) found (and truncated) a torn final
    /// record left by a kill mid-append.
    #[must_use]
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// The manifest's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed trials on record.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed.len()
    }

    /// Whether the trial with `seed` has already completed.
    #[must_use]
    pub fn is_done(&self, seed: u64) -> bool {
        self.completed.contains_key(&seed)
    }

    /// The recorded result for `seed`, if that trial completed.
    #[must_use]
    pub fn get(&self, seed: u64) -> Option<&RunResult> {
        self.completed.get(&seed)
    }

    /// Records a completed trial: appends one line and syncs it to disk
    /// before returning, so a subsequent kill cannot lose it. The trace
    /// is not persisted (see the module docs).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn record(&mut self, seed: u64, result: &RunResult) -> Result<(), SnapshotError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = format_line(seed, result);
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.sync_all()?;
        self.completed.insert(seed, strip_trace(result));
        Ok(())
    }
}

/// Renders the canonical manifest line for one completed trial — the same
/// serialization [`TrialManifest::record`] appends, without the trailing
/// newline. Exposed so job runners can emit seed-ordered trial artifacts
/// that are byte-comparable across resumed and uninterrupted runs.
#[must_use]
pub fn trial_line(seed: u64, result: &RunResult) -> String {
    format_line(seed, result)
}

/// The persisted summary: the result minus its trace.
fn strip_trace(result: &RunResult) -> RunResult {
    RunResult::new(
        result.resolved_at(),
        result.rounds_executed(),
        result.initial_nodes(),
        result.final_active(),
        result.winner(),
        result.total_transmissions(),
        Trace::default(),
    )
}

fn format_line(seed: u64, r: &RunResult) -> String {
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
    format!(
        "{{\"seed\":{},\"resolved_at\":{},\"rounds_executed\":{},\"initial_nodes\":{},\"final_active\":{},\"winner\":{},\"total_transmissions\":{}}}",
        seed,
        opt(r.resolved_at()),
        r.rounds_executed(),
        r.initial_nodes(),
        r.final_active(),
        opt(r.winner().map(|w| w as u64)),
        r.total_transmissions(),
    )
}

/// Extracts `"key":<u64|null>` from a flat JSON object line.
fn field(line: &str, key: &str) -> Option<Option<u64>> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix("null") {
        // A key's value must terminate the pair cleanly.
        if stripped.starts_with([',', '}']) {
            return Some(None);
        }
        return None;
    }
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok().map(Some)
}

fn parse_line(line: &str) -> Option<(u64, RunResult)> {
    let required = |key: &str| field(line, key).flatten();
    let seed = required("seed")?;
    let resolved_at = field(line, "resolved_at")?;
    let rounds_executed = required("rounds_executed")?;
    let initial_nodes = usize::try_from(required("initial_nodes")?).ok()?;
    let final_active = usize::try_from(required("final_active")?).ok()?;
    let winner = match field(line, "winner")? {
        Some(w) => Some(usize::try_from(w).ok()?),
        None => None,
    };
    let total_transmissions = required("total_transmissions")?;
    Some((
        seed,
        RunResult::new(
            resolved_at,
            rounds_executed,
            initial_nodes,
            final_active,
            winner,
            total_transmissions,
            Trace::default(),
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fading-sim-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn result(rounds: u64) -> RunResult {
        RunResult::new(Some(rounds), rounds, 16, 3, Some(2), 40, Trace::default())
    }

    #[test]
    fn records_persist_across_reopen() {
        let path = tmp("reopen.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let mut m = TrialManifest::open(&path).unwrap();
            assert_eq!(m.completed(), 0);
            m.record(100, &result(7)).unwrap();
            m.record(101, &result(9)).unwrap();
            assert!(m.is_done(100));
            assert!(!m.is_done(102));
        }
        let m = TrialManifest::open(&path).unwrap();
        assert_eq!(m.completed(), 2);
        assert_eq!(m.get(101).map(RunResult::rounds_executed), Some(9));
        assert_eq!(m.get(100), Some(&result(7)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unresolved_runs_round_trip_null_fields() {
        let path = tmp("nulls.jsonl");
        std::fs::remove_file(&path).ok();
        let capped = RunResult::new(None, 500, 8, 8, None, 900, Trace::default());
        {
            let mut m = TrialManifest::open(&path).unwrap();
            m.record(5, &capped).unwrap();
        }
        let m = TrialManifest::open(&path).unwrap();
        let got = m.get(5).unwrap();
        assert_eq!(got, &capped);
        assert!(!got.resolved());
        assert_eq!(got.winner(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_manifest_fails_loudly() {
        let path = tmp("damaged.jsonl");
        std::fs::write(&path, "{\"seed\":1,\"resolved_at\":oops}\n").unwrap();
        match TrialManifest::open(&path) {
            Err(SnapshotError::Corrupt { detail }) => {
                assert!(detail.contains("line 1"), "unexpected detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    // SIGKILL mid-append leaves a strict prefix of the final `line\n`
    // write. Every such prefix must open cleanly: the torn bytes are
    // truncated away (or the lost newline restored), earlier records
    // survive, and a subsequent append lands on its own line.
    #[test]
    fn torn_tail_tolerated_at_every_byte_offset() {
        let full_path = tmp("torn-full.jsonl");
        std::fs::remove_file(&full_path).ok();
        {
            let mut m = TrialManifest::open(&full_path).unwrap();
            m.record(10, &result(3)).unwrap();
            m.record(11, &result(5)).unwrap();
            m.record(12, &result(8)).unwrap();
        }
        let bytes = std::fs::read(&full_path).unwrap();
        let text = std::str::from_utf8(&bytes).unwrap();
        // Byte offset where the last record (line 3) begins.
        let last_start = text.trim_end_matches('\n').rfind('\n').unwrap() + 1;

        for cut in last_start..bytes.len() {
            let path = tmp("torn-cut.jsonl");
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let mut m = TrialManifest::open(&path)
                .unwrap_or_else(|e| panic!("cut at byte {cut} failed to open: {e:?}"));
            let full_line_no_newline = cut == bytes.len() - 1;
            if full_line_no_newline {
                // Only the newline was lost: the record itself is intact.
                assert_eq!(m.completed(), 3, "cut at byte {cut}");
                assert!(!m.torn_tail(), "cut at byte {cut}");
            } else if cut == last_start {
                // The whole record vanished; nothing torn remains on disk.
                assert_eq!(m.completed(), 2, "cut at byte {cut}");
                assert!(!m.torn_tail(), "cut at byte {cut}");
            } else {
                assert_eq!(m.completed(), 2, "cut at byte {cut}");
                assert!(m.torn_tail(), "cut at byte {cut}");
                assert!(!m.is_done(12), "cut at byte {cut}");
            }
            // The repaired file must stay append-clean: a fresh record and
            // a reopen must round-trip every surviving trial.
            m.record(99, &result(21)).unwrap();
            let reopened = TrialManifest::open(&path).unwrap();
            assert!(!reopened.torn_tail(), "cut at byte {cut}");
            assert_eq!(
                reopened.completed(),
                m.completed(),
                "cut at byte {cut}: reopen lost records"
            );
            assert_eq!(reopened.get(99), Some(&result(21)), "cut at byte {cut}");
            std::fs::remove_file(&path).ok();
        }
        std::fs::remove_file(&full_path).ok();
    }

    // A torn append can only be the *final* line; an unparseable line with
    // records after it (or with its newline intact) is real corruption and
    // must still fail loudly.
    #[test]
    fn mid_file_damage_still_fails_loudly() {
        let path = tmp("mid-damage.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let mut m = TrialManifest::open(&path).unwrap();
            m.record(1, &result(4)).unwrap();
            m.record(2, &result(6)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let damaged = text.replacen("\"seed\":1", "\"seed\":??", 1);
        std::fs::write(&path, damaged).unwrap();
        match TrialManifest::open(&path) {
            Err(SnapshotError::Corrupt { detail }) => {
                assert!(detail.contains("line 1"), "unexpected detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_manifest() {
        let path = tmp("never-written.jsonl");
        std::fs::remove_file(&path).ok();
        let m = TrialManifest::open(&path).unwrap();
        assert_eq!(m.completed(), 0);
    }

    #[test]
    fn traces_are_stripped_from_records() {
        let path = tmp("strip.jsonl");
        std::fs::remove_file(&path).ok();
        let mut trace = Trace::default();
        trace.push_capped(
            16,
            crate::result::RoundRecord {
                round: 1,
                active_before: 4,
                transmitters: 2,
                knocked_out: 0,
                transmitter_ids: None,
            },
        );
        let traced = RunResult::new(Some(3), 3, 4, 1, Some(0), 6, trace);
        let mut m = TrialManifest::open(&path).unwrap();
        m.record(9, &traced).unwrap();
        assert!(m.get(9).unwrap().trace().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
