//! Fault-tolerant execution: checkpoint/resume, trial supervision, and
//! resume manifests.
//!
//! Three pillars (DESIGN.md §13):
//!
//! * [`snapshot`] — a serializable, checksummed [`SimSnapshot`] captured
//!   by [`Simulation::snapshot`](crate::Simulation::snapshot) and loaded
//!   by [`Simulation::restore`](crate::Simulation::restore); a restored
//!   run is **byte-identical** to an uninterrupted one across every
//!   engine tier, with active fault plans included.
//! * [`supervisor`] — per-trial panic isolation (`catch_unwind` + a
//!   panic taxonomy), bounded same-seed retry, a wall-clock watchdog
//!   producing typed [`TrialOutcome::TimedOut`]s, and the
//!   [`FleetSummary`] tally; driven by
//!   [`montecarlo::run_trials_supervised`](crate::montecarlo::run_trials_supervised).
//! * [`manifest`] — append-only JSONL [`TrialManifest`]s letting
//!   [`montecarlo::run_trials_with_manifest`](crate::montecarlo::run_trials_with_manifest)
//!   skip already-completed trials on resume.
//!
//! The third robustness pillar — opt-in self-checking engines with
//! graceful tier degradation — lives on [`Simulation`](crate::Simulation)
//! itself (see [`Simulation::set_self_check`](crate::Simulation::set_self_check)).

pub mod manifest;
pub mod snapshot;
pub mod supervisor;

pub use manifest::{trial_line, TrialManifest};
pub use snapshot::{SimSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use supervisor::{
    supervise_trial, supervise_trial_observed, FleetSummary, PanicKind, SupervisedRun,
    SupervisorConfig, TrialFn, TrialOutcome,
};
