//! Trial supervision: panic isolation, bounded retry, and a watchdog.
//!
//! A Monte-Carlo fleet at n = 10⁶ spends minutes per trial; one panicking
//! or hung trial must not take the whole batch with it. The supervisor
//! wraps each trial in [`std::panic::catch_unwind`], classifies panics
//! into a small taxonomy, retries panicked trials a bounded number of
//! times **with the same seed** (a deterministic panic will reproduce; a
//! heisenbug from e.g. memory pressure gets another chance), and — when a
//! wall-clock timeout is configured — runs the trial on a watchdog thread
//! so a hung trial becomes a typed [`TrialOutcome::TimedOut`] instead of
//! wedging the pool.
//!
//! Everything rolls up into a [`FleetSummary`]
//! (`succeeded`/`retried`/`timed_out`/`poisoned`) with a JSON round-trip
//! for the telemetry sidecar files.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use crate::obs::progress::{NoopProgress, ProgressEvent, ProgressSink};
use crate::result::RunResult;

/// The supervised trial closure: seed in, result out. `'static` because
/// the watchdog path hands the closure to a detached thread.
pub type TrialFn = dyn Fn(u64) -> RunResult + Send + Sync + 'static;

/// How the supervisor treats each trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// How many times a *panicked* trial is re-run (same seed, fresh
    /// state) before being reported as [`TrialOutcome::Panicked`].
    /// Timeouts are never retried — a deterministic hang would hang again.
    pub max_retries: u32,
    /// Wall-clock budget per trial attempt. `None` (the default) runs the
    /// trial inline with no watchdog thread — the zero-overhead path.
    pub timeout: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 1,
            timeout: None,
        }
    }
}

/// Coarse classification of a caught panic, derived from its message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// Slice/array index out of bounds.
    IndexOutOfBounds,
    /// Arithmetic overflow or underflow (debug-checked arithmetic).
    ArithmeticOverflow,
    /// A failed `assert!`/`assert_eq!`/`debug_assert!`.
    Assertion,
    /// An `unwrap()`/`expect()` on `None`/`Err`.
    UnwrapFailed,
    /// Anything else (including non-string payloads).
    Other,
}

impl PanicKind {
    /// Best-effort classification from the panic payload's message.
    #[must_use]
    pub fn classify(message: &str) -> Self {
        if message.contains("index out of bounds") || message.contains("out of range") {
            PanicKind::IndexOutOfBounds
        } else if message.contains("overflow") {
            PanicKind::ArithmeticOverflow
        } else if message.contains("assertion") {
            PanicKind::Assertion
        } else if message.contains("unwrap()") || message.contains("expect()") {
            PanicKind::UnwrapFailed
        } else {
            PanicKind::Other
        }
    }

    /// Stable label for telemetry.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PanicKind::IndexOutOfBounds => "index_out_of_bounds",
            PanicKind::ArithmeticOverflow => "arithmetic_overflow",
            PanicKind::Assertion => "assertion",
            PanicKind::UnwrapFailed => "unwrap_failed",
            PanicKind::Other => "other",
        }
    }

    /// Inverse of [`PanicKind::name`] (used by the progress-event parser).
    #[must_use]
    pub fn from_name(name: &str) -> Option<PanicKind> {
        [
            PanicKind::IndexOutOfBounds,
            PanicKind::ArithmeticOverflow,
            PanicKind::Assertion,
            PanicKind::UnwrapFailed,
            PanicKind::Other,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// The terminal outcome of one supervised trial. Every trial reports
/// **exactly one** of these — in particular, a completed result that
/// arrives at the timeout deadline beats the timeout (see
/// `await_completion`), so a trial can never be both.
#[derive(Debug)]
pub enum TrialOutcome {
    /// The trial produced a result (possibly after retries).
    Succeeded {
        /// The trial's seed.
        seed: u64,
        /// The run result.
        result: RunResult,
        /// How many panicked attempts preceded the success.
        retries: u32,
    },
    /// Every attempt panicked; the trial is poisoned.
    Panicked {
        /// The trial's seed.
        seed: u64,
        /// Classification of the final panic.
        kind: PanicKind,
        /// The final panic's message.
        message: String,
        /// Retries consumed (equals the config's `max_retries`).
        retries: u32,
    },
    /// The attempt outlived its wall-clock budget. The runaway thread is
    /// left detached (there is no safe way to kill it); its eventual
    /// result is discarded.
    TimedOut {
        /// The trial's seed.
        seed: u64,
        /// The budget that was exceeded.
        timeout: Duration,
        /// Panicked attempts that preceded the timeout.
        retries: u32,
    },
}

impl TrialOutcome {
    /// The trial's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self {
            TrialOutcome::Succeeded { seed, .. }
            | TrialOutcome::Panicked { seed, .. }
            | TrialOutcome::TimedOut { seed, .. } => *seed,
        }
    }

    /// The run result, when the trial succeeded.
    #[must_use]
    pub fn result(&self) -> Option<&RunResult> {
        match self {
            TrialOutcome::Succeeded { result, .. } => Some(result),
            _ => None,
        }
    }

    /// `true` iff the trial produced a result.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, TrialOutcome::Succeeded { .. })
    }
}

/// Aggregate tally over a supervised fleet of trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetSummary {
    /// Trials supervised.
    pub trials: u64,
    /// Trials that produced a result.
    pub succeeded: u64,
    /// Panicked attempts that were re-run (counts attempts, not trials).
    pub retried: u64,
    /// Trials that exceeded their wall-clock budget.
    pub timed_out: u64,
    /// Trials whose every attempt panicked.
    pub poisoned: u64,
}

impl FleetSummary {
    /// Folds one trial outcome into the tally.
    pub fn record(&mut self, outcome: &TrialOutcome) {
        self.trials += 1;
        match outcome {
            TrialOutcome::Succeeded { retries, .. } => {
                self.succeeded += 1;
                self.retried += u64::from(*retries);
            }
            TrialOutcome::Panicked { retries, .. } => {
                self.poisoned += 1;
                self.retried += u64::from(*retries);
            }
            TrialOutcome::TimedOut { retries, .. } => {
                self.timed_out += 1;
                self.retried += u64::from(*retries);
            }
        }
    }

    /// Merges another fleet's tally into this one (sharded runs).
    pub fn merge(&mut self, other: &FleetSummary) {
        self.trials += other.trials;
        self.succeeded += other.succeeded;
        self.retried += other.retried;
        self.timed_out += other.timed_out;
        self.poisoned += other.poisoned;
    }

    /// One-line JSON object, stable key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trials\":{},\"succeeded\":{},\"retried\":{},\"timed_out\":{},\"poisoned\":{}}}",
            self.trials, self.succeeded, self.retried, self.timed_out, self.poisoned
        )
    }

    /// Parses the output of [`FleetSummary::to_json`]. Returns `None` on
    /// any missing key or malformed number (unknown keys are ignored).
    #[must_use]
    pub fn from_json(json: &str) -> Option<Self> {
        let field = |key: &str| -> Option<u64> {
            let pat = format!("\"{key}\":");
            let start = json.find(&pat)? + pat.len();
            let rest = &json[start..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        Some(FleetSummary {
            trials: field("trials")?,
            succeeded: field("succeeded")?,
            retried: field("retried")?,
            timed_out: field("timed_out")?,
            poisoned: field("poisoned")?,
        })
    }
}

/// The outcomes and tally of one supervised fleet, seed-ordered.
#[derive(Debug)]
pub struct SupervisedRun {
    /// Per-trial outcomes, ordered by seed (`base_seed + i`).
    pub outcomes: Vec<TrialOutcome>,
    /// The aggregate tally.
    pub summary: FleetSummary,
}

impl SupervisedRun {
    /// The successful results in seed order (panicked/timed-out trials
    /// are skipped).
    #[must_use]
    pub fn results(&self) -> Vec<&RunResult> {
        self.outcomes.iter().filter_map(TrialOutcome::result).collect()
    }
}

/// One attempt's fate, before retry bookkeeping.
enum Attempt {
    Completed(RunResult),
    Panicked(String),
    TimedOut,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Waits for the watchdog channel. Precedence is pinned here: when the
/// deadline fires, one final non-blocking poll runs first, so a result
/// that completed *at* the deadline — including a `RoundCapExhausted`
/// run — wins over the timeout. Exactly one terminal outcome, always.
fn await_completion(
    rx: &mpsc::Receiver<thread::Result<RunResult>>,
    timeout: Duration,
) -> Attempt {
    let completed = |done: thread::Result<RunResult>| match done {
        Ok(result) => Attempt::Completed(result),
        Err(payload) => Attempt::Panicked(panic_message(payload.as_ref())),
    };
    match rx.recv_timeout(timeout) {
        Ok(done) => completed(done),
        Err(mpsc::RecvTimeoutError::Timeout) => match rx.try_recv() {
            Ok(done) => completed(done),
            Err(_) => Attempt::TimedOut,
        },
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Attempt::Panicked("trial thread exited without reporting".to_string())
        }
    }
}

fn attempt_with_watchdog(trial: &Arc<TrialFn>, seed: u64, timeout: Duration) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let trial = Arc::clone(trial);
    let spawned = thread::Builder::new()
        .name(format!("fading-trial-{seed}"))
        .spawn(move || {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| trial(seed)));
            // The supervisor may have given up already; a dead receiver
            // just means the result is discarded.
            let _ = tx.send(outcome);
        });
    match spawned {
        Ok(_handle) => await_completion(&rx, timeout),
        Err(e) => Attempt::Panicked(format!("watchdog thread spawn failed: {e}")),
    }
}

/// Runs one trial under the supervisor's policy: panic isolation, bounded
/// same-seed retry, and (when configured) the wall-clock watchdog.
///
/// Without a timeout the trial runs inline under `catch_unwind` — no
/// thread, no channel, no allocation on the success path — which is what
/// keeps supervision overhead within the bench gate's 2% budget.
#[must_use]
pub fn supervise_trial(cfg: &SupervisorConfig, seed: u64, trial: &Arc<TrialFn>) -> TrialOutcome {
    supervise_trial_observed(cfg, seed, trial, &NoopProgress)
}

/// [`supervise_trial`] with live progress: emits [`ProgressEvent`]s into
/// `sink` around the same supervision loop — `TrialStarted` before the
/// first attempt, `TrialRetried` before each re-run, and exactly one
/// terminal event mirroring the returned [`TrialOutcome`].
///
/// The sink only observes: it is called on this thread (never on the
/// watchdog's trial thread), it cannot alter the outcome, and
/// `supervise_trial` is literally this function with a no-op sink — so
/// observed and unobserved supervision are the same code path.
#[must_use]
pub fn supervise_trial_observed(
    cfg: &SupervisorConfig,
    seed: u64,
    trial: &Arc<TrialFn>,
    sink: &dyn ProgressSink,
) -> TrialOutcome {
    let mut retries = 0;
    sink.on_event(&ProgressEvent::TrialStarted { seed });
    loop {
        let attempt = match cfg.timeout {
            None => match panic::catch_unwind(AssertUnwindSafe(|| trial(seed))) {
                Ok(result) => Attempt::Completed(result),
                Err(payload) => Attempt::Panicked(panic_message(payload.as_ref())),
            },
            Some(timeout) => attempt_with_watchdog(trial, seed, timeout),
        };
        match attempt {
            Attempt::Completed(result) => {
                sink.on_event(&ProgressEvent::TrialFinished {
                    seed,
                    rounds: result.rounds_executed(),
                    resolved: result.resolved(),
                    retries,
                });
                return TrialOutcome::Succeeded {
                    seed,
                    result,
                    retries,
                };
            }
            Attempt::TimedOut => {
                // recv_timeout already consumed the budget; unwrap is
                // safe by construction (only the Some branch times out).
                let timeout = cfg.timeout.unwrap_or_default();
                sink.on_event(&ProgressEvent::TrialTimedOut {
                    seed,
                    timeout_ms: timeout.as_millis() as u64,
                    retries,
                });
                return TrialOutcome::TimedOut {
                    seed,
                    timeout,
                    retries,
                };
            }
            Attempt::Panicked(message) => {
                if retries >= cfg.max_retries {
                    let kind = PanicKind::classify(&message);
                    sink.on_event(&ProgressEvent::TrialPoisoned {
                        seed,
                        kind,
                        retries,
                    });
                    return TrialOutcome::Panicked {
                        seed,
                        kind,
                        message,
                        retries,
                    };
                }
                retries += 1;
                sink.on_event(&ProgressEvent::TrialRetried { seed, retries });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Trace;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn dummy_result(rounds: u64) -> RunResult {
        RunResult::new(Some(rounds), rounds, 4, 1, Some(0), 9, Trace::default())
    }

    fn arc(f: impl Fn(u64) -> RunResult + Send + Sync + 'static) -> Arc<TrialFn> {
        Arc::new(f)
    }

    #[test]
    fn successful_trial_passes_through() {
        let cfg = SupervisorConfig::default();
        let outcome = supervise_trial(&cfg, 7, &arc(dummy_result));
        match outcome {
            TrialOutcome::Succeeded {
                seed,
                result,
                retries,
            } => {
                assert_eq!(seed, 7);
                assert_eq!(result.rounds_executed(), 7);
                assert_eq!(retries, 0);
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn panicking_trial_is_retried_then_poisoned() {
        let cfg = SupervisorConfig {
            max_retries: 2,
            timeout: None,
        };
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&attempts);
        let outcome = supervise_trial(
            &cfg,
            3,
            &arc(move |_| {
                seen.fetch_add(1, Ordering::SeqCst);
                panic!("index out of bounds: the len is 4 but the index is 9")
            }),
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        match outcome {
            TrialOutcome::Panicked {
                kind,
                retries,
                message,
                ..
            } => {
                assert_eq!(kind, PanicKind::IndexOutOfBounds);
                assert_eq!(retries, 2);
                assert!(message.contains("index out of bounds"));
            }
            other => panic!("expected poisoned, got {other:?}"),
        }
    }

    #[test]
    fn flaky_trial_recovers_with_retry_count() {
        let cfg = SupervisorConfig {
            max_retries: 3,
            timeout: None,
        };
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&attempts);
        let outcome = supervise_trial(
            &cfg,
            5,
            &arc(move |seed| {
                if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                dummy_result(seed)
            }),
        );
        match outcome {
            TrialOutcome::Succeeded { retries, .. } => assert_eq!(retries, 2),
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn hung_trial_times_out_without_wedging() {
        let cfg = SupervisorConfig {
            max_retries: 0,
            timeout: Some(Duration::from_millis(50)),
        };
        let outcome = supervise_trial(
            &cfg,
            11,
            &arc(|_| {
                // Simulated hang, far beyond the watchdog budget. The
                // detached thread dies with the test process.
                thread::sleep(Duration::from_secs(300));
                dummy_result(1)
            }),
        );
        match outcome {
            TrialOutcome::TimedOut { seed, timeout, .. } => {
                assert_eq!(seed, 11);
                assert_eq!(timeout, Duration::from_millis(50));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_still_reports_success_and_panic() {
        let cfg = SupervisorConfig {
            max_retries: 0,
            timeout: Some(Duration::from_secs(30)),
        };
        assert!(supervise_trial(&cfg, 2, &arc(dummy_result)).is_success());
        let outcome = supervise_trial(&cfg, 2, &arc(|_| panic!("boom")));
        assert!(matches!(outcome, TrialOutcome::Panicked { .. }));
    }

    /// Satellite regression: the deadline poll precedence. A result that
    /// is already in the channel when the deadline fires must win over
    /// `TimedOut` — even a zero timeout cannot steal a completed run.
    #[test]
    fn completed_result_beats_the_deadline() {
        let (tx, rx) = mpsc::channel::<thread::Result<RunResult>>();
        tx.send(Ok(dummy_result(123))).unwrap();
        match await_completion(&rx, Duration::ZERO) {
            Attempt::Completed(result) => assert_eq!(result.rounds_executed(), 123),
            Attempt::Panicked(_) | Attempt::TimedOut => {
                panic!("a completed result must beat the deadline")
            }
        }
    }

    /// …and the cap-exhausted variant specifically: `RoundCapExhausted`
    /// is a *completed* outcome, not a hang — it must never be reported
    /// as `TimedOut` when both race.
    #[test]
    fn round_cap_exhausted_beats_the_deadline() {
        let capped = RunResult::new(None, 500, 8, 3, None, 42, Trace::default());
        assert!(!capped.outcome().is_resolved());
        let (tx, rx) = mpsc::channel::<thread::Result<RunResult>>();
        tx.send(Ok(capped)).unwrap();
        match await_completion(&rx, Duration::ZERO) {
            Attempt::Completed(result) => {
                assert!(matches!(
                    result.outcome(),
                    crate::RunOutcome::RoundCapExhausted { rounds_executed: 500 }
                ));
            }
            Attempt::Panicked(_) | Attempt::TimedOut => {
                panic!("RoundCapExhausted must win the race against the watchdog")
            }
        }
    }

    #[test]
    fn empty_channel_at_deadline_times_out() {
        let (tx, rx) = mpsc::channel::<thread::Result<RunResult>>();
        match await_completion(&rx, Duration::ZERO) {
            Attempt::TimedOut => {}
            Attempt::Completed(_) | Attempt::Panicked(_) => {
                panic!("nothing completed, the deadline must fire")
            }
        }
        drop(tx);
    }

    #[test]
    fn panic_taxonomy_classifies() {
        assert_eq!(
            PanicKind::classify("index out of bounds: the len is 2 but the index is 7"),
            PanicKind::IndexOutOfBounds
        );
        assert_eq!(
            PanicKind::classify("attempt to add with overflow"),
            PanicKind::ArithmeticOverflow
        );
        assert_eq!(
            PanicKind::classify("assertion failed: a == b"),
            PanicKind::Assertion
        );
        assert_eq!(
            PanicKind::classify("called `Option::unwrap()` on a `None` value"),
            PanicKind::UnwrapFailed
        );
        assert_eq!(PanicKind::classify("something else"), PanicKind::Other);
        for kind in [
            PanicKind::IndexOutOfBounds,
            PanicKind::ArithmeticOverflow,
            PanicKind::Assertion,
            PanicKind::UnwrapFailed,
            PanicKind::Other,
        ] {
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn fleet_summary_records_and_round_trips() {
        let mut summary = FleetSummary::default();
        summary.record(&TrialOutcome::Succeeded {
            seed: 0,
            result: dummy_result(1),
            retries: 2,
        });
        summary.record(&TrialOutcome::Panicked {
            seed: 1,
            kind: PanicKind::Other,
            message: "x".into(),
            retries: 1,
        });
        summary.record(&TrialOutcome::TimedOut {
            seed: 2,
            timeout: Duration::from_secs(1),
            retries: 0,
        });
        assert_eq!(summary.trials, 3);
        assert_eq!(summary.succeeded, 1);
        assert_eq!(summary.poisoned, 1);
        assert_eq!(summary.timed_out, 1);
        assert_eq!(summary.retried, 3);

        let json = summary.to_json();
        assert_eq!(FleetSummary::from_json(&json), Some(summary));
        assert_eq!(FleetSummary::from_json("{}"), None);

        let mut merged = summary;
        merged.merge(&summary);
        assert_eq!(merged.trials, 6);
        assert_eq!(merged.retried, 6);
    }
}
