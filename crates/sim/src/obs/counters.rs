//! Engine-decision counters: which resolve path fired, how often, and why.

use fading_channel::FarFieldStats;

/// Which resolve tier served one round's channel resolution.
///
/// The step loop picks the path per round (see DESIGN.md §10's tier
/// table): the hierarchical engine above the flat engine's comfort zone,
/// the far-field engine when enabled and no SINR detail is wanted, the
/// instrumented scan when a sink asked for SINR breakdowns, the gain
/// cache when built and enabled, the exact scan otherwise. The choice
/// never changes receptions — all five paths are bit-identical by
/// contract — so recording it in [`RoundEvent`] is observability, not
/// behavior.
///
/// [`RoundEvent`]: crate::telemetry::RoundEvent
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ResolvePath {
    /// Canonical O(listeners × transmitters) scan.
    #[default]
    Exact,
    /// Gain-cache tier (precomputed pairwise gains).
    Cached,
    /// Tile-aggregated far-field engine.
    FarField,
    /// Multi-resolution tile-tree far-field engine (parallelizable).
    Hierarchical,
    /// Instrumented scan producing per-listener SINR breakdowns.
    Instrumented,
}

impl ResolvePath {
    /// Every path, in tier order.
    pub const ALL: [ResolvePath; 5] = [
        ResolvePath::Exact,
        ResolvePath::Cached,
        ResolvePath::FarField,
        ResolvePath::Hierarchical,
        ResolvePath::Instrumented,
    ];

    /// Stable label used by JSONL and the Prometheus exporter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ResolvePath::Exact => "exact",
            ResolvePath::Cached => "gain_cache",
            ResolvePath::FarField => "farfield",
            ResolvePath::Hierarchical => "hierarchical",
            ResolvePath::Instrumented => "instrumented",
        }
    }

    /// Inverse of [`ResolvePath::name`] (used by the JSONL parser).
    #[must_use]
    pub fn from_name(name: &str) -> Option<ResolvePath> {
        ResolvePath::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One unified view of every engine-level decision counter a simulation
/// accumulates: per-path round routing, gain-cache activity, fault
/// perturbation activity, and the far-field decision ladder's per-rung
/// counters. Read it with
/// [`Simulation::engine_counters`](crate::Simulation::engine_counters);
/// serialize it with [`telemetry::jsonl::counters_to_json`] or
/// [`obs::export::prometheus`](crate::obs::export::prometheus).
///
/// Invariant (asserted in the equivalence/determinism suites): the five
/// `*_rounds` route counters sum to `rounds`, and
/// `farfield.listeners_resolved()` equals the sum of the ladder's rung
/// counters.
///
/// [`telemetry::jsonl::counters_to_json`]: crate::telemetry::jsonl::counters_to_json
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineCounters {
    /// Rounds stepped.
    pub rounds: u64,
    /// Rounds resolved by the far-field engine.
    pub farfield_rounds: u64,
    /// Rounds resolved by the hierarchical (tile-tree) far-field engine.
    pub hierarchical_rounds: u64,
    /// Rounds resolved through the gain cache.
    pub gain_cache_rounds: u64,
    /// Rounds resolved by the canonical exact scan.
    pub exact_rounds: u64,
    /// Rounds resolved through the instrumented (SINR-detail) scan.
    pub instrumented_rounds: u64,
    /// Whether a gain cache was built for this deployment (size guard
    /// admitted it and the channel has deterministic gains).
    pub gain_cache_built: bool,
    /// Rounds in which a built cache was bypassed (disabled by
    /// `set_gain_cache_enabled(false)` or superseded by another path).
    pub gain_cache_bypassed_rounds: u64,
    /// Rounds resolved under a non-neutral perturbation (jamming and/or
    /// noise scaling active).
    pub perturbed_rounds: u64,
    /// Rounds with at least one active jammer.
    pub jammed_rounds: u64,
    /// Rounds with a noise-burst scale ≠ 1.
    pub noise_scaled_rounds: u64,
    /// Messages dropped by Gilbert–Elliott burst loss, total.
    pub ge_dropped: u64,
    /// Churn events applied, total.
    pub churn_applied: u64,
    /// Rounds in which the opt-in self-check audited sampled listeners
    /// against the exact resolve path (see
    /// [`Simulation::set_self_check`](crate::Simulation::set_self_check)).
    pub self_check_rounds: u64,
    /// Listener decisions re-resolved by the self-check, total.
    pub self_check_samples: u64,
    /// Self-check violations observed (reception mismatch or non-finite
    /// SINR intermediate), total.
    pub self_check_violations: u64,
    /// Engine-tier demotions triggered by self-check violations
    /// (hierarchical → farfield → gain-cache → exact), total.
    pub tier_demotions: u64,
    /// The per-rung decision-ladder counters, aggregated over **both**
    /// far-field engines (flat and hierarchical — they share the same
    /// 5-rung ladder; all zero when neither engine served a round).
    pub farfield: FarFieldStats,
}

impl EngineCounters {
    /// Sum of the per-path route counters; equals `rounds` by invariant.
    #[must_use]
    pub fn routed_rounds(&self) -> u64 {
        self.farfield_rounds
            + self.hierarchical_rounds
            + self.gain_cache_rounds
            + self.exact_rounds
            + self.instrumented_rounds
    }

    /// The route counter for one path.
    #[must_use]
    pub fn rounds_for(&self, path: ResolvePath) -> u64 {
        match path {
            ResolvePath::Exact => self.exact_rounds,
            ResolvePath::Cached => self.gain_cache_rounds,
            ResolvePath::FarField => self.farfield_rounds,
            ResolvePath::Hierarchical => self.hierarchical_rounds,
            ResolvePath::Instrumented => self.instrumented_rounds,
        }
    }

    /// Merges another simulation's counters into this one (montecarlo
    /// aggregation). `gain_cache_built` ORs; everything else adds.
    pub fn merge(&mut self, other: &EngineCounters) {
        self.rounds += other.rounds;
        self.farfield_rounds += other.farfield_rounds;
        self.hierarchical_rounds += other.hierarchical_rounds;
        self.gain_cache_rounds += other.gain_cache_rounds;
        self.exact_rounds += other.exact_rounds;
        self.instrumented_rounds += other.instrumented_rounds;
        self.gain_cache_built |= other.gain_cache_built;
        self.gain_cache_bypassed_rounds += other.gain_cache_bypassed_rounds;
        self.perturbed_rounds += other.perturbed_rounds;
        self.jammed_rounds += other.jammed_rounds;
        self.noise_scaled_rounds += other.noise_scaled_rounds;
        self.ge_dropped += other.ge_dropped;
        self.churn_applied += other.churn_applied;
        self.self_check_rounds += other.self_check_rounds;
        self.self_check_samples += other.self_check_samples;
        self.self_check_violations += other.self_check_violations;
        self.tier_demotions += other.tier_demotions;
        let f = &other.farfield;
        self.farfield.rounds += f.rounds;
        self.farfield.empty_round_silences += f.empty_round_silences;
        self.farfield.nonfinite_fallbacks += f.nonfinite_fallbacks;
        self.farfield.noise_floor_silences += f.noise_floor_silences;
        self.farfield.no_near_winner_fallbacks += f.no_near_winner_fallbacks;
        self.farfield.far_rival_fallbacks += f.far_rival_fallbacks;
        self.farfield.bracket_decisions += f.bracket_decisions;
        self.farfield.bracket_straddle_fallbacks += f.bracket_straddle_fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_path_names_round_trip() {
        for p in ResolvePath::ALL {
            assert_eq!(ResolvePath::from_name(p.name()), Some(p));
        }
        assert_eq!(ResolvePath::from_name("warp-drive"), None);
    }

    #[test]
    fn routed_rounds_sums_paths() {
        let mut c = EngineCounters {
            rounds: 15,
            farfield_rounds: 4,
            hierarchical_rounds: 5,
            gain_cache_rounds: 3,
            exact_rounds: 2,
            instrumented_rounds: 1,
            ..EngineCounters::default()
        };
        assert_eq!(c.routed_rounds(), 15);
        for p in ResolvePath::ALL {
            assert!(c.rounds_for(p) > 0);
        }
        let other = c;
        c.merge(&other);
        assert_eq!(c.rounds, 30);
        assert_eq!(c.routed_rounds(), 30);
    }

    #[test]
    fn merge_adds_ladder_counters_and_ors_built() {
        let mut a = EngineCounters {
            gain_cache_built: false,
            ..EngineCounters::default()
        };
        a.farfield.bracket_decisions = 5;
        let mut b = EngineCounters {
            gain_cache_built: true,
            ..EngineCounters::default()
        };
        b.farfield.bracket_decisions = 7;
        b.farfield.noise_floor_silences = 2;
        a.merge(&b);
        assert!(a.gain_cache_built);
        assert_eq!(a.farfield.bracket_decisions, 12);
        assert_eq!(a.farfield.noise_floor_silences, 2);
    }
}
