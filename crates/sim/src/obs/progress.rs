//! Structured trial-progress events for supervised Monte-Carlo fleets.
//!
//! Supervision used to be a black box: a fleet went in, a
//! [`FleetSummary`](crate::recover::FleetSummary) came out, and everything
//! in between — which seed is running, which one is on its second retry,
//! which one just hit the watchdog — was invisible. A [`ProgressSink`]
//! attached to the observed runner variants
//! ([`montecarlo::run_trials_supervised_observed`] and
//! [`montecarlo::run_trials_supervised_with_manifest_observed`]) receives
//! one typed [`ProgressEvent`] per trial transition, as it happens.
//!
//! The determinism contract extends here: a sink only *observes* the
//! supervisor — it can never change a trial's outcome, and the observed
//! runners produce byte-identical [`RunResult`](crate::RunResult)s to the
//! unobserved ones (pinned by `crates/sim/tests/progress.rs`). Events are
//! emitted from whichever worker thread supervises the trial, so a sink
//! must be internally synchronized (`Send + Sync`); *ordering across
//! seeds* follows scheduling, while the per-seed sequence
//! (started → retried\* → terminal) is always in order.
//!
//! Every event has a one-line JSON form ([`ProgressEvent::to_json`] /
//! [`ProgressEvent::from_json`]) with the same bit-exact round-trip
//! guarantee as the other exporters; the job server forwards these lines
//! to `watch` subscribers verbatim (plus job/timestamp fields, which the
//! parser here ignores as unknown keys).
//!
//! [`montecarlo::run_trials_supervised_observed`]: crate::montecarlo::run_trials_supervised_observed
//! [`montecarlo::run_trials_supervised_with_manifest_observed`]: crate::montecarlo::run_trials_supervised_with_manifest_observed

use std::sync::Mutex;

use crate::recover::PanicKind;
use crate::telemetry::jsonl::{parse_json, JsonValue, JsonlError};

/// One supervised-trial transition. Seeds and counts are `u64`/`u32`; all
/// values survive the JSON round-trip exactly (they stay well inside the
/// `f64`-exact integer range — seeds are `seed_base + index`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A trial's first attempt is about to run.
    TrialStarted {
        /// The trial's seed.
        seed: u64,
    },
    /// A panicked attempt is being re-run with the same seed.
    TrialRetried {
        /// The trial's seed.
        seed: u64,
        /// Which retry this is (1 = first re-run).
        retries: u32,
    },
    /// The trial produced a result.
    TrialFinished {
        /// The trial's seed.
        seed: u64,
        /// Rounds the run executed.
        rounds: u64,
        /// Whether the run resolved within its round budget.
        resolved: bool,
        /// Panicked attempts that preceded the success.
        retries: u32,
    },
    /// The trial exceeded its wall-clock budget.
    TrialTimedOut {
        /// The trial's seed.
        seed: u64,
        /// The budget that was exceeded, in milliseconds.
        timeout_ms: u64,
        /// Panicked attempts that preceded the timeout.
        retries: u32,
    },
    /// Every attempt panicked; the trial is poisoned.
    TrialPoisoned {
        /// The trial's seed.
        seed: u64,
        /// Classification of the final panic.
        kind: PanicKind,
        /// Retries consumed.
        retries: u32,
    },
}

impl ProgressEvent {
    /// The trial's seed, for any variant.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self {
            ProgressEvent::TrialStarted { seed }
            | ProgressEvent::TrialRetried { seed, .. }
            | ProgressEvent::TrialFinished { seed, .. }
            | ProgressEvent::TrialTimedOut { seed, .. }
            | ProgressEvent::TrialPoisoned { seed, .. } => *seed,
        }
    }

    /// Stable wire label for the variant (the JSON `event` field).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ProgressEvent::TrialStarted { .. } => "trial_started",
            ProgressEvent::TrialRetried { .. } => "trial_retried",
            ProgressEvent::TrialFinished { .. } => "trial_finished",
            ProgressEvent::TrialTimedOut { .. } => "trial_timed_out",
            ProgressEvent::TrialPoisoned { .. } => "trial_poisoned",
        }
    }

    /// `true` iff this is a terminal event (finished / timed out /
    /// poisoned) — exactly one arrives per supervised trial.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            ProgressEvent::TrialFinished { .. }
                | ProgressEvent::TrialTimedOut { .. }
                | ProgressEvent::TrialPoisoned { .. }
        )
    }

    /// One-line JSON object, stable key order, no trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            ProgressEvent::TrialStarted { seed } => {
                format!("{{\"event\":\"trial_started\",\"seed\":{seed}}}")
            }
            ProgressEvent::TrialRetried { seed, retries } => format!(
                "{{\"event\":\"trial_retried\",\"seed\":{seed},\"retries\":{retries}}}"
            ),
            ProgressEvent::TrialFinished {
                seed,
                rounds,
                resolved,
                retries,
            } => format!(
                "{{\"event\":\"trial_finished\",\"seed\":{seed},\"rounds\":{rounds},\
                 \"resolved\":{resolved},\"retries\":{retries}}}"
            ),
            ProgressEvent::TrialTimedOut {
                seed,
                timeout_ms,
                retries,
            } => format!(
                "{{\"event\":\"trial_timed_out\",\"seed\":{seed},\"timeout_ms\":{timeout_ms},\
                 \"retries\":{retries}}}"
            ),
            ProgressEvent::TrialPoisoned {
                seed,
                kind,
                retries,
            } => format!(
                "{{\"event\":\"trial_poisoned\",\"seed\":{seed},\"kind\":\"{}\",\
                 \"retries\":{retries}}}",
                kind.name()
            ),
        }
    }

    /// Parses the output of [`ProgressEvent::to_json`]. Unknown keys are
    /// ignored (the server splices `job`/`t_ms` fields into forwarded
    /// lines); missing keys are an error.
    ///
    /// # Errors
    ///
    /// [`JsonlError::Parse`] on malformed JSON, an unknown `event` label,
    /// or a missing field.
    pub fn from_json(line: &str) -> Result<ProgressEvent, JsonlError> {
        let v = parse_json(line)?;
        let field_u64 = |key: &str| -> Result<u64, JsonlError> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|f| f as u64)
                .ok_or_else(|| parse_error(format!("missing or non-numeric {key:?}")))
        };
        let field_u32 = |key: &str| field_u64(key).map(|n| n as u32);
        let label = v
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| parse_error("missing \"event\""))?;
        match label {
            "trial_started" => Ok(ProgressEvent::TrialStarted {
                seed: field_u64("seed")?,
            }),
            "trial_retried" => Ok(ProgressEvent::TrialRetried {
                seed: field_u64("seed")?,
                retries: field_u32("retries")?,
            }),
            "trial_finished" => Ok(ProgressEvent::TrialFinished {
                seed: field_u64("seed")?,
                rounds: field_u64("rounds")?,
                resolved: v
                    .get("resolved")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| parse_error("missing or non-bool \"resolved\""))?,
                retries: field_u32("retries")?,
            }),
            "trial_timed_out" => Ok(ProgressEvent::TrialTimedOut {
                seed: field_u64("seed")?,
                timeout_ms: field_u64("timeout_ms")?,
                retries: field_u32("retries")?,
            }),
            "trial_poisoned" => {
                let name = v
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| parse_error("missing \"kind\""))?;
                Ok(ProgressEvent::TrialPoisoned {
                    seed: field_u64("seed")?,
                    kind: PanicKind::from_name(name)
                        .ok_or_else(|| parse_error(format!("unknown panic kind {name:?}")))?,
                    retries: field_u32("retries")?,
                })
            }
            other => Err(parse_error(format!("unknown progress event {other:?}"))),
        }
    }
}

fn parse_error(msg: impl Into<String>) -> JsonlError {
    JsonlError::Parse {
        line: 0,
        msg: msg.into(),
    }
}

/// Receives supervised-trial progress. Implementations must be cheap and
/// must never panic — events fire on the Monte-Carlo worker threads, on
/// the trial hot path. They must also never *block* for long: a sink that
/// stalls stalls its worker (the job server's sink therefore only does a
/// bounded try-push and drops on overflow).
pub trait ProgressSink: Send + Sync {
    /// Called once per trial transition.
    fn on_event(&self, event: &ProgressEvent);
}

/// The do-nothing sink: what the unobserved runner variants attach.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopProgress;

impl ProgressSink for NoopProgress {
    fn on_event(&self, _event: &ProgressEvent) {}
}

/// A sink that buffers every event in memory, for tests and in-process
/// dashboards. Thread-safe; take the events out with
/// [`MemoryProgress::take`].
#[derive(Debug, Default)]
pub struct MemoryProgress {
    events: Mutex<Vec<ProgressEvent>>,
}

impl MemoryProgress {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        MemoryProgress::default()
    }

    /// Removes and returns everything buffered so far (arrival order).
    #[must_use]
    pub fn take(&self) -> Vec<ProgressEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// How many events are buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProgressSink for MemoryProgress {
    fn on_event(&self, event: &ProgressEvent) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ProgressEvent> {
        vec![
            ProgressEvent::TrialStarted { seed: 7 },
            ProgressEvent::TrialRetried { seed: 7, retries: 2 },
            ProgressEvent::TrialFinished {
                seed: 9,
                rounds: 31,
                resolved: true,
                retries: 0,
            },
            ProgressEvent::TrialFinished {
                seed: 10,
                rounds: 5000,
                resolved: false,
                retries: 1,
            },
            ProgressEvent::TrialTimedOut {
                seed: 11,
                timeout_ms: 750,
                retries: 3,
            },
            ProgressEvent::TrialPoisoned {
                seed: 12,
                kind: PanicKind::IndexOutOfBounds,
                retries: 1,
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for ev in all_variants() {
            let line = ev.to_json();
            assert_eq!(ProgressEvent::from_json(&line).unwrap(), ev, "{line}");
        }
    }

    #[test]
    fn parser_ignores_unknown_keys_like_the_server_splices() {
        let spliced =
            "{\"event\":\"trial_finished\",\"job\":\"j-1\",\"t_ms\":123,\"seed\":9,\
             \"rounds\":31,\"resolved\":true,\"retries\":0}";
        assert_eq!(
            ProgressEvent::from_json(spliced).unwrap(),
            ProgressEvent::TrialFinished {
                seed: 9,
                rounds: 31,
                resolved: true,
                retries: 0
            }
        );
    }

    #[test]
    fn parser_rejects_unknown_label_and_missing_fields() {
        assert!(ProgressEvent::from_json("{\"event\":\"warp\",\"seed\":1}").is_err());
        assert!(ProgressEvent::from_json("{\"event\":\"trial_started\"}").is_err());
        assert!(ProgressEvent::from_json("{\"seed\":1}").is_err());
        assert!(ProgressEvent::from_json("not json").is_err());
        assert!(
            ProgressEvent::from_json("{\"event\":\"trial_poisoned\",\"seed\":1,\"kind\":\"??\",\"retries\":0}")
                .is_err()
        );
    }

    #[test]
    fn terminal_classification_and_seed_accessors() {
        let events = all_variants();
        assert!(!events[0].is_terminal());
        assert!(!events[1].is_terminal());
        assert!(events[2].is_terminal());
        assert!(events[4].is_terminal());
        assert!(events[5].is_terminal());
        assert_eq!(events[0].seed(), 7);
        assert_eq!(events[5].seed(), 12);
        assert_eq!(events[5].label(), "trial_poisoned");
    }

    #[test]
    fn memory_sink_buffers_in_arrival_order() {
        let sink = MemoryProgress::new();
        assert!(sink.is_empty());
        for ev in all_variants() {
            sink.on_event(&ev);
        }
        assert_eq!(sink.len(), 6);
        assert_eq!(sink.take(), all_variants());
        assert!(sink.is_empty());
    }
}
