//! Prometheus text exposition format (version 0.0.4): `# HELP` / `# TYPE`
//! comments, `name{label="value"} number` samples, histograms as
//! cumulative `_bucket{le="…"}` series plus `_sum` / `_count`.
//!
//! The writer emits the subset Prometheus scrapes; the parser reads that
//! subset back into [`PromSample`]s, and the typed reconstructors
//! ([`counters_from_prometheus`], [`histogram_from_prometheus`]) invert
//! the corresponding writers exactly — covered by round-trip tests in
//! `crates/sim/tests/obs.rs`.

use std::fmt::Write as _;

use crate::obs::{EngineCounters, ResolvePath};
use crate::telemetry::{Histogram, MetricsRegistry, Phase};
use fading_channel::FarFieldStats;

use super::ExportError;

/// One parsed sample line: metric name, labels in source order, value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (e.g. `fading_resolve_rounds_total`).
    pub name: String,
    /// Label pairs, in the order written.
    pub labels: Vec<(String, String)>,
    /// Sample value. `+Inf`/`-Inf`/`NaN` parse to the matching `f64`.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn fmt_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v:?}");
    }
}

fn sample_line(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
    }
    out.push(' ');
    fmt_value(out, value);
    out.push('\n');
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders one [`EngineCounters`] snapshot as a Prometheus scrape body.
/// Route counters become one `fading_resolve_rounds_total` series labeled
/// by `engine`; ladder counters one `fading_farfield_decisions_total`
/// series labeled by `rung`.
#[must_use]
pub fn counters_to_prometheus(c: &EngineCounters) -> String {
    let mut out = String::with_capacity(2048);
    header(&mut out, "fading_rounds_total", "counter", "Rounds stepped");
    sample_line(&mut out, "fading_rounds_total", &[], c.rounds as f64);

    header(
        &mut out,
        "fading_resolve_rounds_total",
        "counter",
        "Rounds served, by resolve tier",
    );
    for p in ResolvePath::ALL {
        sample_line(
            &mut out,
            "fading_resolve_rounds_total",
            &[("engine", p.name())],
            c.rounds_for(p) as f64,
        );
    }

    header(
        &mut out,
        "fading_gain_cache_built",
        "gauge",
        "1 when a gain cache was built for this deployment",
    );
    sample_line(
        &mut out,
        "fading_gain_cache_built",
        &[],
        f64::from(u8::from(c.gain_cache_built)),
    );
    for (name, help, v) in [
        (
            "fading_gain_cache_bypassed_rounds_total",
            "Rounds that bypassed a built gain cache",
            c.gain_cache_bypassed_rounds,
        ),
        (
            "fading_perturbed_rounds_total",
            "Rounds under a non-neutral perturbation",
            c.perturbed_rounds,
        ),
        (
            "fading_jammed_rounds_total",
            "Rounds with an active jammer",
            c.jammed_rounds,
        ),
        (
            "fading_noise_scaled_rounds_total",
            "Rounds with a noise-burst scale != 1",
            c.noise_scaled_rounds,
        ),
        (
            "fading_ge_dropped_total",
            "Messages dropped by Gilbert-Elliott loss",
            c.ge_dropped,
        ),
        (
            "fading_churn_applied_total",
            "Churn events applied",
            c.churn_applied,
        ),
        (
            "fading_self_check_rounds_total",
            "Rounds audited by the self-checking engines",
            c.self_check_rounds,
        ),
        (
            "fading_self_check_samples_total",
            "Listener samples re-resolved by the self-check",
            c.self_check_samples,
        ),
        (
            "fading_self_check_violations_total",
            "Self-check samples that disagreed with the serving tier",
            c.self_check_violations,
        ),
        (
            "fading_tier_demotions_total",
            "Engine tiers demoted after a self-check violation",
            c.tier_demotions,
        ),
        (
            "fading_farfield_engine_rounds_total",
            "Rounds the far-field engine resolved",
            c.farfield.rounds,
        ),
    ] {
        header(&mut out, name, "counter", help);
        sample_line(&mut out, name, &[], v as f64);
    }

    header(
        &mut out,
        "fading_farfield_decisions_total",
        "counter",
        "Far-field listener decisions, by ladder rung",
    );
    let f = &c.farfield;
    for (rung, v) in [
        ("empty_round_silence", f.empty_round_silences),
        ("nonfinite_fallback", f.nonfinite_fallbacks),
        ("noise_floor_silence", f.noise_floor_silences),
        ("no_near_winner_fallback", f.no_near_winner_fallbacks),
        ("far_rival_fallback", f.far_rival_fallbacks),
        ("bracket_decision", f.bracket_decisions),
        ("bracket_straddle_fallback", f.bracket_straddle_fallbacks),
    ] {
        sample_line(
            &mut out,
            "fading_farfield_decisions_total",
            &[("rung", rung)],
            v as f64,
        );
    }
    out
}

/// Renders one [`Histogram`] in Prometheus histogram convention:
/// cumulative `_bucket{le="…"}` lines (bucket `k`'s upper edge is `2^k`;
/// the overflow bucket is `+Inf`), then `_sum` and `_count`, plus
/// non-standard `_min` / `_max` gauges so the exact extrema survive the
/// round trip.
#[must_use]
pub fn histogram_to_prometheus(name: &str, help: &str, h: &Histogram) -> String {
    let mut out = String::with_capacity(4096);
    header(&mut out, name, "histogram", help);
    let mut cumulative = 0u64;
    let counts = h.bucket_counts();
    for (k, &c) in counts.iter().enumerate() {
        cumulative += c;
        let bucket = format!("{name}_bucket");
        if k == counts.len() - 1 {
            sample_line(&mut out, &bucket, &[("le", "+Inf")], cumulative as f64);
        } else {
            let mut edge = String::new();
            fmt_value(&mut edge, 2.0f64.powi(k as i32));
            sample_line(&mut out, &bucket, &[("le", &edge)], cumulative as f64);
        }
    }
    sample_line(&mut out, &format!("{name}_sum"), &[], h.sum());
    sample_line(&mut out, &format!("{name}_count"), &[], h.count() as f64);
    for (suffix, v) in [
        ("_min", h.min().unwrap_or(f64::INFINITY)),
        ("_max", h.max().unwrap_or(f64::NEG_INFINITY)),
    ] {
        let gauge = format!("{name}{suffix}");
        header(&mut out, &gauge, "gauge", "Exact extremum (non-standard)");
        sample_line(&mut out, &gauge, &[], v);
    }
    out
}

/// Renders a full [`MetricsRegistry`]: the run counters, the three
/// histograms, and per-phase wall-clock totals labeled by `phase`.
#[must_use]
pub fn registry_to_prometheus(m: &MetricsRegistry) -> String {
    let mut out = String::with_capacity(16 * 1024);
    for (name, help, v) in [
        ("fading_metrics_rounds_total", "Rounds recorded", m.rounds()),
        (
            "fading_metrics_transmissions_total",
            "Transmissions recorded",
            m.transmissions(),
        ),
        (
            "fading_metrics_knockouts_total",
            "Protocol knockouts recorded",
            m.knockouts(),
        ),
        (
            "fading_metrics_churn_applied_total",
            "Churn events applied",
            m.churn_applied(),
        ),
        (
            "fading_metrics_ge_dropped_total",
            "Gilbert-Elliott drops",
            m.ge_dropped(),
        ),
    ] {
        header(&mut out, name, "counter", help);
        sample_line(&mut out, name, &[], v as f64);
    }
    header(
        &mut out,
        "fading_phase_nanos_total",
        "counter",
        "Wall-clock nanoseconds per step phase",
    );
    for p in Phase::ALL {
        sample_line(
            &mut out,
            "fading_phase_nanos_total",
            &[("phase", p.name())],
            m.phase_nanos(p) as f64,
        );
    }
    out.push_str(&histogram_to_prometheus(
        "fading_round_latency_nanos",
        "Per-round wall-clock latency (ns)",
        m.round_latency_nanos(),
    ));
    out.push_str(&histogram_to_prometheus(
        "fading_knockouts_per_round",
        "Knockouts per round",
        m.knockouts_per_round(),
    ));
    out.push_str(&histogram_to_prometheus(
        "fading_interference",
        "Per-listener interference sums",
        m.interference(),
    ));
    out
}

/// Parses a Prometheus text scrape into its samples (comments and blank
/// lines skipped, order preserved).
///
/// # Errors
///
/// Returns [`ExportError::Parse`] with a 1-based line number on any
/// malformed sample line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, ExportError> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|msg| ExportError::at(i + 1, msg))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (name_and_labels, value_text) = match line.find('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head, tail.trim())
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let head = it.next().unwrap_or_default();
            (head, it.next().unwrap_or_default().trim())
        }
    };
    let (name, labels) = match name_and_labels.find('{') {
        Some(open) => {
            let name = &name_and_labels[..open];
            let body = name_and_labels[open + 1..]
                .strip_suffix('}')
                .ok_or("unterminated label set")?;
            (name, parse_labels(body)?)
        }
        None => (name_and_labels, Vec::new()),
    };
    if name.is_empty() {
        return Err("empty metric name".to_string());
    }
    let value = match value_text {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {other:?}"))?,
    };
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..]
            .trim_start()
            .strip_prefix('"')
            .ok_or("label value must be quoted")?;
        let close = after.find('"').ok_or("unterminated label value")?;
        labels.push((key, after[..close].to_string()));
        rest = after[close + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("unexpected label trailer {rest:?}"));
        }
    }
    Ok(labels)
}

fn find_value(samples: &[PromSample], name: &str, labels: &[(&str, &str)]) -> Result<f64, ExportError> {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.label(k) == Some(*v))
        })
        .map(|s| s.value)
        .ok_or_else(|| ExportError::at(0, format!("missing sample {name} {labels:?}")))
}

fn as_u64(v: f64, what: &str) -> Result<u64, ExportError> {
    if v.fract() == 0.0 && (0.0..9.007_199_254_740_992e15).contains(&v) {
        Ok(v as u64)
    } else {
        Err(ExportError::at(0, format!("{what} is not a counter value: {v}")))
    }
}

/// Reconstructs an [`EngineCounters`] from a scrape written by
/// [`counters_to_prometheus`] — the exact inverse.
///
/// # Errors
///
/// Returns [`ExportError::Parse`] on malformed text or missing samples.
pub fn counters_from_prometheus(text: &str) -> Result<EngineCounters, ExportError> {
    let s = parse_prometheus(text)?;
    let route = |p: ResolvePath| {
        find_value(&s, "fading_resolve_rounds_total", &[("engine", p.name())])
            .and_then(|v| as_u64(v, p.name()))
    };
    let plain =
        |name: &str| find_value(&s, name, &[]).and_then(|v| as_u64(v, name));
    let rung = |r: &str| {
        find_value(&s, "fading_farfield_decisions_total", &[("rung", r)])
            .and_then(|v| as_u64(v, r))
    };
    Ok(EngineCounters {
        rounds: plain("fading_rounds_total")?,
        farfield_rounds: route(ResolvePath::FarField)?,
        hierarchical_rounds: route(ResolvePath::Hierarchical)?,
        gain_cache_rounds: route(ResolvePath::Cached)?,
        exact_rounds: route(ResolvePath::Exact)?,
        instrumented_rounds: route(ResolvePath::Instrumented)?,
        gain_cache_built: find_value(&s, "fading_gain_cache_built", &[])? != 0.0,
        gain_cache_bypassed_rounds: plain("fading_gain_cache_bypassed_rounds_total")?,
        perturbed_rounds: plain("fading_perturbed_rounds_total")?,
        jammed_rounds: plain("fading_jammed_rounds_total")?,
        noise_scaled_rounds: plain("fading_noise_scaled_rounds_total")?,
        ge_dropped: plain("fading_ge_dropped_total")?,
        churn_applied: plain("fading_churn_applied_total")?,
        self_check_rounds: plain("fading_self_check_rounds_total")?,
        self_check_samples: plain("fading_self_check_samples_total")?,
        self_check_violations: plain("fading_self_check_violations_total")?,
        tier_demotions: plain("fading_tier_demotions_total")?,
        farfield: FarFieldStats {
            rounds: plain("fading_farfield_engine_rounds_total")?,
            empty_round_silences: rung("empty_round_silence")?,
            nonfinite_fallbacks: rung("nonfinite_fallback")?,
            noise_floor_silences: rung("noise_floor_silence")?,
            no_near_winner_fallbacks: rung("no_near_winner_fallback")?,
            far_rival_fallbacks: rung("far_rival_fallback")?,
            bracket_decisions: rung("bracket_decision")?,
            bracket_straddle_fallbacks: rung("bracket_straddle_fallback")?,
        },
    })
}

/// Reconstructs a [`Histogram`] from a scrape written by
/// [`histogram_to_prometheus`] under the same `name` — the exact inverse
/// (cumulative buckets differenced back, extrema from `_min`/`_max`).
///
/// # Errors
///
/// Returns [`ExportError::Parse`] on malformed text, missing series, or
/// bucket counts that are not cumulative.
pub fn histogram_from_prometheus(text: &str, name: &str) -> Result<Histogram, ExportError> {
    let samples = parse_prometheus(text)?;
    let bucket_name = format!("{name}_bucket");
    let mut buckets = [0u64; Histogram::NUM_BUCKETS];
    let mut prev = 0u64;
    let mut seen = 0usize;
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        if seen >= Histogram::NUM_BUCKETS {
            return Err(ExportError::at(0, format!("too many buckets for {name}")));
        }
        let cumulative = as_u64(s.value, &bucket_name)?;
        let count = cumulative.checked_sub(prev).ok_or_else(|| {
            ExportError::at(0, format!("non-cumulative bucket counts for {name}"))
        })?;
        buckets[seen] = count;
        prev = cumulative;
        seen += 1;
    }
    if seen != Histogram::NUM_BUCKETS {
        return Err(ExportError::at(
            0,
            format!("expected {} buckets for {name}, found {seen}", Histogram::NUM_BUCKETS),
        ));
    }
    let count = as_u64(find_value(&samples, &format!("{name}_count"), &[])?, "count")?;
    let sum = find_value(&samples, &format!("{name}_sum"), &[])?;
    let min = find_value(&samples, &format!("{name}_min"), &[])?;
    let max = find_value(&samples, &format!("{name}_max"), &[])?;
    Ok(Histogram::from_parts(buckets, count, sum, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_lines_parse_with_and_without_labels() {
        let text = "# HELP x y\nfoo 3\nbar{a=\"1\",b=\"two, three\"} -0.5\nbaz{le=\"+Inf\"} +Inf\n";
        let s = parse_prometheus(text).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name, "foo");
        assert_eq!(s[0].value, 3.0);
        assert_eq!(s[1].label("b"), Some("two, three"));
        assert_eq!(s[2].value, f64::INFINITY);
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let err = parse_prometheus("ok 1\nbroken{a=b} 2\n").unwrap_err();
        let ExportError::Parse { line, .. } = err;
        assert_eq!(line, 2);
    }

    #[test]
    fn empty_histogram_round_trips() {
        let h = Histogram::new();
        let text = histogram_to_prometheus("t", "help", &h);
        assert_eq!(histogram_from_prometheus(&text, "t").unwrap(), h);
    }
}
