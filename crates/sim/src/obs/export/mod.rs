//! Exporters for spans, counters, and histograms — three standard text
//! formats, each paired with a parser so round-trips are tested, not
//! assumed:
//!
//! * [`prometheus`] — Prometheus text exposition (counters as
//!   `_total`-style samples, histograms with cumulative `le` buckets).
//! * [`chrome`] — Chrome trace-event JSON, loadable in `chrome://tracing`
//!   or [Perfetto](https://ui.perfetto.dev) (README shows the workflow).
//! * [`flamegraph`] — collapsed-stack text (`frame;frame;frame value`),
//!   the input format of `flamegraph.pl` and `inferno-flamegraph`.

pub mod chrome;
pub mod flamegraph;
pub mod prometheus;

use std::fmt;

/// Errors from parsing an exported document back.
#[derive(Debug)]
pub enum ExportError {
    /// Malformed input; `line` is 1-based (0 = not tied to a line).
    Parse {
        /// 1-based line number where parsing failed (0 if unknown).
        line: usize,
        /// Human-readable description of the failure.
        msg: String,
    },
}

impl ExportError {
    pub(crate) fn at(line: usize, msg: impl Into<String>) -> Self {
        ExportError::Parse {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Parse { line, msg } => {
                write!(f, "export parse error (line {line}): {msg}")
            }
        }
    }
}

impl std::error::Error for ExportError {}
